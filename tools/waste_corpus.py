#!/usr/bin/env python
"""Gate the pluggable-objective refactor across the full corpus.

Three checks, run over every corpus assay (``tools/_corpus.py``) plus the
dilution-gradient workload family (``repro.assays.gradients``):

1. **Default byte-identity** — compiling with an explicit
   ``objective="default"`` manager must produce an AIS listing
   byte-identical to the legacy shim path (``compile_assay`` /
   ``compile_dag`` with no manager at all, i.e. the pre-refactor
   behaviour).  The objective refactor must be invisible when nobody
   asks for it.
2. **Waste-objective compile + certify** — every entry must also compile
   under ``objective="waste"`` and the resulting plan must pass the plan
   certificate with zero errors (regeneration fallbacks may carry
   warnings; structural errors never).
3. **Fingerprint disjointness** — for static plans, the compile
   fingerprint under ``waste`` must differ from the one under
   ``default``, so the shared plan cache can never serve one
   objective's plan to the other.

Exits nonzero on any failure.

Usage: PYTHONPATH=src python tools/waste_corpus.py [-v]
"""

from __future__ import annotations

import sys

from _corpus import corpus_entries

from repro.analysis.certify import certify
from repro.assays.gradients import gradient_corpus
from repro.compiler import compile_assay, compile_dag
from repro.compiler.passes import run_compile
from repro.core.hierarchy import VolumeManager
from repro.machine.spec import AQUACORE_SPEC


def manager_for(objective: str) -> VolumeManager:
    return VolumeManager(AQUACORE_SPEC.limits, objective=objective)


def all_entries():
    """Corpus entries plus the gradient family, as (name, kwargs)."""
    yield from corpus_entries()
    for dag in gradient_corpus():
        yield dag.name, {"dag": dag}


def compile_with(kwargs: dict, manager: VolumeManager | None):
    ctx = run_compile(spec=AQUACORE_SPEC, manager=manager, **kwargs)
    return ctx


def legacy_listing(kwargs: dict) -> str:
    """The pre-refactor entry points, no manager and no objective."""
    if "source" in kwargs:
        return compile_assay(kwargs["source"]).listing()
    return compile_dag(kwargs["dag"]).listing()


def check_entry(name: str, kwargs: dict, verbose: bool) -> list[str]:
    problems: list[str] = []

    default_ctx = compile_with(dict(kwargs), manager_for("default"))
    if default_ctx.compiled.listing() != legacy_listing(dict(kwargs)):
        problems.append("default listing differs from the legacy shim path")

    waste_ctx = compile_with(dict(kwargs), manager_for("waste"))
    report = certify(waste_ctx.compiled)
    errors = report.counts["error"]
    if errors:
        problems.append(f"waste plan certification: {errors} error(s)")
        if verbose:
            for finding in report.findings:
                problems.append(f"  {finding}")

    if default_ctx.is_static and waste_ctx.is_static:
        if default_ctx.compile_fingerprint() == waste_ctx.compile_fingerprint():
            problems.append("objectives share a compile fingerprint")

    if verbose and waste_ctx.plan is not None:
        problems.append(f"  [info] waste status: {waste_ctx.plan.status}")
    return problems


def main(argv) -> int:
    verbose = "-v" in argv
    failures = 0
    for name, kwargs in all_entries():
        problems = check_entry(name, kwargs, verbose)
        real = [p for p in problems if not p.strip().startswith("[info]")]
        status = "ok" if not real else "; ".join(real)
        print(f"{name:28s} {status}")
        for problem in problems:
            if problem.strip().startswith("[info]"):
                print(f"  {problem.strip()}")
        if real:
            failures += 1
    if failures:
        print(f"\n{failures} corpus entr(ies) failed the objective gate")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
