#!/usr/bin/env python
"""Source-verify every rolled assay in the repo's corpus.

CI runs this after the test suite: the source-level parametric verifier
(:mod:`repro.analysis.sourceflow`) runs its fixpoint over every corpus
assay that exists as rolled source.  Each one must

* converge (widening terminated the fixpoint before the sweep ceiling),
* verify **clean for all loop bounds** — zero errors and zero warnings
  (``possible`` notes from bank summarization are reported but
  tolerated),

so a new assay or an engine change that breaks parametric verification
fails CI here.  Exits nonzero on any error/warning or non-convergence.

Usage: PYTHONPATH=src python tools/sourceflow_corpus.py [-v]
"""

from __future__ import annotations

import sys

from _corpus import source_corpus

from repro.analysis import verify_source


def main(argv) -> int:
    verbose = "-v" in argv
    failures = 0
    for name, source in source_corpus():
        report = verify_source(source, name=name)
        stats = report.stats
        if not stats["converged"]:
            print(f"{name:16s} FIXPOINT DID NOT CONVERGE")
            failures += 1
            continue
        counts = report.counts
        status = (
            f"verified for all loop bounds ({stats['sweeps']} sweeps, "
            f"{stats['loops']} loops)"
            if report.is_clean
            else f"{counts['error']} error(s), {counts['warning']} warning(s)"
        )
        print(f"{name:16s} {status}")
        if verbose or not report.is_clean:
            for finding in report.findings:
                print(f"  {finding}")
        if not report.is_clean:
            failures += 1
    if failures:
        print(f"\n{failures} assay(s) failed source-level verification")
        return 1
    print("\nall rolled corpus assays verified for all loop bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
