#!/usr/bin/env python
"""Compile every assay in the repo's corpus and certify the result.

CI runs this after the test suite: the plan-certificate verifier
(`repro.analysis.certify`) independently re-derives the paper's IVol
constraint system and replays the emitted schedule for every compiled
program in the corpus.  All of them must certify clean — zero errors
and zero warnings.  The three paper benchmarks
(Figures 12-14: glucose, glycomics, enzyme) additionally get a metrics
smoke check: a plan half must actually have been certified (or
explicitly deferred to run time) and the waste accounting must be
self-consistent.

Exits nonzero on any failure.

Usage: PYTHONPATH=src python tools/certify_corpus.py [-v]
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.analysis.certify import certify  # noqa: E402
from repro.assays import (  # noqa: E402
    enzyme,
    extra,
    generators,
    glucose,
    glycomics,
    paper_example,
)
from repro.compiler import compile_assay, compile_dag  # noqa: E402

#: Figure 12-14 benchmarks that get the extra metrics smoke check.
PAPER_BENCHMARKS = ("glucose", "glycomics", "enzyme")


def custom_assay_source() -> str:
    path = REPO / "examples" / "custom_assay.py"
    spec = importlib.util.spec_from_file_location("custom_assay", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.SOURCE


def corpus():
    yield "figure2", compile_assay(paper_example.SOURCE)
    yield "glucose", compile_assay(glucose.SOURCE)
    yield "glycomics", compile_assay(glycomics.SOURCE)
    yield "enzyme", compile_assay(enzyme.SOURCE)
    yield "elisa", compile_assay(extra.ELISA_SOURCE)
    yield "bradford", compile_assay(extra.BRADFORD_SOURCE)
    yield "pcr-prep", compile_assay(extra.PCR_PREP_SOURCE)
    yield "custom-example", compile_assay(custom_assay_source())
    yield "gen-enzyme-4", compile_dag(generators.enzyme_n(4))
    yield "gen-dilution-6", compile_dag(generators.serial_dilution(6))
    yield "gen-mixtree-3", compile_dag(generators.binary_mix_tree(3))


def smoke_check(name: str, report) -> str | None:
    """Extra consistency checks for the paper benchmarks."""
    summary = report.to_dict()["summary"]
    if not summary["schedule_checked"]:
        return "schedule half was not certified"
    if summary["plan_checked"]:
        metrics = report.metrics
        if metrics.get("delivered_nl", 0) <= 0:
            return "certified plan delivers nothing"
        if metrics["delivered_nl"] > metrics["loaded_nl"] + 1e-9:
            return "delivered more than was loaded"
        if not 0 <= metrics["utilisation"] <= 1:
            return f"utilisation {metrics['utilisation']} out of range"
    elif "PLAN-DEFERRED" not in report.codes():
        return "plan half skipped without a PLAN-DEFERRED note"
    return None


def main(argv) -> int:
    verbose = "-v" in argv
    failures = 0
    for name, compiled in corpus():
        report = certify(compiled)
        status = "certified" if report.is_clean else (
            f"{report.counts['error']} error(s), "
            f"{report.counts['warning']} warning(s)"
        )
        print(f"{name:16s} {status}")
        if verbose or not report.is_clean:
            for finding in report.findings:
                print(f"  {finding}")
        if not report.is_clean:
            failures += 1
            continue
        if name in PAPER_BENCHMARKS:
            problem = smoke_check(name, report)
            if problem:
                print(f"  metrics smoke check failed: {problem}")
                failures += 1
    if failures:
        print(f"\n{failures} program(s) failed plan certification")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
