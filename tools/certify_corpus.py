#!/usr/bin/env python
"""Compile every assay in the repo's corpus and certify the result.

CI runs this after the test suite: the plan-certificate verifier
(`repro.analysis.certify`) independently re-derives the paper's IVol
constraint system and replays the emitted schedule for every compiled
program in the corpus.  All of them must certify clean — zero errors
and zero warnings.  The three paper benchmarks
(Figures 12-14: glucose, glycomics, enzyme) additionally get a metrics
smoke check: a plan half must actually have been certified (or
explicitly deferred to run time) and the waste accounting must be
self-consistent.

Exits nonzero on any failure.

Usage: PYTHONPATH=src python tools/certify_corpus.py [-v]
"""

from __future__ import annotations

import sys

from _corpus import PAPER_BENCHMARKS, compiled_corpus

from repro.analysis.certify import certify


def smoke_check(name: str, report) -> str | None:
    """Extra consistency checks for the paper benchmarks."""
    summary = report.to_dict()["summary"]
    if not summary["schedule_checked"]:
        return "schedule half was not certified"
    if summary["plan_checked"]:
        metrics = report.metrics
        if metrics.get("delivered_nl", 0) <= 0:
            return "certified plan delivers nothing"
        if metrics["delivered_nl"] > metrics["loaded_nl"] + 1e-9:
            return "delivered more than was loaded"
        if not 0 <= metrics["utilisation"] <= 1:
            return f"utilisation {metrics['utilisation']} out of range"
    elif "PLAN-DEFERRED" not in report.codes():
        return "plan half skipped without a PLAN-DEFERRED note"
    return None


def main(argv) -> int:
    verbose = "-v" in argv
    failures = 0
    for name, compiled in compiled_corpus():
        report = certify(compiled)
        status = "certified" if report.is_clean else (
            f"{report.counts['error']} error(s), "
            f"{report.counts['warning']} warning(s)"
        )
        print(f"{name:16s} {status}")
        if verbose or not report.is_clean:
            for finding in report.findings:
                print(f"  {finding}")
        if not report.is_clean:
            failures += 1
            continue
        if name in PAPER_BENCHMARKS:
            problem = smoke_check(name, report)
            if problem:
                print(f"  metrics smoke check failed: {problem}")
                failures += 1
    if failures:
        print(f"\n{failures} program(s) failed plan certification")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
