"""Shared corpus discovery for the ``tools/*_corpus.py`` CI jobs.

Every corpus sweep used to carry its own copy of the repo bootstrap, the
``examples/custom_assay.py`` loader, and the corpus listing; they drifted
one entry at a time.  This module is the single source of truth:

* importing it puts ``src/`` on ``sys.path`` (the tools run from a
  checkout, not an installed package);
* :func:`corpus_entries` is the canonical ``(name, kwargs)`` listing —
  ``kwargs`` holds either ``source`` text or a freshly built ``dag``;
* :func:`compiled_corpus` / :func:`batch_jobs` / :func:`source_corpus`
  adapt that listing to what each sweep consumes.

Generator-backed DAG entries are rebuilt on every call so sweeps can
mutate their copy freely.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys
from collections.abc import Iterator

REPO = pathlib.Path(__file__).resolve().parents[1]
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.assays import (  # noqa: E402
    enzyme,
    extra,
    generators,
    glucose,
    glycomics,
    paper_example,
)

__all__ = [
    "REPO",
    "PAPER_BENCHMARKS",
    "custom_assay_source",
    "corpus_entries",
    "source_corpus",
    "compiled_corpus",
    "batch_jobs",
]

#: Figure 12-14 benchmarks that get extra metrics smoke checks.
PAPER_BENCHMARKS = ("glucose", "glycomics", "enzyme")


def custom_assay_source() -> str:
    """The example walkthrough's assay source (not an importable module)."""
    path = REPO / "examples" / "custom_assay.py"
    spec = importlib.util.spec_from_file_location("custom_assay", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.SOURCE


def corpus_entries(*, include_fanout: bool = False) -> list:
    """The canonical ``(name, kwargs)`` corpus listing.

    ``kwargs`` carries either ``{"source": text}`` or ``{"dag": built}``
    — exactly what :func:`repro.compiler.passes.run_compile` accepts.
    ``include_fanout`` adds the wider synthetic fan-out DAG only the
    pass-timing sweep wants.
    """
    entries = [
        ("figure2", {"source": paper_example.SOURCE}),
        ("glucose", {"source": glucose.SOURCE}),
        ("glycomics", {"source": glycomics.SOURCE}),
        ("enzyme", {"source": enzyme.SOURCE}),
        ("elisa", {"source": extra.ELISA_SOURCE}),
        ("bradford", {"source": extra.BRADFORD_SOURCE}),
        ("pcr-prep", {"source": extra.PCR_PREP_SOURCE}),
        ("custom-example", {"source": custom_assay_source()}),
        ("gen-enzyme-4", {"dag": generators.enzyme_n(4)}),
        ("gen-dilution-6", {"dag": generators.serial_dilution(6)}),
        ("gen-mixtree-3", {"dag": generators.binary_mix_tree(3)}),
    ]
    if include_fanout:
        entries.append(("gen-fanout-4x3", {"dag": generators.fanout_chain(4, 3)}))
    return entries


def source_corpus() -> Iterator[tuple[str, str]]:
    """Just the entries that exist as assay *source* (rolled programs)."""
    for name, kwargs in corpus_entries():
        if "source" in kwargs:
            yield name, kwargs["source"]


def compiled_corpus() -> Iterator[tuple[str, object]]:
    """``(name, CompiledAssay)`` pairs via the deprecated-shim entry points."""
    from repro.compiler import compile_assay, compile_dag

    for name, kwargs in corpus_entries():
        if "source" in kwargs:
            yield name, compile_assay(kwargs["source"])
        else:
            yield name, compile_dag(kwargs["dag"])


def batch_jobs() -> list:
    """The corpus as :class:`repro.compiler.batch.BatchJob` instances."""
    from repro.compiler.batch import BatchJob

    return [BatchJob(name, **kwargs) for name, kwargs in corpus_entries()]
