#!/usr/bin/env python
"""Static race detection sweep over the repo's assay corpus.

CI runs this after the test suite, in three phases:

1. **Intra-program sweep** — every compiled corpus program must be free
   of ``RACE-*`` errors and warnings on its own serial schedule
   (schedule-sensitivity notes are informational and allowed).
2. **Merged-schedule oracle** — pairs of independently-compiled assays
   that share functional units must be *flagged* when merged with no
   barriers, and must verify race-free once a serializing barrier
   orders one entirely before the other.
3. **Differential gate** — for deterministic interleavings of each
   merged pair, every ``SCHED-*`` error the dynamic certifier finds in
   the replayed merge (beyond the programs' solo replays) must be
   subsumed by a static ``RACE-*`` finding on the same resource: the
   static detector never misses what the dynamic oracle can see.

Exits nonzero on any failure.

Usage: PYTHONPATH=src python tools/races_corpus.py [-v]
"""

from __future__ import annotations

import sys

from _corpus import compiled_corpus

from repro.analysis.certify import certify_schedule
from repro.analysis.races import analyze_races
from repro.ir.program import AISProgram

#: corpus pairs merged in phase 2/3 (all share mixer/sensor hardware).
MERGE_PAIRS = (
    ("glucose", "enzyme"),
    ("glucose", "glycomics"),
    ("figure2", "glucose"),
    ("elisa", "bradford"),
)

#: deterministic interleaving patterns: at step k, take from program
#: ``pattern[k % len(pattern)]`` (falling back when one side runs dry).
PATTERNS = (
    (0, 1),          # strict alternation
    (0, 0, 1),       # 2:1 bias
    (1, 1, 0),       # reversed bias
)


def interleave(a: AISProgram, b: AISProgram, pattern) -> AISProgram:
    merged = AISProgram(name=f"{a.name}|{b.name}", machine=a.machine)
    streams = [list(a.instructions), list(b.instructions)]
    cursor = [0, 0]
    step = 0
    while cursor[0] < len(streams[0]) or cursor[1] < len(streams[1]):
        choice = pattern[step % len(pattern)]
        if cursor[choice] >= len(streams[choice]):
            choice = 1 - choice
        merged.append(streams[choice][cursor[choice]])
        cursor[choice] += 1
        step += 1
    return merged


def error_bases(diagnostics) -> set:
    return {
        (d.code, (d.operand or "").split(".")[0])
        for d in diagnostics
        if d.severity.value == "error"
    }


def sweep_intra(programs, spec, verbose: bool) -> int:
    failures = 0
    print("-- intra-program sweep (serial schedules must be race-free) --")
    for name, program in programs.items():
        report = analyze_races(program, spec)
        counts = report.counts
        status = (
            "race-free" if not report.findings
            else f"{counts['error']} error(s), {counts['note']} note(s)"
        )
        print(
            f"{name:16s} {status:24s} "
            f"[{report.mhp['mhp_pairs']} schedule-sensitive pair(s)]"
        )
        if verbose:
            for finding in report.findings:
                print(f"  {finding}")
        if counts["error"] or counts["warning"]:
            for finding in report.findings:
                print(f"  {finding}")
            failures += 1
    return failures


def sweep_merged(programs, spec) -> int:
    failures = 0
    print("\n-- merged-schedule oracle (flag unfenced, pass fenced) --")
    for left, right in MERGE_PAIRS:
        a, b = programs[left], programs[right]
        unfenced = analyze_races([a, b], spec)
        fenced = analyze_races(
            [a, b], spec, barriers=[(len(a.instructions), 0)]
        )
        ok = unfenced.counts["error"] > 0 and fenced.counts["error"] == 0
        print(
            f"{left}+{right}: unfenced {unfenced.counts['error']} "
            f"error(s) over {unfenced.mhp['mhp_pairs']} MHP pair(s); "
            f"fenced {fenced.counts['error']} error(s)"
            + ("" if ok else "  <-- FAIL")
        )
        if unfenced.counts["error"] == 0:
            print("  expected interference in the unfenced merge")
            failures += 1
        if fenced.counts["error"] != 0:
            for finding in fenced.findings:
                print(f"  {finding}")
            failures += 1
    return failures


def sweep_differential(programs, spec) -> int:
    failures = 0
    print("\n-- differential gate (static subsumes dynamic replay) --")
    for left, right in MERGE_PAIRS:
        a, b = programs[left], programs[right]
        solo = error_bases(certify_schedule(a, spec)[0])
        solo |= error_bases(certify_schedule(b, spec)[0])
        static = analyze_races([a, b], spec, share_storage=True)
        static_bases = {
            (f.operand or "").split(".")[0] for f in static.findings
        }
        escapes = []
        for pattern in PATTERNS:
            merged = interleave(a, b, pattern)
            dynamic = error_bases(certify_schedule(merged, spec)[0])
            for code, base in sorted(dynamic - solo):
                if base not in static_bases:
                    escapes.append((pattern, code, base))
        print(
            f"{left}+{right}: {len(PATTERNS)} interleaving(s), "
            f"{len(escapes)} escape(s)"
        )
        for pattern, code, base in escapes:
            print(f"  pattern {pattern}: dynamic {code} on {base!r} "
                  "has no static RACE-* counterpart")
        failures += bool(escapes)
    return failures


def main(argv) -> int:
    verbose = "-v" in argv
    programs = {}
    spec = None
    for name, compiled in compiled_corpus():
        programs[name] = compiled.program
        spec = compiled.spec
    failures = sweep_intra(programs, spec, verbose)
    failures += sweep_merged(programs, spec)
    failures += sweep_differential(programs, spec)
    if failures:
        print(f"\n{failures} race-detection sweep failure(s)")
        return 1
    print("\nall race-detection sweeps passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
