#!/usr/bin/env python
"""Compile every assay in the repo's corpus and lint the result.

CI runs this after the test suite: the generated programs for all paper
benchmarks, extra protocols, the examples' custom assay, and a sample of
the synthetic DAG generators must lint clean on the fluid-safety
analyzer.  Exits nonzero on any error-severity finding (warnings are
reported but tolerated for generated corner cases).

Usage: PYTHONPATH=src python tools/lint_corpus.py [-v]
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.analysis import lint_program  # noqa: E402
from repro.assays import (  # noqa: E402
    enzyme,
    extra,
    generators,
    glucose,
    glycomics,
    paper_example,
)
from repro.compiler import compile_assay, compile_dag  # noqa: E402


def custom_assay_source() -> str:
    path = REPO / "examples" / "custom_assay.py"
    spec = importlib.util.spec_from_file_location("custom_assay", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.SOURCE


def corpus():
    yield "figure2", compile_assay(paper_example.SOURCE)
    yield "glucose", compile_assay(glucose.SOURCE)
    yield "glycomics", compile_assay(glycomics.SOURCE)
    yield "enzyme", compile_assay(enzyme.SOURCE)
    yield "elisa", compile_assay(extra.ELISA_SOURCE)
    yield "bradford", compile_assay(extra.BRADFORD_SOURCE)
    yield "pcr-prep", compile_assay(extra.PCR_PREP_SOURCE)
    yield "custom-example", compile_assay(custom_assay_source())
    yield "gen-enzyme-4", compile_dag(generators.enzyme_n(4))
    yield "gen-dilution-6", compile_dag(generators.serial_dilution(6))
    yield "gen-mixtree-3", compile_dag(generators.binary_mix_tree(3))


def main(argv) -> int:
    verbose = "-v" in argv
    failures = 0
    for name, compiled in corpus():
        report = lint_program(compiled.program, compiled.spec)
        counts = report.counts
        status = "clean" if report.is_clean else (
            f"{counts['error']} error(s), {counts['warning']} warning(s)"
        )
        print(f"{name:16s} {status}")
        if verbose or counts["error"]:
            for finding in report.findings:
                print(f"  {finding}")
        if counts["error"]:
            failures += 1
    if failures:
        print(f"\n{failures} program(s) failed the fluid-safety lint")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
