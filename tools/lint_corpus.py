#!/usr/bin/env python
"""Compile every assay in the repo's corpus and lint the result.

CI runs this after the test suite: the generated programs for all paper
benchmarks, extra protocols, the examples' custom assay, and a sample of
the synthetic DAG generators must lint clean on the fluid-safety
analyzer.  Exits nonzero on any error-severity finding (warnings are
reported but tolerated for generated corner cases).

Usage: PYTHONPATH=src python tools/lint_corpus.py [-v]
"""

from __future__ import annotations

import sys

from _corpus import compiled_corpus

from repro.analysis import lint_program


def main(argv) -> int:
    verbose = "-v" in argv
    failures = 0
    for name, compiled in compiled_corpus():
        report = lint_program(compiled.program, compiled.spec)
        counts = report.counts
        status = "clean" if report.is_clean else (
            f"{counts['error']} error(s), {counts['warning']} warning(s)"
        )
        print(f"{name:16s} {status}")
        if verbose or counts["error"]:
            for finding in report.findings:
                print(f"  {finding}")
        if counts["error"]:
            failures += 1
    if failures:
        print(f"\n{failures} program(s) failed the fluid-safety lint")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
