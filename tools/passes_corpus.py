#!/usr/bin/env python
"""Pass-manager smoke: shim equivalence + per-pass timings over the corpus.

CI's ``--time-passes`` smoke job.  For every assay in the corpus this
compiles twice —

* through the **deprecated shims** (``compile_assay`` / ``compile_dag``),
  exactly what pre-pass-manager callers see;
* through the **instrumented pass manager**
  (:func:`repro.compiler.passes.run_compile`) with an event bus;

— and fails if any AIS listing is not byte-identical or any volume-plan
summary diverges (a shim that drifted from the pass pipeline).  Per-pass
wall/CPU timings for the instrumented runs are aggregated and written as
JSON (uploaded as a CI artifact) so pass-level regressions are visible
over time.

Usage: PYTHONPATH=src python tools/passes_corpus.py [--out PATH] [-v]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from _corpus import REPO, corpus_entries

from repro.compiler import compile_assay, compile_dag
from repro.compiler.passes import (
    PASS_EVENT_SCHEMA_VERSION,
    PassEventBus,
    render_timing_table,
    run_compile,
)


def legacy_compile(name, kwargs):
    if "source" in kwargs:
        return compile_assay(kwargs["source"])
    return compile_dag(kwargs["dag"])


def plan_summary(compiled):
    return compiled.plan.summary() if compiled.plan is not None else None


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(REPO / "pass-timings.json"),
        help="where to write the aggregated per-pass timing JSON",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)

    divergences = 0
    timings = {}
    programs = []
    for name, kwargs in corpus_entries(include_fanout=True):
        legacy = legacy_compile(name, kwargs)
        bus = PassEventBus(fingerprints=True)
        ctx = run_compile(bus=bus, **kwargs)
        managed = ctx.compiled

        if legacy.listing() != managed.listing():
            print(f"  {name}: LISTING DIVERGED between shim and pass manager")
            divergences += 1
        if plan_summary(legacy) != plan_summary(managed):
            print(f"  {name}: PLAN SUMMARY DIVERGED")
            divergences += 1

        per_pass = {}
        for event in bus.ran():
            record = timings.setdefault(
                event.name, {"runs": 0, "wall_ms": 0.0, "cpu_ms": 0.0}
            )
            record["runs"] += 1
            record["wall_ms"] += event.wall_s * 1000
            record["cpu_ms"] += event.cpu_s * 1000
            per_pass[event.name] = round(event.wall_s * 1000, 4)
        programs.append(
            {
                "name": name,
                "static": managed.is_static,
                "wall_ms": round(bus.total_wall_s() * 1000, 4),
                "passes": per_pass,
            }
        )
        print(
            f"  {name}: ok ({len(bus.ran())} passes, "
            f"{bus.total_wall_s() * 1000:.1f} ms)"
        )
        if args.verbose:
            print(render_timing_table(bus))

    for record in timings.values():
        record["wall_ms"] = round(record["wall_ms"], 4)
        record["cpu_ms"] = round(record["cpu_ms"], 4)
    payload = {
        "version": PASS_EVENT_SCHEMA_VERSION,
        "programs": programs,
        "per_pass_totals": dict(sorted(timings.items())),
        "divergences": divergences,
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nper-pass timings written to {out}")

    if divergences:
        print(f"FAILED: {divergences} shim divergence(s)")
        return 1
    print(f"all {len(programs)} corpus programs byte-identical across paths")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
