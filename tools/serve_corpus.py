#!/usr/bin/env python
"""Service smoke sweep: serve the corpus through a live daemon.

CI boots one in-process ``repro serve`` daemon (the same asyncio server
``repro serve`` runs, on a loopback port) and drives the full source
corpus through it from two concurrent clients, then asserts:

* every job completes (no lost submissions, no failures);
* every served listing equals the deprecated-shim compile of the same
  source (``compile_assay``) byte-for-byte;
* the second tenant sweep is warm: every static-plan assay reports a
  cache hit or coalesced result, never a duplicated cold compile;
* ``/v1/metrics`` reconciles exactly with the jobs the clients ran.

The final metrics snapshot is written to ``serve_corpus_metrics.json``
(uploaded as a CI artifact) so regressions in hit rate or per-pass
latency are visible from the workflow page.

Usage: PYTHONPATH=src python tools/serve_corpus.py [-v] [--out PATH]
"""

from __future__ import annotations

import json
import sys
import threading

from _corpus import source_corpus

from repro.compiler import compile_assay
from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig, start_in_thread


def main(argv) -> int:
    verbose = "-v" in argv
    out_path = "serve_corpus_metrics.json"
    if "--out" in argv:
        out_path = argv[argv.index("--out") + 1]

    corpus = list(source_corpus())
    shim_listings = {
        name: compile_assay(source).listing() + "\n"
        for name, source in corpus
    }

    handle = start_in_thread(ServiceConfig(workers=2))
    failures = 0
    try:
        tenants = ("ci-alpha", "ci-beta")
        sweeps: dict[str, list] = {tenant: [] for tenant in tenants}
        errors: list[BaseException] = []

        def sweep(tenant: str) -> None:
            try:
                client = ServiceClient(handle.url, tenant=tenant)
                for name, source in corpus:
                    body = client.run(
                        "compile", source, name=name, timeout=600
                    )
                    artifact = client.artifact(body["job"]["id"])
                    sweeps[tenant].append((name, body["result"], artifact))
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=sweep, args=(tenant,))
            for tenant in tenants
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]

        # first concurrent sweep: completeness + shim byte-identity
        for tenant in tenants:
            assert len(sweeps[tenant]) == len(corpus), (
                f"{tenant}: {len(sweeps[tenant])}/{len(corpus)} jobs done"
            )
            for name, result, artifact in sweeps[tenant]:
                line = (
                    f"{name:16s} [{tenant}] cache={result['cache']:9s} "
                    f"plan={result['plan_status']}"
                )
                if verbose:
                    print(line)
                if artifact != shim_listings[name].encode("utf-8"):
                    print(f"{name}: served listing differs from shim")
                    failures += 1
                if result["exit_code"] != 0:
                    print(f"{name}: exit {result['exit_code']}")
                    failures += 1

        # warm sweep: one tenant resubmits everything
        warm_client = ServiceClient(handle.url, tenant=tenants[0])
        warm_hits = 0
        static = 0
        for name, source in corpus:
            result = warm_client.run(
                "compile", source, name=name, timeout=600
            )["result"]
            if result["plan_status"] != "runtime":
                static += 1
                if result["cache"] == "hit":
                    warm_hits += 1
                elif verbose:
                    print(f"{name}: warm resubmit was {result['cache']}")
        print(
            f"warm sweep: {warm_hits}/{static} static assays served "
            "from the tenant cache"
        )
        if warm_hits != static:
            print("warm hit-rate below 100% for static plans")
            failures += 1

        # objective sweep: one waste-objective job per tenant.  The plan
        # cache is warm with default-objective plans for every corpus
        # assay; a waste compile of the same source must MISS (disjoint
        # fingerprints) yet still complete clean.
        waste_name, waste_source = corpus[1]  # glucose: static plan
        for tenant in tenants:
            client = ServiceClient(handle.url, tenant=tenant)
            result = client.run(
                "compile",
                waste_source,
                name=f"{waste_name}-waste",
                options={"objective": "waste"},
                timeout=600,
            )["result"]
            if result["exit_code"] != 0:
                print(f"{tenant}: waste-objective compile failed")
                failures += 1
            if result["cache"] == "hit":
                print(
                    f"{tenant}: waste compile hit the default-objective "
                    "cache entry (fingerprints not disjoint)"
                )
                failures += 1
            if verbose:
                print(
                    f"{waste_name:16s} [{tenant}] objective=waste "
                    f"cache={result['cache']:9s} "
                    f"plan={result['plan_status']}"
                )

        metrics = warm_client.metrics()
        total_jobs = 2 * len(corpus) + len(corpus) + len(tenants)
        if metrics["jobs_total"]["submitted"] != total_jobs:
            print(
                f"metrics submitted={metrics['jobs_total']['submitted']} "
                f"!= {total_jobs}"
            )
            failures += 1
        if metrics["jobs_total"]["done"] != total_jobs:
            print("metrics report undone jobs")
            failures += 1

        with open(out_path, "w", encoding="utf-8") as handle_file:
            json.dump(metrics, handle_file, indent=2, sort_keys=True)
            handle_file.write("\n")
        print(f"metrics snapshot -> {out_path}")
    finally:
        handle.stop()

    if failures:
        print(f"\n{failures} service smoke check(s) failed")
        return 1
    print(f"{len(corpus)} corpus assays served clean by the daemon")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
