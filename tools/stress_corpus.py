#!/usr/bin/env python
"""Run the whole assay corpus under seeded fault injection.

CI runs this after the test suite: every corpus assay is executed under
``--seeds`` deterministic fault scenarios (default 12) at ``--rate``
(default 0.08).  A scenario is allowed to *fail* — recovery is bounded by
design — but every failure must surface as a structured
``FailureReport``; an unhandled exception escaping the harness fails the
sweep.  The sweep also asserts determinism: each corpus entry is stressed
twice and the two canonical JSON reports must be byte-identical.

Usage: PYTHONPATH=src python tools/stress_corpus.py [-v] [--seeds N] [--rate R]
"""

from __future__ import annotations

import argparse
import importlib.util
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.assays import (  # noqa: E402
    enzyme,
    extra,
    generators,
    glucose,
    glycomics,
    paper_example,
)
from repro.compiler import compile_assay, compile_dag  # noqa: E402
from repro.runtime.stress import stress_compiled  # noqa: E402


def custom_assay_source() -> str:
    path = REPO / "examples" / "custom_assay.py"
    spec = importlib.util.spec_from_file_location("custom_assay", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.SOURCE


def corpus():
    yield "figure2", compile_assay(paper_example.SOURCE)
    yield "glucose", compile_assay(glucose.SOURCE)
    yield "glycomics", compile_assay(glycomics.SOURCE)
    yield "enzyme", compile_assay(enzyme.SOURCE)
    yield "elisa", compile_assay(extra.ELISA_SOURCE)
    yield "bradford", compile_assay(extra.BRADFORD_SOURCE)
    yield "pcr-prep", compile_assay(extra.PCR_PREP_SOURCE)
    yield "custom-example", compile_assay(custom_assay_source())
    yield "gen-enzyme-4", compile_dag(generators.enzyme_n(4))
    yield "gen-dilution-6", compile_dag(generators.serial_dilution(6))
    yield "gen-mixtree-3", compile_dag(generators.binary_mix_tree(3))


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-v", action="store_true", dest="verbose")
    parser.add_argument("--seeds", type=int, default=12)
    parser.add_argument("--rate", type=float, default=0.08)
    args = parser.parse_args(argv)

    failures = 0
    for name, compiled in corpus():
        try:
            report = stress_compiled(
                compiled, seeds=args.seeds, fault_rate=args.rate
            )
            repeat = stress_compiled(
                compiled, seeds=args.seeds, fault_rate=args.rate
            )
        except Exception as error:  # noqa: BLE001 — the property under test
            print(f"{name:16s} UNHANDLED {type(error).__name__}: {error}")
            failures += 1
            continue
        if report.render_json() != repeat.render_json():
            print(f"{name:16s} NONDETERMINISTIC report")
            failures += 1
            continue
        total = len(report.scenarios)
        print(
            f"{name:16s} {report.survived}/{total} survived, "
            f"{sum(report.faults_by_kind().values())} faults injected, "
            f"{sum(report.recoveries_by_action().values())} recoveries"
        )
        if args.verbose:
            for line in report.render_text().splitlines()[1:]:
                print("  " + line)
    if failures:
        print(f"\n{failures} corpus entr(ies) failed the stress sweep")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
