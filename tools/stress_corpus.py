#!/usr/bin/env python
"""Run the whole assay corpus under seeded fault injection.

CI runs this after the test suite: every corpus assay is executed under
``--seeds`` deterministic fault scenarios (default 12) at ``--rate``
(default 0.08).  A scenario is allowed to *fail* — recovery is bounded by
design — but every failure must surface as a structured
``FailureReport``; an unhandled exception escaping the harness fails the
sweep.  The sweep also asserts determinism: each corpus entry is stressed
twice and the two canonical JSON reports must be byte-identical.

Usage: PYTHONPATH=src python tools/stress_corpus.py [-v] [--seeds N] [--rate R]
"""

from __future__ import annotations

import argparse
import sys

from _corpus import compiled_corpus

from repro.runtime.stress import stress_compiled


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-v", action="store_true", dest="verbose")
    parser.add_argument("--seeds", type=int, default=12)
    parser.add_argument("--rate", type=float, default=0.08)
    args = parser.parse_args(argv)

    failures = 0
    for name, compiled in compiled_corpus():
        try:
            report = stress_compiled(
                compiled, seeds=args.seeds, fault_rate=args.rate
            )
            repeat = stress_compiled(
                compiled, seeds=args.seeds, fault_rate=args.rate
            )
        except Exception as error:  # noqa: BLE001 — the property under test
            print(f"{name:16s} UNHANDLED {type(error).__name__}: {error}")
            failures += 1
            continue
        if report.render_json() != repeat.render_json():
            print(f"{name:16s} NONDETERMINISTIC report")
            failures += 1
            continue
        total = len(report.scenarios)
        print(
            f"{name:16s} {report.survived}/{total} survived, "
            f"{sum(report.faults_by_kind().values())} faults injected, "
            f"{sum(report.recoveries_by_action().values())} recoveries"
        )
        if args.verbose:
            for line in report.render_text().splitlines()[1:]:
                print("  " + line)
    if failures:
        print(f"\n{failures} corpus entr(ies) failed the stress sweep")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
