#!/usr/bin/env python
"""Batch-compile the repo's corpus through the plan cache, cold then warm.

CI's cache smoke job: runs :func:`repro.compiler.batch.compile_many` over
the assay corpus twice against one shared :class:`PlanCache` —

* **cold** with ``--jobs`` worker processes and ``certify=True``: every
  program must compile and certify clean (a certify regression fails the
  job even though this is "only" the cache smoke test);
* **warm**: every static program must be served from the cache (status
  ``hit``), and with ``certify=True`` again the restored plans must still
  certify clean — a cache round-trip that broke a plan fails here.

Exits nonzero on any compile failure, certify regression, or missing
warm hit.

Usage: PYTHONPATH=src python tools/batch_corpus.py [--jobs N] [-v]
"""

from __future__ import annotations

import argparse
import sys

from _corpus import batch_jobs

from repro.compiler.batch import compile_many
from repro.compiler.cache import PlanCache


def check_report(label: str, report, *, expect_hits: bool) -> int:
    failures = 0
    for result in report.results:
        if result.status == "failed":
            print(f"  {label}: {result.name} failed: {result.detail}")
            failures += 1
        elif result.errors:
            print(f"  {label}: {result.name} has {result.errors} error(s)")
            failures += 1
        elif result.certified_clean is False:
            print(f"  {label}: {result.name} failed plan certification")
            failures += 1
        elif (
            expect_hits
            and result.cacheable
            and result.status not in ("hit", "deduped")
        ):
            # runtime-deferred plans (plan_status == "runtime") are not
            # cacheable and legitimately recompile warm
            print(
                f"  {label}: {result.name} missed the warm cache "
                f"(status {result.status})"
            )
            failures += 1
    return failures


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)

    cache = PlanCache()
    jobs = batch_jobs()

    cold = compile_many(
        jobs, cache=cache, max_workers=args.jobs, certify=True
    )
    print(f"cold (jobs={args.jobs}):")
    print(cold.render())
    failures = check_report("cold", cold, expect_hits=False)

    warm = compile_many(jobs, cache=cache, certify=True)
    print("\nwarm (certified):")
    print(warm.render())
    failures += check_report("warm", warm, expect_hits=True)

    stats = cache.stats.to_dict()
    print(
        f"\ncache: {stats['hits']} hit / {stats['misses']} miss "
        f"(rate {stats['hit_rate']:.0%}), "
        f"{stats['uncacheable']} uncacheable"
    )
    if args.verbose:
        import json

        print(json.dumps(stats, indent=2))
    if failures:
        print(f"\n{failures} batch-cache check(s) failed")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
