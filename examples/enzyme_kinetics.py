"""Enzyme-kinetics assay (paper Figure 11): the hard volume-management case.

Walks the Figure 14 narrative — the 1:999 dilutions underflow at 9.8 pl,
cascading and static replication repair the plan — then compiles the assay
through the automatic hierarchy and executes the 64-combination screen on
the simulator.

Run:  python examples/enzyme_kinetics.py
"""

from fractions import Fraction

from repro import PAPER_LIMITS, dagsolve
from repro.assays import enzyme
from repro.compiler import compile_assay
from repro.core.cascading import cascade_mix, stage_factors
from repro.core.dagsolve import compute_vnorms
from repro.core.replication import replicate_node
from repro.machine import AQUACORE_SPEC, Machine
from repro.runtime import AssayExecutor


def pl(volume) -> str:
    return f"{float(volume) * 1000:.1f} pl"


def main() -> None:
    print("=== Step 1: the raw plan underflows (paper Figure 14a) ===")
    dag = enzyme.build_dag()
    raw = dagsolve(dag, PAPER_LIMITS)
    key, minimum = raw.min_edge()
    print(f"diluent Vnorm: {float(raw.vnorms.node_vnorm['diluent']):.1f} "
          "(the binding fluid)")
    print(f"dilution volume: "
          f"{float(raw.node_volume['enzyme.dil1']):.1f} nl each")
    print(f"minimum dispense: {pl(minimum)} at {key[0]} -> {key[1]} "
          f"(least count is {pl(PAPER_LIMITS.least_count)}) -> UNDERFLOW")

    print("\n=== Step 2: cascade the 1:999 mixes into three 1:9 stages ===")
    cascaded = dag
    for reagent in enzyme.REAGENTS:
        cascaded, report = cascade_mix(
            cascaded, f"{reagent}.dil4", stage_factors(Fraction(1000), 3)
        )
        print(f"  {report}")
    after_cascade = dagsolve(cascaded, PAPER_LIMITS)
    key, minimum = after_cascade.min_edge()
    print(f"diluent uses: 12 -> {cascaded.out_degree('diluent')}, "
          f"Vnorm -> {float(after_cascade.vnorms.node_vnorm['diluent']):.1f}")
    print(f"new minimum: {pl(minimum)} at the 1:99 mixes -> still underflow")

    print("\n=== Step 3: replicate the diluent three ways ===")
    vnorms = compute_vnorms(cascaded)
    weights = {
        e.key: vnorms.edge_vnorm[e.key]
        for e in cascaded.out_edges("diluent")
    }
    final_dag, report = replicate_node(
        cascaded, "diluent", 3, weights=weights
    )
    print(f"  {report}: each replica serves "
          f"{len(report.distribution[0])} uses")
    final = dagsolve(final_dag, PAPER_LIMITS)
    key, minimum = final.min_edge()
    print(f"replica Vnorm: {float(final.vnorms.node_vnorm['diluent']):.1f}")
    print(f"final minimum: {pl(minimum)} -> FEASIBLE: {final.feasible}")

    print("\n=== Automatic compilation (the Figure 6 hierarchy) ===")
    compiled = compile_assay(enzyme.SOURCE)
    print(f"plan status: {compiled.plan.status}")
    for note in compiled.diagnostics:
        print(f"  {note}")
    print(f"{len(compiled.program)} AIS instructions; "
          f"peak reservoirs {compiled.program.meta['allocation_peak']}")

    print("\n=== Execute the 4x4x4 screen on the simulator ===")
    result = AssayExecutor(compiled, Machine(AQUACORE_SPEC)).run()
    print(f"wet instructions: {result.trace.wet_instruction_count}, "
          f"regenerations: {result.regenerations}, "
          f"readings collected: {len(result.results)}")


if __name__ == "__main__":
    main()
