"""Bradford protein quantitation: shared-reagent stress + curve fitting.

Six reactions share one dye reagent at 1:50 — a volume-management workload
where DAGSolve's equal-output constraint underflows and the LP fallback
(Figure 6's second stage) balances the plan.  The script compiles the
assay, shows which hierarchy stage produced the plan, executes it on the
machine model over a bus topology, fits the standard curve, and estimates
the unknown's protein concentration.

Run:  python examples/bradford_quantitation.py
"""

import dataclasses
from fractions import Fraction

import numpy as np

from repro.assays import extra
from repro.compiler import compile_assay
from repro.machine import AQUACORE_SPEC, Machine, bus_topology
from repro.runtime import AssayExecutor

#: hidden ground truth: the unknown is protein at 22% of the BSA stock.
UNKNOWN_CONCENTRATION = 0.22


def main() -> None:
    print("=== Compile (watch the hierarchy pick LP) ===")
    compiled = compile_assay(extra.BRADFORD_SOURCE)
    print(compiled.plan.summary())

    print("\n=== Execute over the shared-bus interconnect ===")
    # At 100 pl least count the 1:50 standard shares are only 1-2 metering
    # steps, and rounding biases the achieved ratios enough to skew the
    # quantitation by ~20%.  A 10 pl pump (finer PDMS valving) fixes it —
    # quantitation precision is metering precision.
    from repro.core.limits import HardwareLimits

    fine = HardwareLimits(max_capacity=Fraction(100), least_count=Fraction(1, 100))
    compiled = compile_assay(extra.BRADFORD_SOURCE, spec=AQUACORE_SPEC.with_limits(fine))
    spec = dataclasses.replace(
        AQUACORE_SPEC.with_limits(fine),
        extinction_coefficients={
            "bsa": Fraction(100),
            "unknown": Fraction(str(100 * UNKNOWN_CONCENTRATION)),
        },
    )
    machine = Machine(spec, topology=bus_topology(spec))
    result = AssayExecutor(compiled, machine).run()
    print(f"wet instructions: {result.trace.wet_instruction_count}, "
          f"fluid-path time: {float(result.trace.total_seconds):.0f} s, "
          f"regenerations: {result.regenerations}")

    print("\n=== Standard curve ===")
    # standards dilute BSA 1:1, 1:2, 1:4, 1:8, 1:16, then react 1:50 with
    # dye: the protein fraction in reaction i is (1/(1+2^(i-1))) / 51.
    fractions = np.array([1 / (1 + 2 ** (i - 1)) / 51 for i in range(1, 6)])
    readings = np.array(
        [float(result.results[f"Curve[{i}]"]) for i in range(1, 6)]
    )
    for fraction, reading in zip(fractions, readings):
        print(f"  protein fraction {fraction:.5f} -> OD {reading:.4f}")
    slope, intercept = np.polyfit(fractions, readings, 1)
    print(f"fit: OD = {slope:.2f} x fraction + {intercept:.5f}")

    print("\n=== Unknown ===")
    sample_od = float(result.results["Sample"])
    implied_fraction = (sample_od - intercept) / slope
    # the unknown reacted neat (1:50), so its protein fraction is c/51
    estimated = implied_fraction * 51
    print(f"sample OD: {sample_od:.4f}")
    print(f"estimated concentration: {estimated:.3f} x stock "
          f"(true {UNKNOWN_CONCENTRATION})")
    assert abs(estimated - UNKNOWN_CONCENTRATION) < 0.02


if __name__ == "__main__":
    main()
