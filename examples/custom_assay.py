"""Authoring a new assay: a bacterial-growth inhibition screen.

Demonstrates language features beyond the paper's three benchmarks:

* loops with computed ratios (a two-fold antibiotic dilution ladder);
* a YIELD hint making a separation's output statically known (Section
  3.5's programmer hint — the whole assay stays compile-time plannable);
* a dynamic IF on a sensed value (conservatively provisioned, executed
  one-sided);
* CONCENTRATE with a KEEP clause.

Run:  python examples/custom_assay.py
"""

import dataclasses
from fractions import Fraction

from repro.compiler import compile_assay
from repro.machine import AQUACORE_SPEC, Machine, SpeciesFilter
from repro.runtime import AssayExecutor

SOURCE = """\
ASSAY inhibition_screen
START
fluid antibiotic, broth, culture, matrix, washbuf;
fluid cells, waste1;
fluid Dilution[4];
VAR i, temp, ladder, Reading[4];

-- Concentrate the cell culture on an affinity column; the YIELD hint
-- (we keep roughly 2 parts in 5) keeps the plan fully static.
SEPARATE culture MATRIX matrix USING washbuf YIELD 2 : 5 FOR 120
    INTO cells AND waste1;

-- Two-fold antibiotic ladder: 1:1, 1:3, 1:7, 1:15 in broth
-- (the same temp-variable idiom as the paper's enzyme assay).
temp = 2;
ladder = 1;
FOR i FROM 1 TO 4 START
Dilution[i] = MIX antibiotic AND broth IN RATIOS 1 : ladder FOR 20;
temp = temp * 2;
ladder = temp - 1;
ENDFOR

-- Challenge equal cell aliquots with each dilution and read growth.
FOR i FROM 1 TO 4 START
MIX Dilution[i] AND cells IN RATIOS 3 : 1 FOR 60;
INCUBATE it AT 37 FOR 600;
SENSE OPTICAL it INTO Reading[i];
ENDFOR

-- If the strongest dose still shows growth, boil down a confirmation
-- aliquot; otherwise just read the control.  The condition depends on a
-- sensed value, so both branches are provisioned and the taken one is
-- decided at run time.
IF Reading[4] > 0 THEN
MIX Dilution[4] AND cells IN RATIOS 3 : 1 FOR 60;
CONCENTRATE it AT 90 FOR 120 KEEP 1 : 2;
SENSE OPTICAL it INTO Reading[1];
ELSE
MIX Dilution[1] AND cells IN RATIOS 3 : 1 FOR 60;
SENSE OPTICAL it INTO Reading[2];
ENDIF
END
"""


def main() -> None:
    print("=== Compile ===")
    compiled = compile_assay(SOURCE)
    print(f"static plan: {compiled.is_static} "
          "(the YIELD hint removed the unknown volume)")
    print(f"plan status: {compiled.plan.status}")
    for diagnostic in compiled.diagnostics:
        print(f"  {diagnostic}")
    assignment = compiled.assignment
    key, minimum = assignment.min_edge()
    print(f"min dispense: {float(minimum):.2f} nl at {key[0]} -> {key[1]}")

    print("\n=== Ladder volumes ===")
    for i in range(1, 5):
        node = f"Dilution[{i}]"
        volume = assignment.node_volume[node]
        print(f"  {node}: {float(volume):6.2f} nl")

    print("\n=== Program (first 20 instructions) ===")
    for instruction in compiled.program.instructions[:20]:
        print(f"  {instruction.render()}")
    print(f"  ... ({len(compiled.program)} total)")

    print("\n=== Execute ===")
    spec = dataclasses.replace(
        AQUACORE_SPEC,
        extinction_coefficients={"culture": Fraction(3)},
    )
    machine = Machine(
        spec,
        separation_models={
            # the affinity column keeps the cells at 40% recovery on
            # culture solids — consistent with the YIELD 2:5 hint
            "separator1": SpeciesFilter(["culture"], recovery=Fraction(2, 5)),
        },
    )
    result = AssayExecutor(compiled, machine).run()
    print(f"regenerations: {result.regenerations}, "
          f"guarded statements skipped: {result.skipped_guarded}")
    for name, value in sorted(result.results.items()):
        print(f"  {name} = {float(value):.4f}")


if __name__ == "__main__":
    main()
