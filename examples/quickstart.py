"""Quickstart: volume management on the paper's running example (Figure 2).

Builds the four-mix assay, runs DAGSolve, prints the Vnorms and dispensed
volumes of paper Figure 5, then compiles the assay all the way to AquaCore
instructions.

Run:  python examples/quickstart.py
"""

from repro import PAPER_LIMITS, dagsolve
from repro.compiler import compile_assay
from repro.assays import paper_example


def main() -> None:
    print("=== The assay (paper Figure 2) ===")
    print(paper_example.SOURCE)

    dag = paper_example.build_dag()
    print(f"DAG: {dag.node_count} nodes, {dag.edge_count} edges")
    print(f"inputs:  {[n.id for n in dag.inputs()]}")
    print(f"outputs: {[n.id for n in dag.outputs()]}")

    print("\n=== DAGSolve backward pass: Vnorms (Figure 5a) ===")
    assignment = dagsolve(dag, PAPER_LIMITS)
    vnorms = assignment.vnorms.node_vnorm
    for node_id in sorted(vnorms):
        print(f"  Vnorm({node_id}) = {vnorms[node_id]}  "
              f"(~{float(vnorms[node_id]):.3f})")

    print("\n=== Dispensing pass: absolute volumes (Figure 5b) ===")
    print(f"  machine: max {float(PAPER_LIMITS.max_capacity):g} nl, "
          f"least count {float(PAPER_LIMITS.least_count):g} nl")
    for node_id, volume in sorted(assignment.node_volume.items()):
        print(f"  {node_id}: {float(volume):6.1f} nl")
    key, minimum = assignment.min_edge()
    print(f"  smallest transfer: {key[0]} -> {key[1]} at "
          f"{float(minimum):.1f} nl")
    print(f"  feasible: {assignment.feasible}")

    print("\n=== Compiled AquaCore program ===")
    compiled = compile_assay(paper_example.SOURCE)
    print(compiled.listing())
    print(f"\nplan status: {compiled.plan.status}; "
          f"diagnostics: {len(compiled.diagnostics)}")


if __name__ == "__main__":
    main()
