"""Glucose concentration assay (paper Figure 9): full wet workflow.

Compiles the glucose assay, executes it on the AquaCore simulator with a
Beer-Lambert optical model, fits the calibration curve from the four
standard dilutions, and estimates the unknown sample's concentration from
its reading — the actual purpose of the assay in [Srinivasan et al. 2003].

Run:  python examples/glucose_calibration.py
"""

import dataclasses
from fractions import Fraction

import numpy as np

from repro.assays import glucose
from repro.compiler import compile_assay
from repro.machine import AQUACORE_SPEC, Machine
from repro.runtime import AssayExecutor

#: ground truth the simulation hides inside the machine: the sample *is*
#: glucose solution at 35% of the standard's concentration.
SAMPLE_CONCENTRATION = 0.35


def main() -> None:
    print("=== Compile ===")
    compiled = compile_assay(glucose.SOURCE)
    print(f"{len(compiled.program)} AIS instructions; "
          f"plan: {compiled.plan.status}; "
          f"min dispense {float(compiled.assignment.min_edge()[1]):.2f} nl")

    print("\n=== Execute on the AquaCore model ===")
    spec = dataclasses.replace(
        AQUACORE_SPEC,
        extinction_coefficients={
            "Glucose": Fraction(2),
            # the sample's optical response scales with its concentration
            "Sample": Fraction(str(2 * SAMPLE_CONCENTRATION)),
        },
    )
    machine = Machine(spec)
    result = AssayExecutor(compiled, machine).run()
    print(f"wet instructions executed: {result.trace.wet_instruction_count}")
    print(f"regenerations: {result.regenerations}")
    for name, reading in sorted(result.results.items()):
        print(f"  {name} = {float(reading):.4f}")

    print("\n=== Calibration fit ===")
    # The standards dilute glucose 1:1, 1:2, 1:4, 1:8 -> glucose fractions
    # 1/2, 1/3, 1/5, 1/9 of the mixture.
    fractions = np.array([1 / 2, 1 / 3, 1 / 5, 1 / 9])
    readings = np.array(
        [float(result.results[f"Result[{i}]"]) for i in range(1, 5)]
    )
    slope, intercept = np.polyfit(fractions, readings, 1)
    residual = float(
        np.max(np.abs(slope * fractions + intercept - readings))
    )
    print(f"OD = {slope:.4f} x glucose-fraction + {intercept:.4f} "
          f"(max residual {residual:.2e})")

    sample_od = float(result.results["Result[5]"])
    # The sample mix is 1:1 with reagent, so its glucose-equivalent
    # fraction is concentration/2; invert the calibration line.
    implied_fraction = (sample_od - intercept) / slope
    estimated = implied_fraction * 2
    print("\n=== Sample estimate ===")
    print(f"sample OD reading:        {sample_od:.4f}")
    print(f"estimated concentration:  {estimated:.3f} x standard")
    print(f"true concentration:       {SAMPLE_CONCENTRATION:.3f} x standard")
    error = abs(estimated - SAMPLE_CONCENTRATION)
    print(f"absolute error:           {error:.4f}")
    assert error < 0.01, "calibration should recover the concentration"


if __name__ == "__main__":
    main()
