"""Glycomics assay (paper Figure 10): run-time volume management.

The three chromatography/affinity separations produce volumes nobody knows
at compile time, so the compiler partitions the DAG (Figure 13) and defers
each partition's dispensing until its measurements exist.  This script runs
the assay twice — once with generous separation yields and once with a
starved second separation — to show the run-time system scaling partitions
to measured volumes and, in the starved case, how close the X2 = 1/204
constrained input sails to the least count (the paper's explicit concern).

Run:  python examples/glycomics_runtime.py
"""

from fractions import Fraction

from repro.assays import glycomics
from repro.compiler import compile_assay
from repro.machine import AQUACORE_SPEC, Machine, SpeciesFilter, FractionalYield
from repro.runtime import AssayExecutor


def run_with(yield1: Fraction, yield2: Fraction, label: str) -> None:
    print(f"--- {label}: affinity yield {float(yield1):.0%}, "
          f"LC yield {float(yield2):.0%} ---")
    compiled = compile_assay(glycomics.SOURCE)
    machine = Machine(
        AQUACORE_SPEC,
        separation_models={
            "separator1": FractionalYield(yield1),
            "separator2": FractionalYield(yield2),
        },
    )
    executor = AssayExecutor(compiled, machine)
    result = executor.run()
    print(f"  regenerations: {result.regenerations}")
    for node, measured in result.measurements.entries:
        print(f"  measured {node}: {float(measured):.2f} nl")
    session = executor.resolver.session
    for index, assignment in sorted(session.assignments.items()):
        key, minimum = assignment.min_edge()
        print(
            f"  partition {index}: scale {float(assignment.scale):8.2f}, "
            f"min transfer {float(minimum):7.3f} nl "
            f"({key[0]} -> {key[1]})"
        )
    print()


def main() -> None:
    compiled = compile_assay(glycomics.SOURCE)
    print("=== Compile-time analysis ===")
    print(f"partitions: {compiled.planner.n_partitions} "
          "(the Figure 13 cut at the three separators)")
    for partition in compiled.planner.partitions:
        constrained = ", ".join(
            f"{s.node_id} ({'measured' if s.needs_measurement else f'{float(s.static_available):g} nl'})"
            for s in partition.constrained
        ) or "none"
        print(f"  p{partition.index}: {len(partition.members)} ops; "
              f"constrained inputs: {constrained}")
    print("compiler diagnostics:")
    for diagnostic in compiled.diagnostics:
        print(f"  {diagnostic}")
    print()

    run_with(Fraction(1, 2), Fraction(1, 2), "generous yields")
    run_with(Fraction(1, 2), Fraction(1, 20), "starved LC separation")

    print("The starved run scales partition 3 down by 10x; push the yield")
    print("much lower and the X2 draw hits the least count — the point at")
    print("which the executor falls back on Biostream-style regeneration.")


if __name__ == "__main__":
    main()
