"""Shared paper-vs-measured reporting for the benchmark harness.

Every benchmark records rows via :func:`record`; the conftest's
``pytest_terminal_summary`` hook prints one aligned table per experiment at
the end of the run, so ``pytest benchmarks/ --benchmark-only`` regenerates
the paper's tables and figures in one shot.
"""

from __future__ import annotations

from dataclasses import dataclass

Value = int | float | str | None

#: experiment id -> rows; populated by the benchmark modules.
RESULTS: dict[str, list["Row"]] = {}


@dataclass
class Row:
    metric: str
    paper: Value
    measured: Value
    note: str = ""

    def format(self, width: int) -> str:
        def show(value: Value) -> str:
            if value is None:
                return "-"
            if isinstance(value, float):
                return f"{value:.6g}"
            return str(value)

        return (
            f"  {self.metric:<{width}}  "
            f"{show(self.paper):>14}  {show(self.measured):>14}  {self.note}"
        )


def record(
    experiment: str,
    metric: str,
    paper: Value,
    measured: Value,
    note: str = "",
) -> None:
    """Record one paper-vs-measured row for the end-of-run table."""
    RESULTS.setdefault(experiment, []).append(Row(metric, paper, measured, note))


def render_all() -> str:
    lines: list[str] = []
    for experiment in sorted(RESULTS):
        rows = RESULTS[experiment]
        width = max(len(row.metric) for row in rows)
        width = max(width, len("metric"))
        lines.append("")
        lines.append(f"=== {experiment} ===")
        lines.append(
            f"  {'metric':<{width}}  {'paper':>14}  {'measured':>14}"
        )
        lines.extend(row.format(width) for row in rows)
    return "\n".join(lines)
