"""The service value proposition: a resident compiler vs cold CLI starts.

``repro serve`` exists because every CLI invocation pays interpreter
boot, imports, and a cold plan cache.  This benchmark measures exactly
that trade on the paper's benchmark assays:

* **cold CLI** — ``python -m repro compile`` in a fresh subprocess per
  assay (interpreter boot + imports + cold compile);
* **warm served** — the same assays submitted to one live daemon whose
  tenant cache was seeded by a first sweep.

Hard assertions, recorded in ``benchmarks/BENCH_service.json``:

* warm served compile >= 5x faster than the cold CLI invocation
  (acceptance floor for the daemon);
* served artifacts byte-identical to the CLI output;
* a concurrent mini-soak completes with zero lost jobs and exact
  metrics reconciliation.
"""

import json
import os
import pathlib
import subprocess
import sys
import threading
import time

import _report

from repro.assays import enzyme, glucose, paper_example
from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig, start_in_thread

OUT_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_service.json"
REPO = pathlib.Path(__file__).resolve().parents[1]

SERVED_SPEEDUP_FLOOR = 5.0

ASSAYS = {
    "figure2": paper_example.SOURCE,
    "glucose": glucose.SOURCE,
    "enzyme": enzyme.SOURCE,
}


def cli_compile(path: pathlib.Path) -> tuple[bytes, float]:
    env = {**os.environ, "PYTHONPATH": str(REPO / "src")}
    started = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "compile", str(path)],
        capture_output=True,
        env=env,
        cwd=REPO,
    )
    wall = time.perf_counter() - started
    assert proc.returncode == 0, proc.stderr.decode()
    return proc.stdout, wall


def test_served_warm_vs_cold_cli(tmp_path):
    handle = start_in_thread(ServiceConfig(workers=1))
    try:
        client = ServiceClient(handle.url, tenant="bench")

        cli_outputs: dict[str, bytes] = {}
        cold_cli_s = 0.0
        for name, source in ASSAYS.items():
            path = tmp_path / f"{name}.assay"
            path.write_text(source)
            output, wall = cli_compile(path)
            cli_outputs[name] = output
            cold_cli_s += wall

        # seed the tenant cache, then measure the warm served sweep
        for name, source in ASSAYS.items():
            seed = client.run("compile", source, name=name)["result"]
            assert seed["cache"] == "miss"

        warm_served_s = 0.0
        served: dict[str, bytes] = {}
        for name, source in ASSAYS.items():
            started = time.perf_counter()
            body = client.run("compile", source, name=name)
            artifact = client.artifact(body["job"]["id"])
            warm_served_s += time.perf_counter() - started
            assert body["result"]["cache"] == "hit"
            served[name] = artifact

        for name, output in cli_outputs.items():
            assert served[name] == output, f"{name}: served != CLI bytes"

        speedup = (
            cold_cli_s / warm_served_s if warm_served_s > 0 else float("inf")
        )
        metrics = client.metrics()
        payload = {
            "assays": sorted(ASSAYS),
            "cold_cli_s": round(cold_cli_s, 6),
            "warm_served_s": round(warm_served_s, 6),
            "served_speedup": round(speedup, 2),
            "threshold": {"served_speedup_floor": SERVED_SPEEDUP_FLOOR},
            "byte_identical": True,
            "job_latency_ms": metrics["job_latency_ms"],
            "cache": metrics["cache"],
        }
        _report.record(
            "compile service",
            f"warm served vs cold CLI ({len(ASSAYS)} assays)",
            f">= {SERVED_SPEEDUP_FLOOR}x",
            f"{speedup:.1f}x "
            f"({cold_cli_s * 1000:.0f} ms -> {warm_served_s * 1000:.0f} ms)",
        )
    finally:
        handle.stop()

    payload["soak"] = _mini_soak()
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    assert speedup >= SERVED_SPEEDUP_FLOOR, (
        f"warm served speedup {speedup:.2f}x below the "
        f"{SERVED_SPEEDUP_FLOOR}x floor"
    )


def _mini_soak() -> dict:
    """3 tenants x 6 jobs against one daemon: zero lost jobs, exact
    metrics.  Returns the JSON summary embedded in BENCH_service.json."""
    handle = start_in_thread(ServiceConfig(workers=2))
    try:
        tenants = ("soak-a", "soak-b", "soak-c")
        per_client = 6
        done: dict[str, list[str]] = {tenant: [] for tenant in tenants}
        errors: list[BaseException] = []
        barrier = threading.Barrier(len(tenants))

        def hammer(tenant: str) -> None:
            try:
                client = ServiceClient(handle.url, tenant=tenant)
                barrier.wait(timeout=60)
                ids = []
                for i in range(per_client):
                    name = sorted(ASSAYS)[i % len(ASSAYS)]
                    job = client.submit(
                        "compile", ASSAYS[name], name=name
                    )
                    ids.append(job["id"])
                for job_id in ids:
                    final = client.wait(job_id, timeout=300)
                    assert final["state"] == "done", final
                    done[tenant].append(job_id)
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(tenant,))
            for tenant in tenants
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        assert not errors, errors

        total = len(tenants) * per_client
        all_ids = [job_id for ids in done.values() for job_id in ids]
        assert len(all_ids) == total, "lost jobs"
        assert len(set(all_ids)) == total, "duplicated jobs"
        metrics = ServiceClient(handle.url).metrics()
        assert metrics["jobs_total"]["submitted"] == total
        assert metrics["jobs_total"]["done"] == total
        assert metrics["jobs_total"]["failed"] == 0
        return {
            "tenants": len(tenants),
            "jobs": total,
            "lost": 0,
            "duplicated": 0,
            "coalesced": metrics["coalesced"],
        }
    finally:
        handle.stop()


def test_soak_summary_recorded():
    """BENCH_service.json carries the soak block the acceptance bar asks
    for (the soak itself runs inside the main benchmark)."""
    if not OUT_PATH.exists():  # pragma: no cover - ordering guard
        return
    payload = json.loads(OUT_PATH.read_text())
    assert payload["soak"]["lost"] == 0
    assert payload["soak"]["duplicated"] == 0
