"""Section 4.3's scaling claim: 'DAGSolve scales better than LP for large
problem sizes.'

Sweeps the EnzymeN family (N dilutions -> N^3 combination mixes) and fits
the growth of DAGSolve (float fast path) against LP (HiGHS, relaxed
bounds).  The reproducible shape: LP time grows strictly faster than
DAGSolve time across the sweep, so the ratio increases with N.
"""

import time

import _report
import pytest

from repro.core.fastpath import fast_dagsolve, prepare_fast
from repro.core.limits import PAPER_LIMITS
from repro.core.lp import solve_model
from repro.core.lpmodel import build_lp_model
from repro.assays import enzyme

SWEEP = (2, 4, 6, 8, 10)


def timed(fn, *args, repeat=3):
    best = float("inf")
    for __ in range(repeat):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("n", SWEEP)
def test_dagsolve_scaling(benchmark, n):
    dag = enzyme.build_dag(n)
    benchmark(fast_dagsolve, dag, PAPER_LIMITS)


@pytest.mark.parametrize("n", SWEEP)
def test_lp_scaling(benchmark, n):
    dag = enzyme.build_dag(n)

    def solve():
        model = build_lp_model(dag, PAPER_LIMITS, min_volume_bounds=False)
        return solve_model(model)

    benchmark(solve)


def test_ratio_grows_with_size(benchmark):
    def sweep():
        ratios = {}
        for n in SWEEP:
            dag = enzyme.build_dag(n)
            t_ds = timed(fast_dagsolve, dag, PAPER_LIMITS)

            def lp():
                model = build_lp_model(
                    dag, PAPER_LIMITS, min_volume_bounds=False
                )
                solve_model(model)

            t_lp = timed(lp)
            ratios[n] = (t_ds, t_lp)
        return ratios

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for n, (t_ds, t_lp) in ratios.items():
        _report.record(
            "sec4.3 EnzymeN scaling sweep",
            f"N={n} ({n ** 3} combination mixes)",
            None,
            f"DAGSolve {t_ds * 1000:.2f} ms, LP {t_lp * 1000:.2f} ms "
            f"(ratio {t_lp / t_ds:.1f}x)",
        )
    small = ratios[SWEEP[0]]
    large = ratios[SWEEP[-1]]
    _report.record(
        "sec4.3 EnzymeN scaling sweep",
        "LP/DAGSolve ratio, N=2 -> N=10",
        "grows with N (paper: 9x -> 771x)",
        f"{small[1] / small[0]:.1f}x -> {large[1] / large[0]:.1f}x",
    )
    # The shape claim: LP is slower everywhere and the absolute gap widens.
    for n, (t_ds, t_lp) in ratios.items():
        assert t_lp > t_ds, f"N={n}"
    assert (large[1] - large[0]) > (small[1] - small[0])


@pytest.mark.parametrize("n", (4, 8))
def test_prepared_context_reuse(benchmark, n):
    """Repeated solves over one DAG skip the adjacency/ratio table build.

    The batch driver and the regeneration executor re-solve the same graph
    many times; :func:`prepare_fast` hoists the per-node table construction
    out of the loop, leaving only the arithmetic passes.
    """
    dag = enzyme.build_dag(n)
    context = prepare_fast(dag)
    t_fresh = timed(fast_dagsolve, dag, PAPER_LIMITS, repeat=5)
    t_prepared = timed(fast_dagsolve, context, PAPER_LIMITS, repeat=5)
    benchmark(fast_dagsolve, context, PAPER_LIMITS)
    _report.record(
        "sec4.3 fast-path prepared context",
        f"N={n} solve, fresh vs prepared",
        None,
        f"{t_fresh * 1000:.2f} ms -> {t_prepared * 1000:.2f} ms "
        f"({t_fresh / t_prepared:.1f}x)",
    )
    # the table build dominates a single solve; reuse must win clearly
    assert t_prepared < t_fresh
