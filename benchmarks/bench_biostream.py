"""Section 3.4.1's comparison with Biostream's fixed-ratio mixing.

Paper claim: "Because of their fixed-ratio mixing, achieving arbitrary mix
ratios always requires cascading (except for 1:1 mixing), which executes on
the slow fluid path, while our approach requires cascading only for
uncommon cases of extreme mix ratios."

This benchmark tabulates the wet mixing operations and discarded working
fluid each scheme needs to realise the paper's assays (Biostream trees
sized for the 2% chemistry tolerance of Section 4.2).
"""

from fractions import Fraction

import _report
import pytest

from repro.biostream.compare import ais_mix_cost, biostream_mix_cost
from repro.assays import enzyme, glucose, paper_example

ASSAYS = {
    "figure2": paper_example.build_dag,
    "glucose": glucose.build_dag,
    "enzyme": enzyme.build_dag,
}


@pytest.mark.parametrize("name", list(ASSAYS))
def test_mix_cost_comparison(benchmark, name):
    dag = ASSAYS[name]()

    def compare():
        return ais_mix_cost(dag), biostream_mix_cost(dag, Fraction(1, 50))

    ais, biostream = benchmark(compare)
    _report.record(
        "sec3.4.1 AIS vs Biostream mixing cost",
        f"{name}: wet mixes (AIS -> 1:1-only)",
        "AIS cheaper",
        f"{ais.mix_operations} -> {biostream.mix_operations} "
        f"({biostream.mix_operations / ais.mix_operations:.1f}x)",
    )
    _report.record(
        "sec3.4.1 AIS vs Biostream mixing cost",
        f"{name}: discarded working units",
        "excess only when cascading",
        f"{ais.discarded_units} -> {biostream.discarded_units}",
    )
    assert ais.mix_operations <= biostream.mix_operations


def test_extreme_ratio_both_schemes_cascade(benchmark):
    """For the enzyme's 1:999 dilutions, even AIS cascades — the paper's
    point is that this is the *uncommon* case, not the default."""
    from repro.core.cascading import cascade_mix, stage_factors

    def build():
        dag = ASSAYS["enzyme"]()
        for reagent in enzyme.REAGENTS:
            dag, __ = cascade_mix(
                dag, f"{reagent}.dil4", stage_factors(Fraction(1000), 3)
            )
        return ais_mix_cost(dag), biostream_mix_cost(dag, Fraction(1, 50))

    ais, biostream = benchmark(build)
    _report.record(
        "sec3.4.1 AIS vs Biostream mixing cost",
        "enzyme (cascaded): wet mixes",
        "AIS cascades only the 3 extreme mixes",
        f"{ais.mix_operations} vs {biostream.mix_operations}",
    )
    assert ais.mix_operations < biostream.mix_operations


def test_tolerance_sweep(benchmark):
    """Biostream's cost grows with the required ratio fidelity; AIS's does
    not (metering pumps hit the ratio directly)."""

    def sweep():
        dag = ASSAYS["glucose"]()
        costs = {}
        for denominator in (10, 50, 1000):
            costs[denominator] = biostream_mix_cost(
                dag, Fraction(1, denominator)
            ).mix_operations
        return costs, ais_mix_cost(dag).mix_operations

    costs, ais_mixes = benchmark(sweep)
    _report.record(
        "sec3.4.1 AIS vs Biostream mixing cost",
        "glucose 1:1-only mixes at tol 10% / 2% / 0.1%",
        f"AIS constant at {ais_mixes}",
        " / ".join(str(costs[d]) for d in (10, 50, 1000)),
    )
    assert costs[10] <= costs[50] <= costs[1000]
