"""Figure 14: the enzyme assay's cascade + replication walkthrough.

Follows the paper's *manual* procedure step by step and reports every
number from Section 4.2's narrative.
"""

from fractions import Fraction

import _report

from repro.assays import enzyme
from repro.core.cascading import cascade_mix, stage_factors
from repro.core.dagsolve import compute_vnorms, dagsolve
from repro.core.limits import PAPER_LIMITS
from repro.core.replication import replicate_node


def cascade_all(dag):
    for reagent in enzyme.REAGENTS:
        dag, __ = cascade_mix(
            dag, f"{reagent}.dil4", stage_factors(Fraction(1000), 3)
        )
    return dag


def replicate_diluent(dag, copies=3):
    vnorms = compute_vnorms(dag)
    weights = {
        e.key: vnorms.edge_vnorm[e.key] for e in dag.out_edges("diluent")
    }
    replicated, __ = replicate_node(dag, "diluent", copies, weights=weights)
    return replicated


def pl(volume):
    return round(float(volume) * 1000, 1)


def test_step1_baseline(benchmark):
    assignment = benchmark(dagsolve, enzyme.build_dag(), PAPER_LIMITS)
    vnorms = assignment.vnorms.node_vnorm
    _report.record(
        "fig14 enzyme walkthrough",
        "dilution Vnorm",
        "16/3 ~ 5.3",
        f"{vnorms['enzyme.dil1']} ~ {float(vnorms['enzyme.dil1']):.2f}",
    )
    _report.record(
        "fig14 enzyme walkthrough",
        "diluent Vnorm (max)",
        54,
        round(float(vnorms["diluent"]), 1),
    )
    _report.record(
        "fig14 enzyme walkthrough",
        "dilution volume (nl)",
        9.8,
        round(float(assignment.node_volume["enzyme.dil1"]), 1),
    )
    __, minimum = assignment.min_edge()
    _report.record(
        "fig14 enzyme walkthrough",
        "min dispense, no transforms (pl)",
        9.8,
        pl(minimum),
        "the 1:999 mixes underflow; LP fails too",
    )
    assert not assignment.feasible


def test_step2_cascade(benchmark):
    def run():
        dag = cascade_all(enzyme.build_dag())
        return dag, dagsolve(dag, PAPER_LIMITS)

    dag, assignment = benchmark(run)
    vnorms = assignment.vnorms.node_vnorm
    _report.record(
        "fig14 enzyme walkthrough",
        "diluent uses after cascade",
        18,
        dag.out_degree("diluent"),
    )
    _report.record(
        "fig14 enzyme walkthrough",
        "diluent Vnorm after cascade",
        81,
        round(float(vnorms["diluent"]), 1),
    )
    _report.record(
        "fig14 enzyme walkthrough",
        "cascade intermediate Vnorm",
        "16/3",
        str(vnorms["enzyme.dil4.cascade1"]),
    )
    first_stage = assignment.edge_volume[("enzyme", "enzyme.dil4.cascade1")]
    _report.record(
        "fig14 enzyme walkthrough",
        "first cascade stage reagent share (pl)",
        123,
        pl(first_stage),
        "paper's 123 pl is inconsistent with its own Vnorms; see EXPERIMENTS.md",
    )
    __, minimum = assignment.min_edge()
    _report.record(
        "fig14 enzyme walkthrough",
        "min dispense after cascade (pl)",
        65.6,
        pl(minimum),
        "now at the 1:99 mixes",
    )
    assert not assignment.feasible


def test_step3_cascade_plus_replication(benchmark):
    def run():
        dag = replicate_diluent(cascade_all(enzyme.build_dag()))
        return dag, dagsolve(dag, PAPER_LIMITS)

    dag, assignment = benchmark(run)
    vnorms = assignment.vnorms.node_vnorm
    _report.record(
        "fig14 enzyme walkthrough",
        "diluent replica Vnorm",
        27,
        round(float(vnorms["diluent"]), 1),
    )
    __, minimum = assignment.min_edge()
    _report.record(
        "fig14 enzyme walkthrough",
        "min dispense, cascade + 3x replication (pl)",
        196,
        pl(minimum),
        "all underflow eliminated",
    )
    assert assignment.feasible


def test_step4_replication_only(benchmark):
    def run():
        dag = replicate_diluent(enzyme.build_dag())
        return dagsolve(dag, PAPER_LIMITS)

    assignment = benchmark(run)
    __, minimum = assignment.min_edge()
    _report.record(
        "fig14 enzyme walkthrough",
        "min dispense, replication only (pl)",
        29.5,
        pl(minimum),
        "3 x 9.8; still underflow",
    )
    assert not assignment.feasible
