"""Batch compilation throughput: content-addressed cache + process fan-out.

The workload models a realistic PLoC compile fleet: the paper's benchmark
assays plus EnzymeN / serial-dilution / mix-tree families, with duplicate
submissions (a calibration sweep resubmitting the same ladder).  Three
configurations are measured over the same job list:

* **cold, jobs=1** — empty cache, sequential;
* **cold, jobs=4** — empty cache, four worker processes;
* **warm, jobs=1** — re-run against the populated cache.

Results (and the thresholds applied) are written to
``benchmarks/BENCH_compile_throughput.json``.  Hard assertions:

* warm-over-cold throughput >= 5x (the cache tentpole);
* cold jobs=4 wall clock > 1.5x faster than jobs=1 — asserted only when
  the host exposes >= 2 CPUs (a single-core container cannot speed up
  CPU-bound work by adding processes; the measured numbers are recorded
  in the JSON either way, with the gate decision).
"""

import json
import os
import pathlib
import time

import _report

from repro.assays import enzyme as enzyme_assay
from repro.assays import extra, generators, glucose, paper_example
from repro.compiler.batch import BatchJob, compile_many
from repro.compiler.cache import PlanCache
from repro.compiler.passes import PassEventBus, run_compile

OUT_PATH = pathlib.Path(__file__).resolve().parent / (
    "BENCH_compile_throughput.json"
)

WARM_SPEEDUP_FLOOR = 5.0
PARALLEL_SPEEDUP_FLOOR = 1.5
PARALLEL_JOBS = 4


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def fleet_jobs():
    """~2 dozen jobs: paper assays, generator families, duplicates."""
    jobs = [
        BatchJob("figure2", source=paper_example.SOURCE),
        BatchJob("glucose", source=glucose.SOURCE),
        BatchJob("enzyme", source=enzyme_assay.SOURCE),
        BatchJob("elisa", source=extra.ELISA_SOURCE),
        BatchJob("bradford", source=extra.BRADFORD_SOURCE),
        BatchJob("pcr-prep", source=extra.PCR_PREP_SOURCE),
    ]
    # a calibration sweep resubmits the same assays verbatim
    jobs += [
        BatchJob("figure2-resubmit", source=paper_example.SOURCE),
        BatchJob("glucose-resubmit", source=glucose.SOURCE),
    ]
    for n in (2, 3, 4):
        jobs.append(BatchJob(f"enzyme-{n}", dag=generators.enzyme_n(n)))
    for n in (4, 6, 8, 10):
        jobs.append(
            BatchJob(f"dilution-{n}", dag=generators.serial_dilution(n))
        )
    for depth in (2, 3, 4):
        jobs.append(
            BatchJob(
                f"mixtree-{depth}", dag=generators.binary_mix_tree(depth)
            )
        )
    for width in (4, 8):
        jobs.append(
            BatchJob(
                f"fanout-{width}", dag=generators.fanout_chain(width)
            )
        )
    return jobs


def pass_timings(*, cache):
    """Per-pass wall time, summed over the paper assays, for one run.

    Called twice (cold cache, then warm) so the throughput JSON records
    where the cache actually saves time: the warm column should show the
    hierarchy/round prefix collapsing while codegen stays put.
    """
    totals = {}
    for source in (paper_example.SOURCE, glucose.SOURCE,
                   enzyme_assay.SOURCE, extra.BRADFORD_SOURCE):
        bus = PassEventBus()
        run_compile(source=source, cache=cache, bus=bus)
        for event in bus.events:
            record = totals.setdefault(
                event.name, {"runs": 0, "skipped": 0, "wall_ms": 0.0}
            )
            if event.status == "skipped":
                record["skipped"] += 1
            else:
                record["runs"] += 1
                record["wall_ms"] += event.wall_s * 1000
    for record in totals.values():
        record["wall_ms"] = round(record["wall_ms"], 4)
    return dict(sorted(totals.items()))


def run_batch(jobs, *, cache, workers):
    started = time.perf_counter()
    report = compile_many(jobs, cache=cache, max_workers=workers)
    wall = time.perf_counter() - started
    assert report.failed == 0, [
        (r.name, r.detail) for r in report.results if r.status == "failed"
    ]
    return report, wall


def test_batch_cache_throughput():
    jobs = fleet_jobs()
    cpus = available_cpus()

    cache_seq = PlanCache()
    cold_seq, wall_cold_seq = run_batch(jobs, cache=cache_seq, workers=1)

    cache_par = PlanCache()
    cold_par, wall_cold_par = run_batch(
        jobs, cache=cache_par, workers=PARALLEL_JOBS
    )

    warm, wall_warm = run_batch(jobs, cache=cache_seq, workers=1)

    pass_cache = PlanCache()
    passes_cold = pass_timings(cache=pass_cache)
    passes_warm = pass_timings(cache=pass_cache)

    warm_speedup = wall_cold_seq / wall_warm if wall_warm > 0 else float("inf")
    parallel_speedup = (
        wall_cold_seq / wall_cold_par if wall_cold_par > 0 else float("inf")
    )
    parallel_gate_met = cpus >= 2

    payload = {
        "jobs": len(jobs),
        "unique_fingerprints": cold_seq.compiled,
        "cpus": cpus,
        "cold_jobs1": {
            "wall_s": round(wall_cold_seq, 6),
            "throughput_per_s": round(len(jobs) / wall_cold_seq, 3),
        },
        "cold_jobs4": {
            "workers": PARALLEL_JOBS,
            "wall_s": round(wall_cold_par, 6),
            "throughput_per_s": round(len(jobs) / wall_cold_par, 3),
        },
        "warm_jobs1": {
            "wall_s": round(wall_warm, 6),
            "throughput_per_s": round(len(jobs) / wall_warm, 3),
            "hits": warm.hits,
        },
        "warm_speedup": round(warm_speedup, 2),
        "parallel_speedup": round(parallel_speedup, 2),
        "thresholds": {
            "warm_speedup_floor": WARM_SPEEDUP_FLOOR,
            "parallel_speedup_floor": PARALLEL_SPEEDUP_FLOOR,
            "parallel_assertion_applied": parallel_gate_met,
            "parallel_assertion_reason": (
                "asserted: host has >= 2 CPUs"
                if parallel_gate_met
                else f"skipped: host exposes {cpus} CPU(s); process "
                "fan-out cannot beat sequential on a single core"
            ),
        },
        "cache": cache_seq.stats.to_dict(),
        # per-pass wall time over the paper assays: where the warm cache
        # actually saves (hierarchy/round collapse; codegen stays put)
        "pass_timings": {"cold": passes_cold, "warm": passes_warm},
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    _report.record(
        "batch compile cache",
        f"warm/cold throughput ({len(jobs)} jobs)",
        f">= {WARM_SPEEDUP_FLOOR}x",
        f"{warm_speedup:.1f}x "
        f"({wall_cold_seq * 1000:.0f} ms -> {wall_warm * 1000:.0f} ms)",
    )
    _report.record(
        "batch compile cache",
        f"cold wall clock, jobs=1 -> jobs={PARALLEL_JOBS}",
        f"> {PARALLEL_SPEEDUP_FLOOR}x on >= 2 CPUs",
        f"{parallel_speedup:.2f}x on {cpus} CPU(s)",
        note="" if parallel_gate_met else "assertion gated off: single CPU",
    )

    # every static plan must be served from the cache on the warm run
    recompiled = [
        r.name
        for r in warm.results
        if r.cacheable and r.status not in ("hit", "deduped")
    ]
    assert not recompiled, f"warm run recompiled {recompiled}"
    assert warm_speedup >= WARM_SPEEDUP_FLOOR, (
        f"warm cache speedup {warm_speedup:.2f}x below the "
        f"{WARM_SPEEDUP_FLOOR}x floor"
    )
    if parallel_gate_met:
        assert parallel_speedup > PARALLEL_SPEEDUP_FLOOR, (
            f"jobs={PARALLEL_JOBS} cold speedup {parallel_speedup:.2f}x "
            f"below the {PARALLEL_SPEEDUP_FLOOR}x floor on {cpus} CPUs"
        )


def test_batch_dedupes_duplicates():
    """Duplicate submissions compile once; the rest are dedupe results."""
    jobs = [
        BatchJob(f"ladder-{i}", dag=generators.serial_dilution(6))
        for i in range(6)
    ]
    report = compile_many(jobs, cache=PlanCache())
    assert report.compiled == 1
    assert report.deduped == 5
