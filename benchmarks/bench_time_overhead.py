"""The paper's core motivation, quantified: regeneration runs on the slow
fluid path (Section 1: "regeneration re-executes fluidic instructions ...
which are slow and are likely to incur overhead").

The machine model charges simulated wall time per wet instruction
(transfers 1 s, operations their declared duration); this benchmark
compares the fluid-path time of a planned execution against the naive
no-volume-management execution including its regenerations.
"""

from fractions import Fraction

import _report
import pytest

from repro.compiler import compile_assay
from repro.core.limits import PAPER_LIMITS
from repro.machine.interpreter import Machine
from repro.machine.spec import AQUACORE_SPEC
from repro.runtime.executor import AssayExecutor
from repro.runtime.regeneration import naive_regeneration_count
from repro.ir.builder import build_dag_from_flat
from repro.lang.parser import parse
from repro.lang.unroll import unroll
from repro.assays import enzyme, glucose


@pytest.mark.parametrize(
    "name,source",
    [("glucose", glucose.SOURCE), ("enzyme", enzyme.SOURCE)],
)
def test_regeneration_time_overhead(benchmark, name, source):
    """Overhead = naive fluid-path time vs the same cost model with every
    production executed exactly once (what a volume-managed plan does)."""
    from repro.core.dag import NodeKind

    def ideal_seconds_for(dag):
        total = Fraction(0)
        for node in dag.nodes():
            if node.kind is NodeKind.EXCESS:
                continue
            if node.kind in (NodeKind.INPUT, NodeKind.CONSTRAINED_INPUT):
                total += 1  # one input transfer
                continue
            inbound = [e for e in dag.in_edges(node.id) if not e.is_excess]
            total += len(inbound) + Fraction(node.meta.get("duration", 10))
        return total

    def measure():
        dag = build_dag_from_flat(unroll(parse(source)))
        naive = naive_regeneration_count(
            dag, PAPER_LIMITS, respect_least_count=False
        )
        return ideal_seconds_for(dag), naive.wet_seconds, naive

    ideal_seconds, naive_seconds, naive = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    overhead = float(naive_seconds) / float(ideal_seconds)
    extra = naive_seconds - ideal_seconds
    _report.record(
        "sec1 regeneration time overhead",
        f"{name}: fluid-path seconds, managed vs regenerating",
        "regeneration overhead avoided",
        f"{float(ideal_seconds):.0f} s vs {float(naive_seconds):.0f} s "
        f"(+{(overhead - 1) * 100:.0f}% = {float(extra):.0f} s for "
        f"{naive.regeneration_count} regens)",
    )
    # Every regeneration re-executes wet operations, so the naive run is
    # strictly slower.  (The enzyme's 300 s incubations dominate its total,
    # so the *relative* overhead is modest even at 83 regenerations — the
    # paper's point stands starkest on transfer/mix-bound assays.)
    assert naive_seconds > ideal_seconds
    assert extra >= naive.regeneration_count  # >= 1 s of wet work per regen


def test_dry_control_is_free(benchmark):
    """Section 2.1: the electronic control is orders of magnitude faster —
    dry instructions charge zero simulated wet time."""
    from repro.ir.instructions import dry_mov, dry_mul

    def run():
        machine = Machine(AQUACORE_SPEC)
        for __ in range(100):
            machine.execute(dry_mov("r0", 1))
            machine.execute(dry_mul("r0", 10))
        return machine.trace.total_seconds

    total = benchmark(run)
    _report.record(
        "sec1 regeneration time overhead",
        "200 dry instructions: simulated wet seconds",
        0,
        float(total),
    )
    assert total == 0
