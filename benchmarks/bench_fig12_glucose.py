"""Figure 12: DAGSolve on the glucose assay.

All volumes and uses are statically known, so everything happens at compile
time; the smallest dispensed volume is 3.3 nl, well above the 100 pl least
count; no transform and no regeneration is needed.
"""

from fractions import Fraction

import _report

from repro.core.dagsolve import dagsolve
from repro.core.limits import PAPER_LIMITS
from repro.runtime.regeneration import naive_regeneration_count
from repro.assays import glucose


def test_figure12_vnorms_and_volumes(benchmark):
    dag = glucose.build_dag()
    assignment = benchmark(dagsolve, dag, PAPER_LIMITS)
    vnorms = assignment.vnorms.node_vnorm
    _report.record(
        "fig12 glucose",
        "Vnorm(Reagent) (max)",
        "302/90 ~ 3.36",
        f"{vnorms['Reagent']} ~ {float(vnorms['Reagent']):.3f}",
    )
    assert vnorms["Reagent"] == Fraction(151, 45)
    _report.record(
        "fig12 glucose",
        "Vnorm(Glucose)",
        "103/90 ~ 1.14",
        f"{vnorms['Glucose']} ~ {float(vnorms['Glucose']):.3f}",
    )
    assert vnorms["Glucose"] == Fraction(103, 90)

    key, volume = assignment.min_edge()
    _report.record(
        "fig12 glucose",
        "smallest dispensed volume (nl)",
        3.3,
        round(float(volume), 2),
        f"edge {key[0]}->{key[1]}",
    )
    assert key == ("Glucose", "d")
    assert round(float(volume), 1) == 3.3
    _report.record(
        "fig12 glucose",
        "underflow/overflow violations",
        0,
        len(assignment.violations()),
    )
    assert assignment.feasible


def test_figure12_static_and_no_regeneration(benchmark):
    """'There is no run-time overhead for this assay' and Table 2's 'with
    DAGSolve, there are no regenerations'."""
    from repro.core.partition import partition_unknown_volumes

    dag = glucose.build_dag()
    partitioned = benchmark(partition_unknown_volumes, dag, PAPER_LIMITS)
    _report.record(
        "fig12 glucose",
        "partitions (1 = fully static)",
        1,
        partitioned.n_partitions,
    )
    assert partitioned.n_partitions == 1
    assert partitioned.partitions[0].is_static

    naive = naive_regeneration_count(dag, PAPER_LIMITS)
    _report.record(
        "fig12 glucose",
        "regenerations without volume management",
        2,
        naive.regeneration_count,
    )
