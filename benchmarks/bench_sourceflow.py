"""Source-level verification is O(1) in the loop trip count.

The unrolled pipeline pays for every iteration twice — unrolling the
loop into N statements, then linting all N of them — so its wall time
grows at least linearly in the bound.  The sourceflow verifier runs one
fixpoint over the rolled CFG: same number of abstract sweeps whether the
loop says ``FOR i FROM 1 TO 10`` or ``TO 10000``.

Sweeps the dilution-series template over N in {10, 10^2, 10^3, 10^4},
timing ``verify_source`` (rolled) against ``compile_assay`` +
``lint_program`` (unrolled).  Results land in
``benchmarks/BENCH_sourceflow.json``.  Hard assertions: the sweep count
is identical for every N, the rolled verdict stays clean, and at the
largest bound the unrolled path costs at least an order of magnitude
more wall time.
"""

import json
import pathlib
import time

import _report

from repro.analysis import lint_program, verify_source
from repro.compiler import compile_assay
from repro.machine.spec import AQUACORE_SPEC

OUT_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_sourceflow.json"

SWEEP = (10, 100, 1_000, 10_000)

TEMPLATE = """\
ASSAY scale
START
fluid reagent, diluent;
fluid bank[{n}];
VAR i;
FOR i FROM 1 TO {n} START
bank[i] = MIX reagent AND diluent IN RATIOS 1 : 3 FOR 10;
OUTPUT it;
ENDFOR
END
"""


def timed(fn, *args, repeat=3):
    best = float("inf")
    for __ in range(repeat):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def unrolled_lint(source):
    compiled = compile_assay(source)
    return lint_program(compiled.program, AQUACORE_SPEC)


def test_source_verification_is_flat_in_trip_count():
    payload = {"template": "dilution series", "points": []}
    rows = {}
    for n in SWEEP:
        source = TEMPLATE.format(n=n)
        report = verify_source(source, name="scale")
        assert report.is_clean, report.render_text()
        t_source = timed(verify_source, source)
        # a single unrolled pass at N=10^4 already takes ~10 s; one
        # measurement is plenty to make the point
        t_unrolled = timed(unrolled_lint, source, repeat=3 if n <= 100 else 1)
        rows[n] = (t_source, t_unrolled, report.stats["sweeps"])
        payload["points"].append(
            {
                "n": n,
                "source_ms": round(t_source * 1000, 3),
                "unrolled_ms": round(t_unrolled * 1000, 3),
                "sweeps": report.stats["sweeps"],
            }
        )
        _report.record(
            "source-level verification scaling",
            f"N={n} dilution series, rolled vs unrolled lint",
            "rolled analysis independent of N",
            f"source {t_source * 1000:.2f} ms "
            f"({report.stats['sweeps']} sweeps), "
            f"unrolled {t_unrolled * 1000:.2f} ms",
        )

    sweeps = {row[2] for row in rows.values()}
    assert len(sweeps) == 1, f"sweep count varies with N: {rows}"

    t_small = rows[SWEEP[0]]
    t_large = rows[SWEEP[-1]]
    # the unrolled pipeline pays per iteration; the verifier does not
    assert t_large[1] > t_small[1] * 10
    assert t_large[1] > t_large[0] * 10
    # "O(1)" with a generous allowance for timer noise
    assert t_large[0] < t_small[0] * 20 + 0.05

    payload["sweeps"] = sweeps.pop()
    payload["speedup_at_largest_n"] = round(t_large[1] / t_large[0], 1)
    _report.record(
        "source-level verification scaling",
        f"speedup at N={SWEEP[-1]}",
        None,
        f"{payload['speedup_at_largest_n']}x",
    )
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
