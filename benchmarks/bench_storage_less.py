"""Section 2.1's storage-less operand design argument (ablation).

Paper: "because intermediate fluids produced in assays are often used only
once and usually immediately after their production, binding the fluids to
storage results in unnecessarily moving the fluids from functional units to
storage and back.  To that end, AIS employs storage-less operands."

The ablation compiles the same DAGs with the feature disabled (every
consumed intermediate parked in a reservoir) and counts the extra ``move``
instructions — each one a slow fluid-path operation.
"""

import _report
import pytest

from repro.compiler.codegen import generate
from repro.ir.builder import build_dag_from_flat
from repro.ir.instructions import Opcode
from repro.lang.parser import parse
from repro.lang.unroll import unroll
from repro.machine.spec import AQUACORE_SPEC
from repro.assays import enzyme, generators


def compiled_dag(source):
    return build_dag_from_flat(unroll(parse(source)))


def test_enzyme_move_savings(benchmark):
    dag = compiled_dag(enzyme.SOURCE)

    def compare():
        with_feature, __ = generate(dag, AQUACORE_SPEC, storage_less=True)
        without, __ = generate(dag, AQUACORE_SPEC, storage_less=False)
        return (
            with_feature.count(Opcode.MOVE),
            without.count(Opcode.MOVE),
        )

    with_moves, without_moves = benchmark(compare)
    _report.record(
        "sec2.1 storage-less operands (ablation)",
        "enzyme: wet moves with/without the feature",
        "fewer moves with storage-less",
        f"{with_moves} vs {without_moves} "
        f"({without_moves - with_moves} saved)",
    )
    assert with_moves < without_moves


def test_unary_chains_benefit_most(benchmark):
    """A mix feeding a chain of unary steps is the best case: every link
    saves a park + reload pair."""
    dag = generators.fanout_chain(4, chain=3)

    def compare():
        with_feature, __ = generate(dag, AQUACORE_SPEC, storage_less=True)
        without, __ = generate(dag, AQUACORE_SPEC, storage_less=False)
        return (
            with_feature.count(Opcode.MOVE),
            without.count(Opcode.MOVE),
        )

    with_moves, without_moves = benchmark(compare)
    _report.record(
        "sec2.1 storage-less operands (ablation)",
        "4x 3-step unary chains: wet moves",
        "fewer moves with storage-less",
        f"{with_moves} vs {without_moves}",
    )
    assert with_moves < without_moves


def test_register_pressure_tradeoff(benchmark):
    """Storage-less holds fluids in functional units, so it can only
    *reduce* reservoir pressure — there is no downside on this axis."""
    dag = compiled_dag(enzyme.SOURCE)

    def compare():
        __, with_alloc = generate(dag, AQUACORE_SPEC, storage_less=True)
        __, without_alloc = generate(dag, AQUACORE_SPEC, storage_less=False)
        return with_alloc.peak_usage, without_alloc.peak_usage

    with_peak, without_peak = benchmark(compare)
    _report.record(
        "sec2.1 storage-less operands (ablation)",
        "enzyme: peak reservoirs with/without",
        "no pressure penalty",
        f"{with_peak} vs {without_peak}",
    )
    assert with_peak <= without_peak
