"""Table 2 (constraint column): LP constraint counts per assay.

Paper: Glucose 49, Glycomics 84, Enzyme 872, Enzyme10 11258.  Our builder
folds the paper's class-5 rows into non-deficit and counts input-node use
bounds inside the capacity class, so absolute counts differ by a few
percent; the growth across assays is the claim.
"""

import _report
import pytest

from repro.core.limits import PAPER_LIMITS
from repro.core.lpmodel import build_lp_model
from repro.core.partition import partition_unknown_volumes
from repro.assays import enzyme, glucose, glycomics

PAPER_COUNTS = {
    "glucose": 49,
    "glycomics": 84,
    "enzyme": 872,
    "enzyme10": 11258,
}


def count_for(name):
    if name == "glycomics":
        # The paper's glycomics number covers all four partitions.
        partitioned = partition_unknown_volumes(
            glycomics.build_dag(), PAPER_LIMITS
        )
        return sum(
            build_lp_model(p.dag, PAPER_LIMITS).n_constraints
            for p in partitioned.partitions
        )
    if name == "glucose":
        return build_lp_model(glucose.build_dag(), PAPER_LIMITS).n_constraints
    dilutions = 10 if name == "enzyme10" else 4
    return build_lp_model(
        enzyme.build_dag(dilutions), PAPER_LIMITS
    ).n_constraints


@pytest.mark.parametrize("name", list(PAPER_COUNTS))
def test_constraint_counts(benchmark, name):
    measured = benchmark(count_for, name)
    paper = PAPER_COUNTS[name]
    _report.record(
        "table2 LP constraint counts",
        name,
        paper,
        measured,
        f"ratio {measured / paper:.2f}",
    )
    # same order of magnitude, within 2x
    assert paper / 2 <= measured <= paper * 2


def test_growth_shape(benchmark):
    counts = benchmark.pedantic(
        lambda: {name: count_for(name) for name in PAPER_COUNTS},
        rounds=1,
        iterations=1,
    )
    assert (
        counts["glucose"]
        < counts["glycomics"]
        < counts["enzyme"]
        < counts["enzyme10"]
    )
    paper_growth = PAPER_COUNTS["enzyme10"] / PAPER_COUNTS["enzyme"]
    measured_growth = counts["enzyme10"] / counts["enzyme"]
    _report.record(
        "table2 LP constraint counts",
        "enzyme10 / enzyme growth",
        round(paper_growth, 1),
        round(measured_growth, 1),
    )
