"""Figures 9-11: compiling the three real-world assays to AIS.

Checks the compiled listings against the structure the paper prints
(instruction mix, operand shapes) and times full compilation.
"""

import _report
import pytest

from repro.compiler import compile_assay
from repro.ir.instructions import Opcode
from repro.assays import enzyme, glucose, glycomics


def opcode_histogram(program):
    counts = {}
    for instruction in program:
        counts[instruction.opcode.value] = (
            counts.get(instruction.opcode.value, 0) + 1
        )
    return counts


def test_figure9_glucose(benchmark):
    compiled = benchmark(compile_assay, glucose.SOURCE)
    histogram = opcode_histogram(compiled.program)
    # Figure 9(b): 3 inputs, 15 moves (2 per mix + 1 to the sensor each),
    # 5 mixes, 5 senses.
    for opcode, paper_count in (
        ("input", 3),
        ("move", 15),
        ("mix", 5),
        ("sense", 5),
    ):
        _report.record(
            "fig9 glucose AIS",
            f"{opcode} instructions",
            paper_count,
            histogram.get(opcode, 0),
        )
        assert histogram.get(opcode, 0) == paper_count
    _report.record(
        "fig9 glucose AIS",
        "total instructions",
        28,
        len(compiled.program),
    )


def test_figure10_glycomics(benchmark):
    compiled = benchmark(compile_assay, glycomics.SOURCE)
    listing = compiled.listing()
    expected_lines = (
        "separate.AF separator1, 30",
        "separate.LC separator2, 30",
        "separate.LC separator2, 2400",
        "incubate heater1, 37, 30",
        "move separator1.matrix, s",
        "move mixer1, separator2.out1, 1",
    )
    present = sum(1 for line in expected_lines if line in listing)
    _report.record(
        "fig10 glycomics AIS",
        "paper instruction shapes present",
        len(expected_lines),
        present,
    )
    assert present == len(expected_lines)
    histogram = opcode_histogram(compiled.program)
    _report.record(
        "fig10 glycomics AIS", "separate instructions", 3, histogram["separate"]
    )
    _report.record(
        "fig10 glycomics AIS",
        "input instructions (11 fluids + 2 refills)",
        13,
        histogram["input"],
    )


def test_figure11_enzyme(benchmark):
    compiled = benchmark.pedantic(
        compile_assay, args=(enzyme.SOURCE,), rounds=1, iterations=1
    )
    histogram = opcode_histogram(compiled.program)
    # 12 dilution mixes + 3 extra cascade stages + 64 combination mixes.
    _report.record(
        "fig11 enzyme AIS",
        "mix instructions (paper: 76 pre-transform)",
        76,
        histogram["mix"],
        "cascading adds stages",
    )
    assert histogram["mix"] >= 76
    _report.record(
        "fig11 enzyme AIS", "incubate instructions", 64, histogram["incubate"]
    )
    assert histogram["incubate"] == 64
    _report.record(
        "fig11 enzyme AIS", "sense instructions", 64, histogram["sense"]
    )
    senses = [i for i in compiled.program if i.opcode is Opcode.SENSE]
    assert senses[0].result == "RESULT[1][1][1]"
    assert senses[-1].result == "RESULT[4][4][4]"


def test_figure11_rolled_listing(benchmark):
    """Figure 11(b) *as printed*: loops intact, register-driven relative
    volumes, indexed reservoir banks, dry-arithmetic sense linearisation."""
    from repro.compiler.rolled import render_rolled_source

    listing = benchmark(render_rolled_source, enzyme.SOURCE)
    signatures = (
        "loop0: index i: 1->4",
        "move mixer1, s3, inhi_dilu",   # paper: move mixer1, s2, inh_dil
        "dry-mul r0, 10",
        "move s5(i), mixer1",           # paper: move s3(i), mixer1
        "sense.OD sensor2, RESULT(r6)",  # paper: sense.OD sensor2, RESULT(t6)
    )
    text = listing.render()
    present = sum(1 for s in signatures if s in text)
    _report.record(
        "fig11 enzyme AIS",
        "rolled-form signature lines present",
        len(signatures),
        present,
    )
    _report.record(
        "fig11 enzyme AIS",
        "rolled listing length vs unrolled",
        "an order of magnitude shorter",
        f"{len(listing.lines)} lines vs 576 instructions",
    )
    assert present == len(signatures)
    assert listing.loop_count == 6


def test_reservoir_pressure(benchmark):
    """Figure 11(b) uses indexed reservoir banks; the allocator's peak
    usage quantifies why (16 concurrent fluids before transforms)."""
    compiled = benchmark.pedantic(
        compile_assay, args=(enzyme.SOURCE,), rounds=1, iterations=1
    )
    peak = compiled.program.meta["allocation_peak"]
    _report.record(
        "fig11 enzyme AIS",
        "peak concurrent reservoirs",
        "12+ (banks s3(i), s5(j), s7(k))",
        peak,
        "inputs freed after their last dilution",
    )
    assert peak >= 12
