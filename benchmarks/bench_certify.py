"""Plan-certification overhead on the paper benchmarks (Figures 12-14).

Translation validation is only attractive if re-checking a plan is much
cheaper than producing it.  This benchmark certifies the compiled
glucose, glycomics, and enzyme assays — re-deriving the IVol constraint
system and replaying the schedule from scratch each time — and compares
the verifier's wall time against full compilation.  The paper has no
verifier, so the "paper" column carries the compile time as the
baseline the certifier must undercut.
"""

import time

import _report
import pytest

from repro.analysis.certify import certify
from repro.assays import enzyme, glucose, glycomics
from repro.compiler import compile_assay

ASSAYS = {
    "glucose (fig 12)": glucose.SOURCE,
    "glycomics (fig 13)": glycomics.SOURCE,
    "enzyme (fig 14)": enzyme.SOURCE,
}


@pytest.mark.parametrize("name", sorted(ASSAYS))
def test_certify_is_cheaper_than_compiling(benchmark, name):
    source = ASSAYS[name]
    started = time.perf_counter()
    compiled = compile_assay(source)
    compile_seconds = time.perf_counter() - started

    report = benchmark(lambda: certify(compiled))
    assert report.counts["error"] == 0, report.render_text()

    certify_seconds = benchmark.stats.stats.mean
    _report.record(
        "plan-certificate verifier overhead",
        name,
        f"{compile_seconds * 1e3:.1f} ms compile",
        f"{certify_seconds * 1e3:.1f} ms certify",
        "independent re-check of the volume plan + schedule",
    )
    # the re-check must not dominate the pipeline it validates
    assert certify_seconds < compile_seconds * 5
