"""Hot-path raw speed: exact DAGSolve, incremental LP, persistent pool.

Three fronts of the same assault, measured over the paper corpus and the
generator families, with the measured numbers (and every gate decision)
written to ``benchmarks/BENCH_hotpath.json``:

* **integer-scaled exact DAGSolve** — both solver passes over
  least-count-scaled integers (:mod:`repro.core.intsolve`) against the
  reference :class:`~fractions.Fraction` implementation.  Floor: >= 3x
  aggregate speedup, with every returned Fraction bit-identical.
* **incremental warm-started LP** — the retry loop's
  :class:`~repro.core.lpdelta.IncrementalLPBuilder` alternating between
  EnzymeAssay6 and its cascaded rewrite, against rebuilding the model
  from scratch each round.  Floor: >= 1.5x, model byte-identical to
  :func:`~repro.core.lpmodel.build_lp_model`.
* **persistent-worker batch pool** — a cold compile fleet with
  ``jobs=4`` on the warm process pool versus sequential.  Floor: >= 1.5x,
  asserted only when the host exposes >= 2 CPUs; on single-core hosts the
  measured number is still recorded together with the skip reason.

A ``pass_timings`` section rides along: per-pass wall time from the
:class:`~repro.compiler.passes.events.PassEventBus` plus the LP pass's
row-bundle reuse notes, so ``--time-passes`` wins are visible in the JSON.
"""

import json
import os
import pathlib
import time

import numpy as np

import _report

from repro.assays import enzyme, generators, glucose, glycomics, paper_example
from repro.assays import extra
from repro.compiler.batch import BatchJob, compile_many
from repro.compiler.cache import PlanCache
from repro.compiler.passes import PassEventBus, run_compile
from repro.compiler.pool import pool_stats, shutdown_pool
from repro.core.cascading import cascade_extreme_mixes
from repro.core.dagsolve import dagsolve
from repro.core.intsolve import exact_dagsolve
from repro.core.limits import PAPER_LIMITS
from repro.core.lpdelta import IncrementalLPBuilder
from repro.core.lpmodel import build_lp_model
from repro.core.partition import partition_unknown_volumes

OUT_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_hotpath.json"

EXACT_SPEEDUP_FLOOR = 3.0
LP_RETRY_SPEEDUP_FLOOR = 1.5
PARALLEL_SPEEDUP_FLOOR = 1.5
PARALLEL_JOBS = 4


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# front 1: integer-scaled exact DAGSolve
# ---------------------------------------------------------------------------
def solver_corpus():
    """The solver workload: paper assays, ladders, glycomics partitions."""
    corpus = [
        ("glucose", glucose.build_dag()),
        ("enzyme4", enzyme.build_dag(4)),
        ("enzyme6", enzyme.build_dag(6)),
        ("dilution10", generators.serial_dilution(10)),
        ("mixtree4", generators.binary_mix_tree(4)),
    ]
    parts = partition_unknown_volumes(glycomics.build_dag(), PAPER_LIMITS)
    for part in parts.partitions:
        dag = part.dag.copy()
        for spec in part.constrained:
            dag.node(spec.node_id).available_volume = 50
        corpus.append((f"glycomics-p{part.index}", dag))
    return corpus


def identical_assignments(a, b) -> bool:
    return (
        a.node_volume == b.node_volume
        and a.node_input_volume == b.node_input_volume
        and a.edge_volume == b.edge_volume
        and a.scale == b.scale
        and a.vnorms.node_vnorm == b.vnorms.node_vnorm
        and a.vnorms.edge_vnorm == b.vnorms.edge_vnorm
    )


def test_exact_dagsolve_speedup():
    reps = 30
    rows = []
    total_frac = 0.0
    total_exact = 0.0
    for name, dag in solver_corpus():
        exact_dagsolve(dag, PAPER_LIMITS)  # build + cache the context
        started = time.perf_counter()
        for _ in range(reps):
            reference = dagsolve(dag, PAPER_LIMITS)
        frac_s = time.perf_counter() - started
        started = time.perf_counter()
        for _ in range(reps):
            fast = exact_dagsolve(dag, PAPER_LIMITS)
        exact_s = time.perf_counter() - started
        assert identical_assignments(reference, fast), (
            f"{name}: exact solver diverged from the Fraction reference"
        )
        total_frac += frac_s
        total_exact += exact_s
        rows.append(
            {
                "dag": name,
                "nodes": len(list(dag.nodes())),
                "fraction_ms": round(frac_s * 1000 / reps, 4),
                "exact_ms": round(exact_s * 1000 / reps, 4),
                "speedup": round(frac_s / exact_s, 2),
            }
        )
    aggregate = total_frac / total_exact
    _report.record(
        "hot path",
        f"exact DAGSolve vs Fraction ({len(rows)} DAGs)",
        f">= {EXACT_SPEEDUP_FLOOR}x",
        f"{aggregate:.2f}x (bit-identical)",
    )
    payload = {
        "reps": reps,
        "per_dag": rows,
        "aggregate_speedup": round(aggregate, 2),
        "identical": True,
    }
    assert aggregate >= EXACT_SPEEDUP_FLOOR, (
        f"exact DAGSolve aggregate speedup {aggregate:.2f}x below the "
        f"{EXACT_SPEEDUP_FLOOR}x floor"
    )
    _merge_payload("exact_dagsolve", payload)


# ---------------------------------------------------------------------------
# front 2: incremental warm-started LP
# ---------------------------------------------------------------------------
def models_equal(a, b) -> None:
    assert list(a.var_index.items()) == list(b.var_index.items())
    assert np.array_equal(a.objective, b.objective)
    for full, inc in ((a.a_ub, b.a_ub), (a.a_eq, b.a_eq)):
        assert np.array_equal(full.indptr, inc.indptr)
        assert np.array_equal(full.indices, inc.indices)
        assert np.array_equal(full.data, inc.data)
    assert np.array_equal(a.b_ub, b.b_ub)
    assert np.array_equal(a.b_eq, b.b_eq)
    assert a.bounds == b.bounds
    assert a.rows_ub == b.rows_ub and a.rows_eq == b.rows_eq


def test_incremental_lp_retry_speedup():
    """The Figure 6 retry shape: solve, transform, solve again.

    Alternating between EnzymeAssay6 and its cascaded rewrite is the
    worst honest case for the builder — every round switches DAGs, so
    only genuinely shared row bundles are reused.
    """
    base = enzyme.build_dag(6)
    cascaded, __ = cascade_extreme_mixes(base, PAPER_LIMITS)
    sequence = [base, cascaded] * 3

    builder = IncrementalLPBuilder(PAPER_LIMITS)
    for dag in (base, cascaded, base, cascaded):
        models_equal(build_lp_model(dag, PAPER_LIMITS), builder.build(dag))

    reps = 40
    started = time.perf_counter()
    for _ in range(reps):
        for dag in sequence:
            build_lp_model(dag, PAPER_LIMITS)
    full_s = time.perf_counter() - started
    started = time.perf_counter()
    for _ in range(reps):
        for dag in sequence:
            builder.build(dag)
    inc_s = time.perf_counter() - started
    stats = builder.last_stats
    speedup = full_s / inc_s
    _report.record(
        "hot path",
        "LP retry rounds, incremental vs rebuild",
        f">= {LP_RETRY_SPEEDUP_FLOOR}x",
        f"{speedup:.2f}x ({stats['reused']}/{stats['nodes']} bundles "
        "reused)",
    )
    payload = {
        "reps": reps,
        "rounds_per_rep": len(sequence),
        "rebuild_ms": round(full_s * 1000 / reps, 4),
        "incremental_ms": round(inc_s * 1000 / reps, 4),
        "speedup": round(speedup, 2),
        "bundles_reused": stats["reused"],
        "bundles_total": stats["nodes"],
        "model_identical": True,
    }
    assert speedup >= LP_RETRY_SPEEDUP_FLOOR, (
        f"incremental LP retry speedup {speedup:.2f}x below the "
        f"{LP_RETRY_SPEEDUP_FLOOR}x floor"
    )
    _merge_payload("incremental_lp", payload)


# ---------------------------------------------------------------------------
# front 3: persistent-worker batch pool
# ---------------------------------------------------------------------------
def fleet_jobs():
    jobs = [
        BatchJob("figure2", source=paper_example.SOURCE),
        BatchJob("glucose", source=glucose.SOURCE),
        BatchJob("enzyme", source=enzyme.SOURCE),
        BatchJob("elisa", source=extra.ELISA_SOURCE),
        BatchJob("bradford", source=extra.BRADFORD_SOURCE),
        BatchJob("pcr-prep", source=extra.PCR_PREP_SOURCE),
    ]
    for n in (2, 3, 4):
        jobs.append(BatchJob(f"enzyme-{n}", dag=generators.enzyme_n(n)))
    for n in (4, 6, 8, 10):
        jobs.append(
            BatchJob(f"dilution-{n}", dag=generators.serial_dilution(n))
        )
    for depth in (2, 3, 4):
        jobs.append(
            BatchJob(f"mixtree-{depth}", dag=generators.binary_mix_tree(depth))
        )
    return jobs


def test_persistent_pool_speedup():
    jobs = fleet_jobs()
    cpus = available_cpus()
    shutdown_pool()

    started = time.perf_counter()
    seq = compile_many(jobs, cache=PlanCache(), max_workers=1)
    wall_seq = time.perf_counter() - started
    assert seq.failed == 0

    started = time.perf_counter()
    par = compile_many(
        jobs, cache=PlanCache(), max_workers=PARALLEL_JOBS
    )
    wall_par = time.perf_counter() - started
    assert par.failed == 0

    speedup = wall_seq / wall_par if wall_par > 0 else float("inf")
    gate_met = cpus >= 2
    reason = (
        "asserted: host has >= 2 CPUs"
        if gate_met
        else f"skipped: host exposes {cpus} CPU(s); process fan-out "
        "cannot beat sequential on a single core"
    )
    _report.record(
        "hot path",
        f"cold fleet, jobs=1 -> jobs={PARALLEL_JOBS} (persistent pool)",
        f">= {PARALLEL_SPEEDUP_FLOOR}x on >= 2 CPUs",
        f"{speedup:.2f}x on {cpus} CPU(s)",
        note="" if gate_met else "assertion gated off: single CPU",
    )
    payload = {
        "jobs": len(jobs),
        "cpus": cpus,
        "sequential_wall_s": round(wall_seq, 6),
        "pool_wall_s": round(wall_par, 6),
        "parallel_speedup": round(speedup, 2),
        "pool": pool_stats(),
        "parallel_assertion_applied": gate_met,
        "parallel_assertion_reason": reason,
    }
    if gate_met:
        assert speedup >= PARALLEL_SPEEDUP_FLOOR, (
            f"persistent-pool speedup {speedup:.2f}x below the "
            f"{PARALLEL_SPEEDUP_FLOOR}x floor on {cpus} CPUs"
        )
    _merge_payload("persistent_pool", payload)


# ---------------------------------------------------------------------------
# pass-event surface: where --time-passes shows the wins
# ---------------------------------------------------------------------------
def test_pass_timings_surface():
    """One instrumented compile per paper assay; LP reuse notes ride on
    the ``lp`` pass events and land in the JSON."""
    totals: dict[str, dict] = {}
    lp_notes: list[str] = []
    for source in (paper_example.SOURCE, glucose.SOURCE, enzyme.SOURCE):
        bus = PassEventBus()
        run_compile(source=source, bus=bus)
        for event in bus.events:
            record = totals.setdefault(
                event.name, {"runs": 0, "wall_ms": 0.0}
            )
            if event.status != "skipped":
                record["runs"] += 1
                record["wall_ms"] += event.wall_s * 1000
            if event.name == "lp" and "row bundle" in event.detail:
                lp_notes.append(event.detail)
    for record in totals.values():
        record["wall_ms"] = round(record["wall_ms"], 4)
    _merge_payload(
        "pass_timings",
        {"per_pass": dict(sorted(totals.items())), "lp_reuse": lp_notes},
    )
    _finalize_payload()


# ---------------------------------------------------------------------------
# JSON assembly: each test contributes one section
# ---------------------------------------------------------------------------
_SECTIONS: dict[str, dict] = {}


def _merge_payload(key: str, section: dict) -> None:
    _SECTIONS[key] = section


def _finalize_payload() -> None:
    payload = {
        "thresholds": {
            "exact_speedup_floor": EXACT_SPEEDUP_FLOOR,
            "lp_retry_speedup_floor": LP_RETRY_SPEEDUP_FLOOR,
            "parallel_speedup_floor": PARALLEL_SPEEDUP_FLOOR,
        },
        **_SECTIONS,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
