"""Figure 6: the volume-management hierarchy flowchart in action.

Each test drives one path through the flowchart and records which stages
fired — DAGSolve-only, LP fallback, cascade/replicate transforms, and the
regeneration backstop.
"""

import _report
import pytest

from repro.core.dag import AssayDAG
from repro.core.hierarchy import VolumeManager
from repro.core.limits import PAPER_LIMITS, HardwareLimits
from repro.assays import enzyme, glucose


def stages(plan):
    fired = {a.stage for a in plan.attempts if a.succeeded}
    fired |= {
        type(t).__name__.replace("Report", "").lower()
        for t in plan.transforms
    }
    return "+".join(sorted(fired))


def test_glucose_path(benchmark):
    manager = VolumeManager(PAPER_LIMITS)
    plan = benchmark(manager.plan, glucose.build_dag())
    _report.record(
        "fig6 hierarchy paths",
        "glucose",
        "DAGSolve only",
        stages(plan),
    )
    assert plan.status == "dagsolve"


def test_enzyme_path(benchmark):
    manager = VolumeManager(PAPER_LIMITS)
    plan = benchmark.pedantic(
        manager.plan, args=(enzyme.build_dag(),), rounds=1, iterations=1
    )
    _report.record(
        "fig6 hierarchy paths",
        "enzyme (automatic)",
        "cascade + replicate (paper, manual)",
        stages(plan),
        "LP succeeds post-cascade; see fig14 bench for the manual path",
    )
    assert plan.feasible
    assert plan.was_transformed


def test_enzyme_paper_path_without_lp(benchmark):
    manager = VolumeManager(PAPER_LIMITS, use_lp=False)
    plan = benchmark.pedantic(
        manager.plan, args=(enzyme.build_dag(),), rounds=1, iterations=1
    )
    _report.record(
        "fig6 hierarchy paths",
        "enzyme (DAGSolve-only hierarchy)",
        "cascade + replicate",
        stages(plan),
    )
    assert plan.feasible
    kinds = {type(t).__name__ for t in plan.transforms}
    assert kinds == {"CascadeReport", "ReplicationReport"}


def test_regeneration_backstop(benchmark):
    """A three-way extreme mix defeats every stage: the hierarchy must fall
    through to regeneration with its best attempt preserved."""
    dag = AssayDAG("hopeless")
    for name in "ABC":
        dag.add_input(name)
    dag.add_mix("M", {"A": 1, "B": 5000, "C": 1})
    manager = VolumeManager(PAPER_LIMITS)
    plan = benchmark(manager.plan, dag)
    _report.record(
        "fig6 hierarchy paths",
        "3-way extreme mix",
        "regeneration backstop",
        plan.status,
    )
    assert plan.needs_regeneration


def test_introduction_1_399_example(benchmark):
    """The abstract's example: 1:399 on max 100 / least count 1 hardware
    becomes 1:19 followed by 1:19."""
    limits = HardwareLimits(max_capacity=100, least_count=1)
    dag = AssayDAG("intro")
    dag.add_input("A")
    dag.add_input("B")
    dag.add_mix("M", {"A": 1, "B": 399})
    manager = VolumeManager(limits)
    plan = benchmark(manager.plan, dag)
    (cascade,) = [t for t in plan.transforms if hasattr(t, "factors")]
    _report.record(
        "fig6 hierarchy paths",
        "1:399 cascade factors",
        "1:19 then 1:19",
        " then ".join(f"1:{f - 1}" for f in cascade.factors),
    )
    assert list(cascade.factors) == [20, 20]
    assert plan.feasible
