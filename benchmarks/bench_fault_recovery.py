"""Fault-recovery cost: survival, volume overhead, and hook latency.

Three questions about the hardened runtime, answered over the paper's
benchmark assays with the seeded stress harness (everything below is
deterministic — the only non-reproducible numbers are wall clocks):

* **Transparency** — what does carrying a zero-fault injector cost?  The
  hooks sit on the metering/transport hot path, so an installed-but-empty
  ``FaultPlan.none()`` run is timed against a bare run.
* **Survival** — across seeded fault rates, what fraction of runs does
  bounded retry-with-regeneration carry to completion?
* **Volume overhead** — when recovery does fire, how much extra input
  volume does regeneration draw, relative to the fault-free plan?

Results are written to ``benchmarks/BENCH_fault_recovery.json``.  Hard
assertions: zero-fault runs survive with byte-identical readings, and
survival at the lowest rate stays above ``SURVIVAL_FLOOR``.
"""

import json
import pathlib
import time
from fractions import Fraction

import _report

from repro.assays import enzyme as enzyme_assay
from repro.assays import glucose, paper_example
from repro.compiler import compile_assay
from repro.machine.faults import FaultInjector, FaultPlan
from repro.machine.interpreter import Machine
from repro.runtime.executor import AssayExecutor
from repro.runtime.stress import stress_compiled

OUT_PATH = pathlib.Path(__file__).resolve().parent / (
    "BENCH_fault_recovery.json"
)

ASSAYS = {
    "figure2": paper_example.SOURCE,
    "glucose": glucose.SOURCE,
    "enzyme": enzyme_assay.SOURCE,
}
FAULT_RATES = (0.02, 0.05, 0.10)
SEEDS = 20
#: at the gentlest rate, bounded recovery should save nearly every run
SURVIVAL_FLOOR = 0.9
TIMING_REPEATS = 5


def bare_run(compiled, injector=None):
    executor = AssayExecutor(
        compiled, Machine(compiled.spec), injector=injector
    )
    return executor.run()


def time_run(compiled, injector_factory):
    best = float("inf")
    for __ in range(TIMING_REPEATS):
        injector = injector_factory() if injector_factory else None
        started = time.perf_counter()
        bare_run(compiled, injector)
        best = min(best, time.perf_counter() - started)
    return best


def test_fault_recovery_costs():
    payload = {"seeds": SEEDS, "rates": list(FAULT_RATES), "assays": {}}

    for name, source in ASSAYS.items():
        compiled = compile_assay(source)

        # -- transparency: zero-fault injector vs no injector -------------
        plain = bare_run(compiled)
        hooked = bare_run(compiled, FaultInjector(FaultPlan.none()))
        assert hooked.results == plain.results
        assert (
            hooked.machine.output_mixtures == plain.machine.output_mixtures
        )
        wall_plain = time_run(compiled, None)
        wall_hooked = time_run(
            compiled, lambda: FaultInjector(FaultPlan.none())
        )
        hook_overhead = wall_hooked / wall_plain if wall_plain > 0 else 1.0

        baseline_drawn = sum(
            (b.drawn for b in plain.machine.ports.values()), Fraction(0)
        )

        # -- survival + volume overhead across fault rates -----------------
        sweeps = {}
        for rate in FAULT_RATES:
            report = stress_compiled(
                compiled, seeds=SEEDS, fault_rate=rate
            )
            survivors = [s for s in report.scenarios if s.survived]
            extra = sum(
                (s.regeneration_volume for s in survivors), Fraction(0)
            )
            mean_extra = (
                extra / len(survivors) if survivors else Fraction(0)
            )
            sweeps[f"{rate:.2f}"] = {
                "survived": report.survived,
                "survival_rate": report.survival_rate,
                "faults_by_kind": report.faults_by_kind(),
                "recoveries_by_action": report.recoveries_by_action(),
                "mean_extra_volume_nl": float(mean_extra),
                "mean_extra_volume_pct": (
                    float(100 * mean_extra / baseline_drawn)
                    if baseline_drawn
                    else 0.0
                ),
            }

        payload["assays"][name] = {
            "wet_instructions": plain.trace.wet_instruction_count,
            "baseline_drawn_nl": float(baseline_drawn),
            "zero_fault_overhead_x": round(hook_overhead, 3),
            "sweeps": sweeps,
        }

        low = sweeps[f"{FAULT_RATES[0]:.2f}"]
        assert low["survival_rate"] >= SURVIVAL_FLOOR, (
            f"{name}: survival {low['survival_rate']} at rate "
            f"{FAULT_RATES[0]} under floor {SURVIVAL_FLOOR}"
        )

        _report.record(
            "fault recovery",
            f"{name}: survival @ rate {FAULT_RATES[0]:.2f}",
            f">= {SURVIVAL_FLOOR:.0%}",
            f"{low['survival_rate']:.0%} ({low['survived']}/{SEEDS})",
        )
        high = sweeps[f"{FAULT_RATES[-1]:.2f}"]
        _report.record(
            "fault recovery",
            f"{name}: survival @ rate {FAULT_RATES[-1]:.2f}",
            None,
            f"{high['survival_rate']:.0%}, "
            f"+{high['mean_extra_volume_pct']:.1f}% input volume",
        )
        _report.record(
            "fault recovery",
            f"{name}: zero-fault hook overhead",
            "~1x",
            f"{hook_overhead:.2f}x",
        )

    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
