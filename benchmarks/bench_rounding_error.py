"""Section 4.2: RVol -> IVol rounding error.

Paper: with a 100 nl maximum and 0.1 nl least count, rounding to the
closest least-count multiple introduced no overflow/underflow and perturbed
mix ratios by no more than 2% (averaged across glucose and enzyme).
"""

import _report
import pytest

from repro.core.dagsolve import dagsolve
from repro.core.limits import PAPER_LIMITS
from repro.core.rounding import max_ratio_error, round_assignment
from repro.assays import enzyme, glucose, paper_example
from repro.core.cascading import cascade_mix, stage_factors
from repro.core.replication import replicate_node
from repro.core.dagsolve import compute_vnorms
from fractions import Fraction


def enzyme_transformed():
    dag = enzyme.build_dag()
    for reagent in enzyme.REAGENTS:
        dag, __ = cascade_mix(
            dag, f"{reagent}.dil4", stage_factors(Fraction(1000), 3)
        )
    vnorms = compute_vnorms(dag)
    weights = {
        e.key: vnorms.edge_vnorm[e.key] for e in dag.out_edges("diluent")
    }
    dag, __ = replicate_node(dag, "diluent", 3, weights=weights)
    return dag


CASES = {
    "figure2": paper_example.build_dag,
    "glucose": glucose.build_dag,
    "enzyme (transformed)": enzyme_transformed,
}


@pytest.mark.parametrize("name", list(CASES))
def test_rounding_error_below_2_percent(benchmark, name):
    dag = CASES[name]()

    def round_and_measure():
        assignment = dagsolve(dag, PAPER_LIMITS)
        rounded = round_assignment(assignment)
        return rounded, float(max_ratio_error(rounded))

    rounded, error = benchmark(round_and_measure)
    _report.record(
        "sec4.2 rounding error",
        f"{name}: max ratio error",
        "<= 2% (averaged over assays)",
        f"{error * 100:.3f}%",
    )
    # The paper's <=2% is an average across its assays; the transformed
    # enzyme's worst single edge (the ~2-least-count 1:99 share) sits at
    # 2.04%, so allow a whisker above for the per-assay maximum.
    assert error <= 0.021

    overflow = [v for v in rounded.violations() if v.kind == "overflow"]
    _report.record(
        "sec4.2 rounding error",
        f"{name}: overflow introduced by rounding",
        0,
        len(overflow),
    )
    assert not overflow


def test_sophisticated_rounding_ablation(benchmark):
    """The paper defers 'more sophisticated rounding techniques to the
    future'; this ablation implements one (ratio-aware apportionment with
    total search) and compares it to the paper's nearest-multiple baseline.
    """
    from repro.core.rounding import (
        mean_ratio_error,
        round_assignment_ratio_preserving,
    )

    def compare():
        rows = {}
        for name, builder in CASES.items():
            exact = dagsolve(builder(), PAPER_LIMITS)
            simple = round_assignment(exact)
            smart = round_assignment_ratio_preserving(exact)
            rows[name] = (
                float(max_ratio_error(simple)),
                float(max_ratio_error(smart)),
                float(mean_ratio_error(simple)),
                float(mean_ratio_error(smart)),
            )
        return rows

    rows = benchmark(compare)
    for name, (simple_max, smart_max, simple_mean, smart_mean) in rows.items():
        _report.record(
            "sec4.2 rounding error",
            f"{name}: nearest-multiple vs ratio-aware (max)",
            "future work in the paper",
            f"{simple_max * 100:.2f}% -> {smart_max * 100:.2f}%",
        )
        # ratio-aware never loses on these assays; at capacity-anchored
        # sources (transformed enzyme) the strategies tie because there is
        # no headroom for an extra step.
        assert smart_max <= simple_max + 1e-12
        assert smart_mean <= simple_mean + 1e-12


def test_coarser_hardware_larger_error(benchmark):
    """Ablation: the error scales with the least count, confirming the
    'usual operating volumes in nl, least count in pl' argument."""
    from repro.core.limits import HardwareLimits

    def sweep():
        errors = {}
        for denominator in (1000, 100, 10, 2):
            limits = HardwareLimits(
                max_capacity=Fraction(100),
                least_count=Fraction(1, denominator),
            )
            rounded = round_assignment(
                dagsolve(glucose.build_dag(), limits)
            )
            errors[denominator] = float(max_ratio_error(rounded))
        return errors

    errors = benchmark(sweep)
    series = [errors[d] for d in (1000, 100, 10, 2)]
    _report.record(
        "sec4.2 rounding error",
        "glucose error vs least count (0.001..0.5 nl)",
        "grows with least count",
        " -> ".join(f"{e * 100:.2f}%" for e in series),
    )
    assert series[0] <= series[-1]
