"""Channel-layout ablation (Figure 1's interconnect, made concrete).

The paper's AquaCore connects components "by a set of channels" with a
pump at each end; transfer time therefore depends on the layout.  This
benchmark runs the same compiled glucose assay over three interconnects —
the abstract constant-time model, a shared bus, and a ring — and reports
the simulated fluid-path time of each.
"""

import _report
import pytest

from repro.compiler import compile_assay
from repro.machine.interpreter import Machine
from repro.machine.spec import AQUACORE_SPEC
from repro.machine.topology import bus_topology, ring_topology
from repro.runtime.executor import AssayExecutor
from repro.assays import glucose


def run_on(topology):
    compiled = compile_assay(glucose.SOURCE)
    machine = Machine(AQUACORE_SPEC, topology=topology)
    return AssayExecutor(compiled, machine).run()


def test_layout_sweep(benchmark):
    def sweep():
        return {
            "abstract (paper model)": run_on(None).trace.total_seconds,
            "shared bus": run_on(bus_topology(AQUACORE_SPEC)).trace.total_seconds,
            "ring": run_on(ring_topology(AQUACORE_SPEC)).trace.total_seconds,
        }

    rows = benchmark(sweep)
    for layout, seconds in rows.items():
        _report.record(
            "fig1 channel-layout ablation (glucose)",
            layout,
            "transfer time scales with hops",
            f"{float(seconds):.0f} s fluid-path time",
        )
    assert rows["shared bus"] > rows["abstract (paper model)"]
    # the ring's distances depend on placement; with the default ordering
    # the reservoirs sit far from the units, so it is the slowest
    assert rows["ring"] >= rows["shared bus"]


def test_bus_serialisation_rationale(benchmark):
    """Why the wet path is serial: on the bus, every transfer conflicts
    with every other through the backbone."""
    topology = bus_topology(AQUACORE_SPEC)

    def count_conflicts():
        pairs = [
            (("s1", "mixer1"), ("s2", "heater1")),
            (("ip1", "s1"), ("s3", "sensor2")),
            (("mixer1", "sensor2"), ("s5", "separator1")),
        ]
        return sum(topology.conflicts(a, b) for a, b in pairs), len(pairs)

    conflicting, total = benchmark(count_conflicts)
    _report.record(
        "fig1 channel-layout ablation (glucose)",
        "bus transfer pairs in conflict",
        "all (serial wet path)",
        f"{conflicting}/{total}",
    )
    assert conflicting == total
