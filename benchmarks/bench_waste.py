"""Waste-objective benchmark over the dilution-gradient workload family.

The paper's planner maximises delivered output (Section 3.3); the
``--objective waste`` planner instead minimises discarded excess plus
surplus input.  The two objectives only diverge on workloads with
extreme mix ratios or slack output bounds, and concentration gradients
have both: the steep end of the ladder forces cascading (whose stages
discard statically-known excess), while the shallow end would otherwise
be inflated to fill every well to capacity.

This benchmark plans the fixed :func:`repro.assays.gradients.gradient_corpus`
under both objectives, certifies every plan, and records the discard
margin.  Because the waste objective floors dispensed volumes at the
least count, its cascaded plans can *deliver* more per well than the
capacity-capped default — so the headline comparison normalises discard
to the default plan's delivered volume (discard per delivered nl, scaled
to the same delivery).  Absolute loaded volume is also recorded; on the
non-cascading families (linear gradients, bit-sequence target trees) the
DAG is identical under both objectives and the absolute comparison holds
directly.

Results are written to ``benchmarks/BENCH_waste.json``.
"""

import json
import pathlib

import _report

from repro.analysis.certify import certify_plan
from repro.assays.gradients import gradient_corpus
from repro.core.hierarchy import VolumeManager
from repro.core.limits import PAPER_LIMITS
from repro.core.report import plan_waste_breakdown

OUT_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_waste.json"

OBJECTIVES = ("default", "waste")

#: families whose extreme ratios force cascading (the DAGs the two
#: objectives rewrite differently).
CASCADING = {
    "dilution_gradient_4x10000",
    "dilution_gradient_deep",
    "dilution_gradient_wells",
}


def plan_one(dag, objective):
    manager = VolumeManager(
        PAPER_LIMITS,
        use_lp=True,
        allow_cascading=True,
        allow_replication=True,
        objective=objective,
    )
    plan = manager.plan(dag)
    assert plan.assignment is not None, (
        f"{dag.name} has no assignment under {objective}"
    )
    diagnostics, metrics = certify_plan(
        plan.dag,
        plan.assignment,
        PAPER_LIMITS,
        expect_feasible=plan.feasible,
    )
    errors = [d for d in diagnostics if d.severity == "error"]
    assert not errors, (
        f"{dag.name} [{objective}] fails certification: "
        + "; ".join(str(d) for d in errors)
    )
    breakdown = plan_waste_breakdown(plan)
    return {
        "status": plan.status,
        "loaded_nl": metrics["loaded_nl"],
        "delivered_nl": metrics["delivered_nl"],
        "excess_nl": metrics["excess_nl"],
        "discarded_nl": metrics["loaded_nl"] - metrics["delivered_nl"],
        "utilisation": metrics["utilisation"],
        "breakdown_excess_nl": float(breakdown.excess),
        "transforms": [str(report) for report in plan.transforms],
    }


def test_waste_objective_discard_margin():
    payload = {"per_dag": {}, "summary": {}}
    total_default = 0.0
    total_waste_normalised = 0.0
    cascading_default = 0.0
    cascading_waste = 0.0

    for dag in gradient_corpus():
        entry = {
            objective: plan_one(dag, objective) for objective in OBJECTIVES
        }
        default, waste = entry["default"], entry["waste"]

        # Discard per delivered nl, scaled to the default plan's delivery
        # so the two plans pay for the same amount of product.
        waste_fraction = (
            waste["discarded_nl"] / waste["delivered_nl"]
            if waste["delivered_nl"]
            else 0.0
        )
        normalised = waste_fraction * default["delivered_nl"]
        entry["normalised_waste_discard_nl"] = normalised
        payload["per_dag"][dag.name] = entry

        total_default += default["discarded_nl"]
        total_waste_normalised += normalised
        if dag.name in CASCADING:
            cascading_default += default["discarded_nl"]
            cascading_waste += normalised
            # Every cascading family must individually improve.
            assert normalised < default["discarded_nl"], dag.name
        else:
            # Same DAG both ways: absolute loads are comparable, and the
            # waste plan must not draw more input.
            assert waste["loaded_nl"] <= default["loaded_nl"], dag.name

        _report.record(
            "waste objective on dilution gradients",
            dag.name,
            None,
            f"discard {default['discarded_nl']:.1f} -> "
            f"{normalised:.1f} nl (per {default['delivered_nl']:.0f} nl "
            f"delivered)",
            f"util {default['utilisation'] * 100:.0f}% -> "
            f"{waste['utilisation'] * 100:.0f}%"
            + (" [regeneration]" if waste["status"] == "regeneration" else ""),
        )

    margin = total_default - total_waste_normalised
    margin_pct = 100.0 * margin / total_default if total_default else 0.0
    cascading_margin_pct = (
        100.0 * (cascading_default - cascading_waste) / cascading_default
        if cascading_default
        else 0.0
    )
    payload["summary"] = {
        "total_default_discard_nl": total_default,
        "total_waste_discard_nl_normalised": total_waste_normalised,
        "reduction_nl": margin,
        "reduction_pct": margin_pct,
        "cascading_reduction_pct": cascading_margin_pct,
        "note": (
            "waste discard normalised to the default plan's delivered "
            "volume; non-cascading families additionally satisfy "
            "loaded(waste) <= loaded(default) on the identical DAG"
        ),
    }
    _report.record(
        "waste objective on dilution gradients",
        "total discard reduction",
        None,
        f"{margin:.1f} nl ({margin_pct:.0f}%)",
        f"cascading families alone: {cascading_margin_pct:.0f}%",
    )

    assert margin > 0, "waste objective failed to reduce total discard"
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
