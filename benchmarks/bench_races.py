"""Race-detector cost: wall time vs program size, merged-assay scaling,
and the static-vs-replay comparison that justifies the analysis.

Four questions, answered over the repo's compiled assay corpus:

* **Intra-program cost** — how does one detector run scale with the
  instruction count of a serial program?
* **Merged scaling** — how does a merged analysis grow from 2 to 8
  concurrent assays (the scheduler-oracle workload)?
* **Static vs dynamic** — the detector's verdict covers *every*
  interleaving; sampling even a handful of interleavings through the
  dynamic certifier must cost more.  Hard assertion: one static merged
  analysis beats replaying ``REPLAY_SAMPLES`` interleavings.
* **Conflict-matrix cache** — the route-contention half asks the same
  ``ChannelTopology.conflicts`` question for every MHP transfer pair;
  the memoized matrix must beat recomputation and agree with it.

Results are written to ``benchmarks/BENCH_races.json``.
"""

import json
import pathlib
import sys
import time

import _report

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "tools"))

from _corpus import compiled_corpus  # noqa: E402

from repro.analysis.certify import certify_schedule  # noqa: E402
from repro.analysis.races import analyze_races  # noqa: E402
from repro.ir.program import AISProgram  # noqa: E402
from repro.machine.topology import ring_topology  # noqa: E402

OUT_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_races.json"

#: pool order for the 2..8 merged-assay scaling curve.
MERGE_POOL = (
    "glucose", "glycomics", "enzyme", "figure2",
    "elisa", "bradford", "pcr-prep", "custom-example",
)
REPLAY_SAMPLES = 16
TIMING_REPEATS = 3


def best_of(fn, repeats=TIMING_REPEATS):
    best, result = float("inf"), None
    for __ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def interleave(a: AISProgram, b: AISProgram, pattern) -> AISProgram:
    merged = AISProgram(name=f"{a.name}|{b.name}", machine=a.machine)
    streams = [list(a.instructions), list(b.instructions)]
    cursor, step = [0, 0], 0
    while cursor[0] < len(streams[0]) or cursor[1] < len(streams[1]):
        choice = pattern[step % len(pattern)]
        if cursor[choice] >= len(streams[choice]):
            choice = 1 - choice
        merged.append(streams[choice][cursor[choice]])
        cursor[choice] += 1
        step += 1
    return merged


def test_race_detector_costs():
    programs, spec = {}, None
    for name, compiled in compiled_corpus():
        programs[name] = compiled.program
        spec = compiled.spec
    payload = {"intra": {}, "scaling": [], "static_vs_replay": {},
               "conflict_cache": {}}

    # -- intra-program: wall time vs instruction count -------------------
    for name, program in sorted(
        programs.items(), key=lambda item: len(item[1].instructions)
    ):
        seconds, report = best_of(lambda p=program: analyze_races(p, spec))
        payload["intra"][name] = {
            "instructions": len(program.instructions),
            "wall_s": seconds,
            "sensitive_pairs": report.mhp["mhp_pairs"],
        }

    biggest = max(
        payload["intra"].values(), key=lambda row: row["instructions"]
    )
    _report.record(
        "race detector",
        f"largest single program ({biggest['instructions']} instructions)",
        None,
        f"{biggest['wall_s'] * 1e3:.1f} ms",
    )

    # -- merged-assay scaling curve (2..8 programs) ----------------------
    pool = [programs[name] for name in MERGE_POOL]
    for count in range(2, len(pool) + 1):
        seconds, report = best_of(
            lambda n=count: analyze_races(pool[:n], spec)
        )
        payload["scaling"].append({
            "programs": count,
            "wet_instructions": report.mhp["wet_instructions"],
            "mhp_pairs": report.mhp["mhp_pairs"],
            "wall_s": seconds,
        })
    _report.record(
        "race detector",
        f"merged scaling, {len(pool)} assays "
        f"({payload['scaling'][-1]['mhp_pairs']} MHP pairs)",
        None,
        f"{payload['scaling'][-1]['wall_s'] * 1e3:.1f} ms",
    )

    # -- static analysis vs sampled dynamic replay -----------------------
    a, b = programs["glucose"], programs["enzyme"]
    static_s, static_report = best_of(
        lambda: analyze_races([a, b], spec, share_storage=True)
    )
    patterns = [
        tuple((k >> bit) & 1 for bit in range(4))
        for k in range(REPLAY_SAMPLES)
    ]

    def replay_all():
        findings = 0
        for pattern in patterns:
            findings += len(
                certify_schedule(interleave(a, b, pattern), spec)[0]
            )
        return findings

    replay_s, __ = best_of(replay_all)
    payload["static_vs_replay"] = {
        "pair": "glucose+enzyme",
        "static_wall_s": static_s,
        "static_findings": len(static_report.findings),
        "replay_samples": REPLAY_SAMPLES,
        "replay_wall_s": replay_s,
        "speedup": replay_s / static_s,
    }
    # the point of the static analysis: one run covers every interleaving,
    # while the dynamic certifier pays per sampled schedule.
    assert static_s < replay_s, (
        f"static analysis ({static_s:.4f}s) slower than replaying "
        f"{REPLAY_SAMPLES} interleavings ({replay_s:.4f}s)"
    )
    _report.record(
        "race detector",
        f"static vs {REPLAY_SAMPLES} replayed interleavings",
        "< 1x",
        f"{static_s / replay_s:.2f}x "
        f"({replay_s / static_s:.1f}x speedup)",
    )

    # -- conflict-matrix cache (ChannelTopology.conflicts memo) ----------
    topology = ring_topology(spec)
    locations = topology.locations()
    endpoints = list(zip(locations, locations[1:]))
    pairs = [
        (first, second)
        for i, first in enumerate(endpoints)
        for second in endpoints[i + 1:]
    ]

    def sweep():
        return sum(topology.conflicts(x, y) for x, y in pairs)

    cold_started = time.perf_counter()
    cold_conflicts = sweep()
    cold_s = time.perf_counter() - cold_started
    warm_s, warm_conflicts = best_of(sweep)
    assert warm_conflicts == cold_conflicts
    assert len(topology._conflict_cache) == len(pairs)
    assert warm_s < cold_s, (
        f"memoized sweep ({warm_s:.5f}s) not faster than cold "
        f"({cold_s:.5f}s) over {len(pairs)} pairs"
    )
    payload["conflict_cache"] = {
        "pairs": len(pairs),
        "cold_wall_s": cold_s,
        "warm_wall_s": warm_s,
        "speedup": cold_s / warm_s,
    }
    _report.record(
        "race detector",
        f"conflict-matrix cache ({len(pairs)} pairs)",
        "> 1x",
        f"{cold_s / warm_s:.1f}x",
    )

    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
