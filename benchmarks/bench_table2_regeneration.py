"""Table 2 (regeneration column): triggers without volume management.

Paper: Glucose 2, Enzyme 85, Enzyme10 1313 — and zero with DAGSolve.  The
naive policy is the one documented in DESIGN.md; glucose lands exactly,
the enzyme family within a few percent.
"""

import dataclasses

import _report
import pytest

from repro.compiler import compile_assay
from repro.core.limits import PAPER_LIMITS
from repro.machine.interpreter import Machine
from repro.machine.spec import AQUACORE_SPEC
from repro.runtime.executor import AssayExecutor
from repro.runtime.regeneration import naive_regeneration_count
from repro.assays import enzyme, glucose

PAPER_REGEN = {"glucose": 2, "enzyme": 85, "enzyme10": 1313}


def build(name):
    if name == "glucose":
        return glucose.build_dag()
    return enzyme.build_dag(10 if name == "enzyme10" else 4)


@pytest.mark.parametrize("name", list(PAPER_REGEN))
def test_regeneration_counts(benchmark, name):
    dag = build(name)
    report = benchmark(
        naive_regeneration_count,
        dag,
        PAPER_LIMITS,
        respect_least_count=False,
    )
    paper = PAPER_REGEN[name]
    _report.record(
        "table2 regeneration counts (no volume management)",
        name,
        paper,
        report.regeneration_count,
        f"{abs(report.regeneration_count - paper) / paper:.0%} off",
    )
    assert 0.7 * paper <= report.regeneration_count <= 1.3 * paper


def test_zero_regenerations_with_dagsolve(benchmark):
    """'With DAGSolve, there are no regenerations.'"""

    def run():
        compiled = compile_assay(glucose.SOURCE)
        machine = Machine(AQUACORE_SPEC)
        return AssayExecutor(compiled, machine).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _report.record(
        "table2 regeneration counts (no volume management)",
        "glucose with DAGSolve plan",
        0,
        result.regenerations,
    )
    assert result.regenerations == 0


def test_zero_regenerations_enzyme_with_plan(benchmark):
    def run():
        compiled = compile_assay(enzyme.SOURCE)
        machine = Machine(AQUACORE_SPEC)
        return AssayExecutor(compiled, machine).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _report.record(
        "table2 regeneration counts (no volume management)",
        "enzyme with transformed plan",
        0,
        result.regenerations,
    )
    assert result.regenerations == 0
