"""Benchmark-suite plumbing: paper-vs-measured summary table."""

import _report


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _report.RESULTS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line(
        "Paper-vs-measured summary (see EXPERIMENTS.md for discussion):"
    )
    for line in _report.render_all().splitlines():
        terminalreporter.write_line(line)
