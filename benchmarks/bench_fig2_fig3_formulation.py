"""Figures 2 and 3: the DAG representation and its ILP/LP constraint system.

Regenerates the constraint classes of Figure 3 for the Figure 2 assay and
times model construction.
"""

import _report

from repro.core.lpmodel import build_lp_model
from repro.core.limits import PAPER_LIMITS
from repro.assays import paper_example

#: Figure 3 lists, for the figure-2 DAG: 8 min/max volume bounds (one per
#: edge), capacity rows for A,B,C and K,L,M,N, ratio rows for the four
#: mixes, non-deficit for K and L (plus the input-use rows folded into
#: capacity here), and the optional 10% output band (2 rows).
PAPER_CLASSES = {
    "min-volume": 8,
    "capacity": 7,
    "ratio": 4,
    "non-deficit": 2,
    "output-to-output": 2,
}


def test_figure3_constraint_classes(benchmark):
    dag = paper_example.build_dag()
    model = benchmark(
        build_lp_model, dag, PAPER_LIMITS, output_tolerance=0.1
    )
    counts = model.counts_by_class()
    for cls, expected in PAPER_CLASSES.items():
        _report.record(
            "fig3 constraint classes (figure2 example)",
            cls,
            expected,
            counts.get(cls, 0),
        )
        assert counts.get(cls, 0) == expected
    _report.record(
        "fig3 constraint classes (figure2 example)",
        "variables (edges)",
        8,
        model.n_variables,
    )
    assert model.n_variables == dag.edge_count


def test_figure2_edge_fractions(benchmark):
    def build_and_collect():
        dag = paper_example.build_dag()
        return {
            (e.src, e.dst): e.fraction for e in dag.edges()
        }

    fractions = benchmark(build_and_collect)
    for key, expected in paper_example.EXPECTED_EDGE_VNORMS.items():
        pass  # edge *Vnorms* are checked in fig5; here we check fractions
    paper_fractions = {
        ("A", "K"): "1/5",
        ("B", "K"): "4/5",
        ("B", "L"): "2/3",
        ("C", "L"): "1/3",
        ("K", "M"): "2/3",
        ("L", "M"): "1/3",
        ("L", "N"): "2/5",
        ("C", "N"): "3/5",
    }
    for key, expected in paper_fractions.items():
        _report.record(
            "fig2 DAG edge annotations (figure2 example)",
            f"{key[0]}->{key[1]}",
            expected,
            str(fractions[key]),
        )
        assert str(fractions[key]) == expected
