"""Figure 13: the glycomics assay's partitioned DAG.

Three statically-unknown separations cut the DAG into four partitions;
buffer3a splits 50/50 across two of them; the X2 constrained input carries
the flagged Vnorm of 1/204; only the first partition is dispensable at
compile time.
"""

from fractions import Fraction

import _report

from repro.core.limits import PAPER_LIMITS
from repro.core.partition import partition_unknown_volumes
from repro.core.runtime_assign import RuntimePlanner
from repro.assays import glycomics


def test_figure13_partitioning(benchmark):
    dag = glycomics.build_dag()
    partitioned = benchmark(partition_unknown_volumes, dag, PAPER_LIMITS)
    _report.record(
        "fig13 glycomics partitioning",
        "partitions",
        4,
        partitioned.n_partitions,
    )
    assert partitioned.n_partitions == 4

    splits = [
        spec
        for partition in partitioned.partitions
        for spec in partition.constrained
        if spec.source == "buffer3a"
    ]
    _report.record(
        "fig13 glycomics partitioning",
        "buffer3a splits",
        "2 x 50 nl",
        " + ".join(f"{float(s.static_available):g} nl" for s in splits),
    )
    assert [s.static_available for s in splits] == [Fraction(50), Fraction(50)]

    measured = set(partitioned.measured_sources)
    _report.record(
        "fig13 glycomics partitioning",
        "run-time measured sources",
        "sep1, sep2, sep3",
        ", ".join(sorted(measured)),
    )
    assert measured == {"sep1", "sep2", "sep3"}


def test_figure13_x2_vnorm(benchmark):
    planner = benchmark(RuntimePlanner, glycomics.build_dag(), PAPER_LIMITS)
    partition = planner.partitions[2]
    (x2,) = [s for s in partition.constrained if s.source == "sep2"]
    vnorm = planner.vnorms[2].node_vnorm[x2.node_id]
    _report.record(
        "fig13 glycomics partitioning",
        "Vnorm(X2) (the paper's concern)",
        "1/204",
        str(vnorm),
    )
    assert vnorm == Fraction(1, 204)


def test_runtime_dispensing_walk(benchmark):
    """Run the four-partition session as the run-time system would,
    with representative measured effluents."""
    planner = RuntimePlanner(glycomics.build_dag(), PAPER_LIMITS)

    def walk():
        session = planner.session()
        return session.assign_all({"sep1": 40, "sep2": 20, "sep3": 15})

    assignments = benchmark(walk)
    first = assignments[0]
    _report.record(
        "fig13 glycomics partitioning",
        "partition-1 separator load (nl)",
        100,
        float(first.node_input_volume["sep1"]),
        "anchored at machine maximum",
    )
    assert first.node_input_volume["sep1"] == 100
    # With sep2 measured at 20 nl, X2's draw is 20/204 * 2 ~ 0.098 nl...
    # check the third partition dispensed its constrained input share.
    third = assignments[2]
    x2_draws = [
        volume
        for (src, __), volume in third.edge_volume.items()
        if src.startswith("sep2.in")
    ]
    _report.record(
        "fig13 glycomics partitioning",
        "X2 draw at sep2 = 20 nl (nl)",
        "small (regeneration risk)",
        round(float(sum(x2_draws)), 3),
    )
