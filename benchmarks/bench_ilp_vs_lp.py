"""Section 4.3's ILP-vs-LP comparison.

Paper: 'the ILP solver achieved similar execution times as the LP solver
for the glucose assay, [but] ran for hours without generating a solution
for the enzyme assay, whereas the LP solver completed in 0.73 seconds.'

HiGHS branch-and-cut is far stronger than 2008's LP_Solve, so 'hours' is
reproduced as a wall-clock budget: the enzyme ILP either exceeds the LP
time by a large factor or hits the time limit outright.
"""

import time

import _report
import pytest

from repro.core.errors import InfeasibleError, SolverError
from repro.core.ilp import solve_model_ilp
from repro.core.limits import PAPER_LIMITS
from repro.core.lp import solve_model
from repro.core.lpmodel import build_lp_model
from repro.assays import enzyme, glucose, paper_example


def test_glucose_ilp_comparable_to_lp(benchmark):
    dag = glucose.build_dag()
    model = build_lp_model(dag, PAPER_LIMITS)

    start = time.perf_counter()
    solve_model(model)
    lp_time = time.perf_counter() - start

    ilp_assignment = benchmark(solve_model_ilp, model)
    start = time.perf_counter()
    solve_model_ilp(model)
    ilp_time = time.perf_counter() - start

    _report.record(
        "sec4.3 ILP vs LP",
        "glucose: ILP/LP time ratio",
        "~1 (comparable)",
        round(ilp_time / lp_time, 2),
    )
    assert ilp_assignment.feasible
    # every ILP volume is an exact least-count multiple
    least = PAPER_LIMITS.least_count
    for volume in ilp_assignment.edge_volume.values():
        assert (volume / least).denominator == 1


def transformed_enzyme():
    """The feasible IVol instance at enzyme scale: cascade + replicate
    first (the raw DAG is infeasible-by-bounds, which any modern presolve
    dispatches instantly and would make the timing comparison vacuous)."""
    from fractions import Fraction

    from repro.core.cascading import cascade_mix, stage_factors
    from repro.core.dagsolve import compute_vnorms
    from repro.core.replication import replicate_node

    dag = enzyme.build_dag()
    for reagent in enzyme.REAGENTS:
        dag, __ = cascade_mix(
            dag, f"{reagent}.dil4", stage_factors(Fraction(1000), 3)
        )
    vnorms = compute_vnorms(dag)
    weights = {
        e.key: vnorms.edge_vnorm[e.key] for e in dag.out_edges("diluent")
    }
    dag, __ = replicate_node(dag, "diluent", 3, weights=weights)
    return dag


def test_enzyme_ilp_blows_up(benchmark):
    """The enzyme-scale ILP must be dramatically more expensive than LP
    (or time out, standing in for the paper's 'hours')."""
    model = build_lp_model(transformed_enzyme(), PAPER_LIMITS)

    start = time.perf_counter()
    solve_model(model)
    lp_time = time.perf_counter() - start

    budget = max(500 * lp_time, 10.0)

    def run_ilp():
        start = time.perf_counter()
        try:
            solve_model_ilp(model, time_limit=budget)
            outcome = "finished"
        except SolverError:
            outcome = "timed out"
        except InfeasibleError:
            outcome = "infeasible"
        return outcome, time.perf_counter() - start

    outcome, ilp_time = benchmark.pedantic(run_ilp, rounds=1, iterations=1)
    _report.record(
        "sec4.3 ILP vs LP",
        "enzyme: LP time (s)",
        0.73,
        round(lp_time, 4),
    )
    _report.record(
        "sec4.3 ILP vs LP",
        "enzyme: ILP outcome",
        "ran for hours (no solution)",
        f"{outcome} after {ilp_time:.2f}s "
        f"({ilp_time / lp_time:.0f}x the LP; budget {budget:.1f}s)",
        "HiGHS branch-and-cut is far beyond 2008's LP_Solve",
    )
    assert outcome in ("timed out", "finished")
    if outcome == "finished":
        assert ilp_time > 5 * lp_time
