"""Cascade-depth ablation (Section 3.4.1's iterative deepening).

For a fixed extreme ratio, sweeping the cascade depth trades the per-stage
skew (shallow = more extreme stages) against fluid-path resources (deep =
more mixes, more excess discarded, more uses of the major fluid).  The
paper's iterative deepening stops at the first depth whose stages fit the
hardware's dynamic range; this benchmark shows what each depth buys.
"""

from fractions import Fraction

import _report
import pytest

from repro.core.cascading import cascade_mix, stage_factors
from repro.core.dag import AssayDAG
from repro.core.dagsolve import compute_vnorms, dagsolve
from repro.core.limits import PAPER_LIMITS


def skew_dag(ratio=999):
    dag = AssayDAG(f"skew{ratio}")
    dag.add_input("A")
    dag.add_input("B")
    dag.add_mix("M", {"A": 1, "B": ratio})
    return dag


def test_depth_sweep_on_1_999(benchmark):
    def sweep():
        rows = {}
        for depth in (1, 2, 3, 4):
            if depth == 1:
                dag = skew_dag()
                assignment = dagsolve(dag, PAPER_LIMITS)
                minor = assignment.edge_volume[("A", "M")]
                rows[depth] = (minor, 1, 0, dag.out_degree("B"))
                continue
            dag, report = cascade_mix(
                skew_dag(), "M", stage_factors(Fraction(1000), depth)
            )
            assignment = dagsolve(dag, PAPER_LIMITS)
            minor_key = ("A", report.intermediate_ids[0]) if report.intermediate_ids else ("A", "M")
            minor = assignment.edge_volume[minor_key]
            vnorms = compute_vnorms(dag)
            discarded = sum(
                vnorms.edge_vnorm[e.key]
                for e in dag.edges()
                if e.is_excess
            )
            rows[depth] = (
                minor,
                len(report.factors),
                float(discarded),
                dag.out_degree("B"),
            )
        return rows

    rows = benchmark(sweep)
    for depth, (minor, mixes, discarded, b_uses) in rows.items():
        _report.record(
            "sec3.4.1 cascade depth sweep (1:999)",
            f"depth {depth}",
            "deeper = milder stages, more resources",
            f"minor share {float(minor) * 1000:.1f} pl, {mixes} mixes, "
            f"{b_uses} uses of B, excess Vnorm {discarded:.2f}",
        )
    # The headline trade-off: the dispensed minor share grows with depth...
    assert rows[3][0] > rows[1][0]
    # ... while the wet mix count and major-fluid uses grow too.
    assert rows[4][1] > rows[2][1]
    assert rows[4][3] > rows[2][3]


def test_deepening_stops_when_range_fits(benchmark):
    """The automatic picker chooses the smallest depth whose stages fit
    the dynamic range — depth 2 for 1:999 on the paper's hardware."""
    from repro.core.cascading import cascade_extreme_mixes

    def run():
        dag = skew_dag()
        cascaded, reports = cascade_extreme_mixes(dag, PAPER_LIMITS)
        return reports[0]

    report = benchmark(run)
    _report.record(
        "sec3.4.1 cascade depth sweep (1:999)",
        "automatic depth (dynamic range 1000)",
        "smallest feasible (2)",
        report.depth,
    )
    assert report.depth == 2
