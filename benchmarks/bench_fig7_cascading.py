"""Figure 7: the cascaded-mixing DAG transform.

The 1:99 mix becomes two 1:9 stages; 9/10 of the intermediate is discarded
as statically-known excess, which is what keeps DAGSolve applicable.
"""

from fractions import Fraction

import _report

from repro.core.cascading import cascade_mix, stage_factors
from repro.core.dag import AssayDAG
from repro.core.dagsolve import compute_vnorms, dagsolve
from repro.core.limits import PAPER_LIMITS


def build_1_99():
    dag = AssayDAG("fig7")
    dag.add_input("A")
    dag.add_input("B")
    dag.add_mix("C", {"A": 1, "B": 99})
    return dag


def test_figure7_transform(benchmark):
    def transform():
        dag = build_1_99()
        return cascade_mix(dag, "C", stage_factors(Fraction(100), 2))

    cascaded, report = benchmark(transform)
    (intermediate,) = report.intermediate_ids
    node = cascaded.node(intermediate)
    _report.record(
        "fig7 cascaded mixing (1:99)",
        "stage ratios",
        "1:9 then 1:9",
        " then ".join(f"1:{f - 1}" for f in report.factors),
    )
    _report.record(
        "fig7 cascaded mixing (1:99)",
        "intermediate discard share",
        "9/10",
        str(node.excess_fraction),
    )
    assert node.excess_fraction == Fraction(9, 10)

    vnorms = compute_vnorms(cascaded)
    _report.record(
        "fig7 cascaded mixing (1:99)",
        "Vnorm(intermediate) == Vnorm(final)",
        "yes",
        "yes" if vnorms.node_vnorm[intermediate] == vnorms.node_vnorm["C"] else "no",
    )
    assert vnorms.node_vnorm[intermediate] == vnorms.node_vnorm["C"]

    excess_key = (intermediate, f"{intermediate}.excess")
    assert vnorms.edge_vnorm[excess_key] == Fraction(9, 10) * vnorms.node_vnorm[intermediate]


def test_cascade_makes_extreme_ratio_dispensable(benchmark):
    """A mix whose total parts exceed the dynamic range (1:199 on range-100
    hardware) cannot be dispensed directly; its cascade can."""
    from repro.core.limits import HardwareLimits

    coarse = HardwareLimits(max_capacity=100, least_count=1)

    def build_1_199():
        dag = AssayDAG("extreme")
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("C", {"A": 1, "B": 199})
        return dag

    def solve_both():
        direct = dagsolve(build_1_199(), coarse)
        cascaded, __ = cascade_mix(
            build_1_199(), "C", stage_factors(Fraction(200), 2)
        )
        return direct, dagsolve(cascaded, coarse)

    direct, after = benchmark(solve_both)
    _report.record(
        "fig7 cascaded mixing (1:99)",
        "direct 1:199 feasible (range 100)",
        "no",
        "yes" if direct.feasible else "no",
    )
    _report.record(
        "fig7 cascaded mixing (1:99)",
        "cascaded 1:199 feasible (range 100)",
        "yes",
        "yes" if after.feasible else "no",
    )
    assert not direct.feasible
    assert after.feasible
