"""Table 2 (runtime columns): DAGSolve vs LP execution time.

Paper numbers (750 MHz Pentium III, Matlab LIPSOL):

    Assay      DAGSolve (s)   LP (s)
    Glucose    ~0             0.08
    Glycomics  0.003          0.28
    Enzyme     0.016          0.73
    Enzyme10   1.57           1211

Absolute times are incomparable across two decades of hardware and solver
engineering (HiGHS vs LIPSOL), so the reproduction targets the *shape*:
DAGSolve beats LP on every assay and the gap survives at the Enzyme10
scale.  Both DAGSolve flavours are measured: the exact-rational
compile-time solver and the float fast path the run-time system would use
(the paper's C-like implementation corresponds to the latter).

LP timing methodology: the raw enzyme instances are infeasible-by-bounds,
which modern presolve detects almost instantly; to time a *full* solve (as
LIPSOL's interior-point iterations did in the paper) the LP is also run
with relaxed class-1 bounds — that variant is the comparable "LP" number.
"""

import time

import _report
import pytest

from repro.core.dagsolve import dagsolve
from repro.core.errors import InfeasibleError
from repro.core.fastpath import fast_dagsolve
from repro.core.limits import PAPER_LIMITS
from repro.core.lp import solve_model
from repro.core.lpmodel import build_lp_model
from repro.core.runtime_assign import RuntimePlanner
from repro.assays import enzyme, glucose, glycomics, paper_example

PAPER_TIMES = {
    "glucose": (0.0, 0.08),
    "glycomics": (0.003, 0.28),
    "enzyme": (0.016, 0.73),
    "enzyme10": (1.57, 1211.0),
}

ASSAYS = {
    "glucose": glucose.build_dag,
    "enzyme": enzyme.build_dag,
    "enzyme10": lambda: enzyme.build_dag(10),
}


def lp_full_solve(dag):
    """Build + solve with relaxed bounds (always does real simplex work)."""
    model = build_lp_model(dag, PAPER_LIMITS, min_volume_bounds=False)
    return solve_model(model)


def timed(fn, *args, repeat=3):
    best = float("inf")
    for __ in range(repeat):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


# ---------------------------------------------------------------------------
# individual timings for the pytest-benchmark table
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", list(ASSAYS))
def test_dagsolve_fast(benchmark, name):
    dag = ASSAYS[name]()
    benchmark(fast_dagsolve, dag, PAPER_LIMITS)


@pytest.mark.parametrize("name", ["glucose", "enzyme"])
def test_dagsolve_exact(benchmark, name):
    dag = ASSAYS[name]()
    benchmark(dagsolve, dag, PAPER_LIMITS)


@pytest.mark.parametrize("name", list(ASSAYS))
def test_lp(benchmark, name):
    dag = ASSAYS[name]()
    benchmark(lp_full_solve, dag)


def test_glycomics_runtime_assignment(benchmark):
    """The glycomics row measures what its Table 2 cell measured: the total
    run-time volume-assignment work over all four partitions."""
    planner = RuntimePlanner(glycomics.build_dag(), PAPER_LIMITS)

    def assign_all():
        session = planner.session()
        return session.assign_all({"sep1": 40, "sep2": 20, "sep3": 15})

    benchmark(assign_all)


# ---------------------------------------------------------------------------
# the Table 2 shape: ratios
# ---------------------------------------------------------------------------
def test_table2_speedup_shape(benchmark):
    def measure():
        rows = {}
        for name, builder in ASSAYS.items():
            dag = builder()
            t_fast = timed(fast_dagsolve, dag, PAPER_LIMITS)
            t_lp = timed(lp_full_solve, dag)
            rows[name] = (t_fast, t_lp)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    for name, (t_fast, t_lp) in rows.items():
        paper_ds, paper_lp = PAPER_TIMES[name]
        _report.record(
            "table2 runtimes",
            f"{name}: DAGSolve (s)",
            paper_ds,
            round(t_fast, 5),
            "float fast path",
        )
        _report.record(
            "table2 runtimes",
            f"{name}: LP (s)",
            paper_lp,
            round(t_lp, 5),
            "HiGHS, relaxed bounds",
        )
        _report.record(
            "table2 runtimes",
            f"{name}: LP/DAGSolve ratio",
            round(paper_lp / max(paper_ds, 1e-3), 1),
            round(t_lp / t_fast, 1),
            "shape claim: > 1 everywhere",
        )
        assert t_lp > t_fast, f"{name}: LP should be slower than DAGSolve"


def test_lp_with_dagsolve_constraints_still_slower(benchmark):
    """Section 4.3's ablation: adding DAGSolve's artificial constraints to
    the LP helps a little but leaves a large gap (paper: 80x -> 60x)."""

    def measure():
        dag = enzyme.build_dag()
        t_fast = timed(fast_dagsolve, dag, PAPER_LIMITS)
        model_plain = build_lp_model(
            dag, PAPER_LIMITS, min_volume_bounds=False
        )
        model_extra = build_lp_model(
            dag,
            PAPER_LIMITS,
            min_volume_bounds=False,
            dagsolve_constraints=True,
        )
        t_plain = timed(solve_model, model_plain)
        t_extra = timed(solve_model, model_extra)
        return t_fast, t_plain, t_extra

    t_fast, t_plain, t_extra = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    _report.record(
        "table2 runtimes",
        "enzyme: LP+DAGSolve-constraints (s)",
        None,
        round(t_extra, 5),
        f"plain LP {t_plain:.5f}s",
    )
    _report.record(
        "table2 runtimes",
        "enzyme: constrained-LP/DAGSolve ratio",
        60.0,
        round(t_extra / t_fast, 1),
        "paper: gap stays large (60x vs 80x)",
    )
    assert t_extra > t_fast
