"""Figures 2, 4 and 5: DAGSolve on the paper's running example.

Regenerates Figure 5's Vnorms and dispensed volumes and times the
linear-time solver itself on the four-mix DAG.
"""

from fractions import Fraction

import _report

from repro.core.dagsolve import dagsolve
from repro.core.limits import PAPER_LIMITS
from repro.assays import paper_example


def test_figure5_values(benchmark):
    dag = paper_example.build_dag()
    assignment = benchmark(dagsolve, dag, PAPER_LIMITS)

    vnorms = assignment.vnorms.node_vnorm
    for node, expected in sorted(paper_example.EXPECTED_VNORMS.items()):
        _report.record(
            "fig5a Vnorms (figure2 example)",
            f"Vnorm({node})",
            str(expected),
            str(vnorms[node]),
            "exact match" if vnorms[node] == expected else "MISMATCH",
        )
        assert vnorms[node] == expected

    paper_volumes = {
        "A": 13,
        "B": 100,
        "K": 65,
        ("B", "K"): 52,
        ("B", "L"): 48,
        ("C", "L"): 24,
        ("C", "N"): 59,
    }
    for key, paper_value in paper_volumes.items():
        if isinstance(key, tuple):
            measured = float(assignment.edge_volume[key])
            label = f"edge {key[0]}->{key[1]} (nl)"
        else:
            measured = float(assignment.node_volume[key])
            label = f"node {key} (nl)"
        _report.record(
            "fig5b dispensed volumes (figure2 example)",
            label,
            paper_value,
            round(measured, 1),
            "paper prints rounded integers",
        )
        assert round(measured) == paper_value
    assert assignment.feasible
