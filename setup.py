"""Shim for offline editable installs (no wheel package available).

``pip install -e . --no-use-pep517 --no-build-isolation`` uses this; all
real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
