"""The AIS interpreter: AquaCore's dry control driving the wet datapath.

:class:`Machine` instantiates the components of a :class:`MachineSpec`,
binds input ports to fluid species, and executes AIS instructions one at a
time.  Volumes for metered moves come from a *resolver* — the bridge to the
volume-management plan: the runtime passes a function mapping an
instruction (via its DAG-edge provenance) to the planned absolute volume.

Execution-model details that matter for volume management:

* every metered transfer goes through the :class:`MeteringPump` and is
  subject to the least count;
* a ``move`` with no volume drains its source completely (the AIS
  "implicit volume" behaviour);
* sensors are flow cells: depositing into an occupied sensor flushes the
  previous sample to waste;
* a separator flushes its outlet wells when a new separation starts, and
  reports the effluent volume as a run-time *measurement* — the quantity
  Section 3.5's constrained inputs wait for.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, cast
from collections.abc import Callable, Iterable, Sequence

from ..core.limits import HardwareLimits, Number, as_fraction
from ..ir.instructions import Instruction, Opcode, Operand
from ..ir.program import AISProgram
from .components import Container, Heater, Mixer, Reservoir, Sensor, Separator
from .errors import (
    ComponentError,
    EmptyError,
    MachineError,
    TransportError,
    UnknownOperandError,
)
from .faults import FaultInjector
from .fluids import Mixture
from .metering import MeteringPump
from .separation import SeparationModel
from .spec import AQUACORE_SPEC, MachineSpec
from .trace import ExecutionTrace, TraceEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .topology import ChannelTopology

__all__ = ["Machine", "PortBinding", "VolumeResolver"]

#: maps an instruction to its planned absolute volume (None = drain all).
VolumeResolver = Callable[[Instruction], Fraction | None]


@dataclass
class PortBinding:
    """An input port: which species it supplies and how much is on hand.

    ``supply=None`` models an effectively unlimited off-chip source; a
    finite supply lets tests exercise genuine exhaustion.
    """

    species: str
    supply: Fraction | None = None
    drawn: Fraction = Fraction(0)

    def draw(self, volume: Fraction, port: str) -> Mixture:
        if self.supply is not None and self.drawn + volume > self.supply:
            raise EmptyError(
                f"input port {port}: drawing {float(volume):.6g} nl exceeds "
                f"remaining supply "
                f"{float(self.supply - self.drawn):.6g} nl",
                component=port,
                requested=volume,
                available=self.supply - self.drawn,
            )
        self.drawn += volume
        return Mixture.pure(self.species, volume)


class Machine:
    """One PLoC instance: components + pump + trace + dry register file."""

    def __init__(
        self,
        spec: MachineSpec = AQUACORE_SPEC,
        *,
        separation_models: dict[str, SeparationModel] | None = None,
        strict_metering: bool = False,
        topology: "ChannelTopology" | None = None,
        injector: FaultInjector | None = None,
    ) -> None:
        self.spec = spec
        #: optional channel graph; when set, transfers are route-checked
        #: and their simulated time scales with the hop count.
        self.topology = topology
        self.limits: HardwareLimits = spec.limits
        self.pump = MeteringPump(spec.limits, strict=strict_metering)
        self.trace = ExecutionTrace()
        #: optional deterministic fault source (see repro.machine.faults).
        self.injector: FaultInjector | None = None
        self.results: dict[str, Fraction] = {}
        self.registers: dict[str, int] = {}
        self.ports: dict[str, PortBinding] = {}
        self.output_tally: dict[str, Fraction] = {}
        #: what was actually shipped per output port (full mixtures, so
        #: tests can compare final product concentration vectors).
        self.output_mixtures: dict[str, Mixture] = {}
        #: fluid discarded by flushes (sensor cells, separator outlets).
        self.waste_tally: Fraction = Fraction(0)
        self._components: dict[str, Container] = {}
        capacity = spec.limits.max_capacity
        for name in spec.reservoir_names():
            self._components[name] = Reservoir(name, capacity)
        models = separation_models or {}
        #: units whose separation model was explicitly chosen by the user;
        #: YIELD hints never override these.
        self._user_separation_models = frozenset(models)
        for unit in spec.functional_units:
            unit_capacity = spec.capacity_of(unit)
            if unit.kind == "mixer":
                component: Container = Mixer(unit.name, unit_capacity)
            elif unit.kind == "heater":
                component = Heater(unit.name, unit_capacity)
            elif unit.kind == "separator":
                component = Separator(
                    unit.name,
                    unit_capacity,
                    modes=unit.modes,
                    model=models.get(unit.name),
                )
            else:
                component = Sensor(
                    unit.name,
                    unit_capacity,
                    senses=unit.senses,
                    coefficients=dict(spec.extinction_coefficients),
                )
            self._components[unit.name] = component
        if injector is not None:
            self.install_injector(injector)

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def install_injector(self, injector: FaultInjector) -> None:
        """Attach a deterministic fault source to this machine.

        The injector is shared with the metering pump (drift faults) and
        records every fired fault into this machine's trace.
        """
        self.injector = injector
        self.pump.injector = injector
        injector.install(self.trace, self.limits.least_count)

    def bind_port(
        self, port: str, species: str, supply: Number | None = None
    ) -> None:
        if port not in self.spec.input_port_names():
            raise UnknownOperandError(f"no input port {port!r}")
        self.ports[port] = PortBinding(
            species, None if supply is None else as_fraction(supply)
        )

    def bind_ports(self, bindings: dict[str, str]) -> None:
        """Bind several ports at once (fluid-species by port id)."""
        for port, species in bindings.items():
            self.bind_port(port, species)

    # ------------------------------------------------------------------
    # component access
    # ------------------------------------------------------------------
    def component(self, operand: str | Operand) -> Container:
        if isinstance(operand, str):
            operand = Operand.parse(operand)
        base = self._components.get(operand.base)
        if base is None:
            raise UnknownOperandError(
                f"no component {operand.base!r} on machine {self.spec.name!r}"
            )
        if operand.sub is None:
            return base
        if not isinstance(base, Separator):
            raise UnknownOperandError(
                f"{operand.base!r} has no sub-port {operand.sub!r}"
            )
        return base.sub(operand.sub)

    def reservoirs(self) -> dict[str, Reservoir]:
        return {
            name: comp
            for name, comp in self._components.items()
            if isinstance(comp, Reservoir)
        }

    def total_onchip_volume(self) -> Fraction:
        return sum(
            (comp.volume for comp in self._components.values()),
            Fraction(0),
        ) + sum(
            (
                sub.volume
                for comp in self._components.values()
                if isinstance(comp, Separator)
                for sub in (comp.matrix, comp.pusher, comp.out1, comp.out2)
            ),
            Fraction(0),
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        program: AISProgram,
        *,
        resolver: VolumeResolver | None = None,
    ) -> ExecutionTrace:
        """Execute a whole program; returns the accumulated trace."""
        for index, instruction in enumerate(program):
            self.execute(instruction, resolver=resolver, index=index)
        return self.trace

    def execute(
        self,
        instruction: Instruction,
        *,
        resolver: VolumeResolver | None = None,
        index: int = -1,
    ) -> Fraction | None:
        """Execute one instruction; returns its measurement, if any."""
        if self.injector is not None:
            self.injector.begin(index)
        op = instruction.opcode
        handler = {
            Opcode.INPUT: self._exec_input,
            Opcode.OUTPUT: self._exec_output,
            Opcode.MOVE: self._exec_move,
            Opcode.MOVE_ABS: self._exec_move,
            Opcode.MIX: self._exec_mix,
            Opcode.INCUBATE: self._exec_heat,
            Opcode.CONCENTRATE: self._exec_heat,
            Opcode.SEPARATE: self._exec_separate,
            Opcode.SENSE: self._exec_sense,
            Opcode.DRY_MOV: self._exec_dry,
            Opcode.DRY_ADD: self._exec_dry,
            Opcode.DRY_SUB: self._exec_dry,
            Opcode.DRY_MUL: self._exec_dry,
        }[op]
        return handler(instruction, resolver, index)

    # ------------------------------------------------------------------
    def _resolve_volume(
        self,
        instruction: Instruction,
        resolver: VolumeResolver | None,
    ) -> Fraction | None:
        if instruction.abs_volume is not None:
            return instruction.abs_volume
        if resolver is not None:
            resolved = resolver(instruction)
            if resolved is not None:
                return as_fraction(resolved)
        return None

    def _check_route(self, src: object, dst: object) -> int:
        """Hop count of a transfer; 1 when no topology is installed.

        Raises :class:`ComponentError` for physically unroutable moves.
        """
        if self.topology is None:
            return 1
        return self.topology.hops(str(src), str(dst))

    def _wet_seconds(self, instruction: Instruction) -> Fraction:
        """Simulated fluid-path time for one instruction."""
        op = instruction.opcode
        if not op.is_wet:
            return Fraction(0)
        if op in (Opcode.INPUT, Opcode.OUTPUT, Opcode.MOVE, Opcode.MOVE_ABS):
            hops = 1
            if self.topology is not None:
                hops = self.topology.hops(
                    str(instruction.src), str(instruction.dst)
                )
            return self.spec.transfer_seconds * hops
        if op is Opcode.SENSE:
            return self.spec.sense_seconds
        # mix / incubate / concentrate / separate carry their own duration
        return instruction.duration or Fraction(0)

    def _record(
        self,
        instruction: Instruction,
        index: int,
        *,
        volume: Fraction | None = None,
        measurement: Fraction | None = None,
        note: str = "",
    ) -> None:
        self.trace.record(
            TraceEvent(
                index=index,
                opcode=instruction.opcode.value,
                text=instruction.render(),
                volume=volume,
                measurement=measurement,
                note=note,
                seconds=self._wet_seconds(instruction),
            ),
            wet=instruction.is_wet,
        )

    # -- fault hooks ------------------------------------------------------
    def _fault_transport(self, instruction: Instruction) -> None:
        """Raise :class:`TransportError` when a transient valve/transport
        fault blocks this transfer attempt (no fluid has moved yet)."""
        if self.injector is None:
            return
        location = str(instruction.src)
        if self.injector.transport_blocked(location):
            raise TransportError(
                f"transient transport failure moving {instruction.src} "
                f"-> {instruction.dst}",
                component=location,
            )

    def _fault_depletion(self, src: Container) -> None:
        """Spill the source's contents when a depletion fault fires; the
        subsequent draw then underflows and triggers regeneration."""
        if self.injector is None:
            return
        if self.injector.depleted(src.name):
            lost = src.discard()
            if lost > 0:
                self.waste_tally += lost
                self.injector.record_depletion(src.name, lost)

    # -- wet handlers ---------------------------------------------------
    def _exec_input(
        self,
        instruction: Instruction,
        resolver: VolumeResolver | None,
        index: int,
    ) -> Fraction | None:
        assert instruction.src is not None and instruction.dst is not None
        self._check_route(instruction.src, instruction.dst)
        port = instruction.src.base
        binding = self.ports.get(port)
        if binding is None:
            raise UnknownOperandError(
                f"input port {port!r} is not bound to a fluid"
            )
        self._fault_transport(instruction)
        volume = self._resolve_volume(instruction, resolver)
        dst = self.component(instruction.dst)
        if volume is None:
            volume = dst.free  # fill the reservoir
        # A refill (regeneration re-executing an input) tops the reservoir
        # up; it can never exceed the free space.
        volume = min(volume, dst.free)
        if volume < self.limits.least_count:
            self._record(instruction, index, volume=Fraction(0), note="already full")
            return None
        metered = self.pump.meter(volume, headroom=dst.free)
        dst.deposit(binding.draw(metered, port))
        self.pump.record(metered)
        self._record(instruction, index, volume=metered)
        return None

    def _exec_output(
        self,
        instruction: Instruction,
        resolver: VolumeResolver | None,
        index: int,
    ) -> Fraction | None:
        assert instruction.src is not None and instruction.dst is not None
        self._check_route(instruction.src, instruction.dst)
        src = self.component(instruction.src)
        self._fault_transport(instruction)
        removed = src.drain()
        port = str(instruction.dst)
        self.output_tally[port] = (
            self.output_tally.get(port, Fraction(0)) + removed.volume
        )
        if not removed.is_empty:
            merged = self.output_mixtures.get(port, Mixture.empty())
            self.output_mixtures[port] = merged.merge(removed)
        self._record(instruction, index, volume=removed.volume)
        return None

    def _exec_move(
        self,
        instruction: Instruction,
        resolver: VolumeResolver | None,
        index: int,
    ) -> Fraction | None:
        assert instruction.src is not None and instruction.dst is not None
        self._check_route(instruction.src, instruction.dst)
        src = self.component(instruction.src)
        dst = self.component(instruction.dst)
        self._fault_transport(instruction)
        self._fault_depletion(src)
        volume = self._resolve_volume(instruction, resolver)
        note = ""
        if volume is None:
            moved = src.drain()
            if moved.is_empty:
                raise EmptyError(
                    f"move from empty {instruction.src}",
                    component=str(instruction.src),
                    requested=None,
                    available=Fraction(0),
                )
        else:
            # upward metering drift is capped by the destination's free
            # space (a flushed-on-deposit sensor frees its whole cell).
            headroom = dst.capacity if isinstance(dst, Sensor) else dst.free
            metered = self.pump.meter(volume, headroom=headroom)
            if self.injector is not None:
                metered = self.injector.dispense_shortfall(metered)
            moved = src.draw(metered)
        if isinstance(dst, Sensor) and not dst.is_empty:
            flushed = dst.discard()
            self.waste_tally += flushed
            note = f"flushed {float(flushed):.4g} nl from {dst.name}"
        dst.deposit(moved)
        self.pump.record(moved.volume)
        self._record(instruction, index, volume=moved.volume, note=note)
        return None

    def _exec_mix(
        self,
        instruction: Instruction,
        resolver: VolumeResolver | None,
        index: int,
    ) -> Fraction | None:
        assert instruction.dst is not None and instruction.duration is not None
        unit = self.component(instruction.dst)
        if not isinstance(unit, Mixer):
            raise ComponentError(f"{instruction.dst} is not a mixer")
        unit.mix(instruction.duration)
        self._record(instruction, index, volume=unit.volume)
        return None

    def _exec_heat(
        self,
        instruction: Instruction,
        resolver: VolumeResolver | None,
        index: int,
    ) -> Fraction | None:
        assert instruction.dst is not None
        assert instruction.temperature is not None
        assert instruction.duration is not None
        unit = self.component(instruction.dst)
        if not isinstance(unit, Heater):
            raise ComponentError(f"{instruction.dst} is not a heater")
        if instruction.opcode is Opcode.CONCENTRATE:
            keep = as_fraction(
                cast(Number, instruction.meta.get("keep_fraction", Fraction(1, 2)))
            )
            lost = unit.concentrate(
                instruction.temperature, instruction.duration, keep
            )
            self._record(
                instruction, index, volume=unit.volume,
                note=f"evaporated {float(lost):.4g} nl",
            )
        else:
            unit.incubate(instruction.temperature, instruction.duration)
            self._record(instruction, index, volume=unit.volume)
        return None

    def _exec_separate(
        self,
        instruction: Instruction,
        resolver: VolumeResolver | None,
        index: int,
    ) -> Fraction | None:
        assert instruction.dst is not None
        assert instruction.mode is not None and instruction.duration is not None
        unit = self.component(instruction.dst)
        if not isinstance(unit, Separator):
            raise ComponentError(f"{instruction.dst} is not a separator")
        # Outlets are flushed when a new run starts (flow-cell model).
        self.waste_tally += unit.out1.discard()
        self.waste_tally += unit.out2.discard()
        consumables = unit.matrix.volume + unit.pusher.volume
        hint = instruction.meta.get("yield_fraction")
        saved_model = None
        if hint is not None and unit.name not in self._user_separation_models:
            # the compiled plan assumed the YIELD hint; with no explicit
            # chemistry installed, the simulation honours it
            from .separation import FractionalYield

            saved_model = unit.model
            unit.model = FractionalYield(as_fraction(cast(Number, hint)))
        try:
            effluent, waste = unit.separate(
                instruction.mode, instruction.duration
            )
        finally:
            if saved_model is not None:
                unit.model = saved_model
        # matrix and pusher are spent by the run (see Separator.separate)
        self.waste_tally += consumables - unit.matrix.volume - unit.pusher.volume
        self._record(
            instruction,
            index,
            volume=effluent + waste,
            measurement=effluent,
            note=f"effluent {float(effluent):.4g} nl, waste {float(waste):.4g} nl",
        )
        return effluent

    def _exec_sense(
        self,
        instruction: Instruction,
        resolver: VolumeResolver | None,
        index: int,
    ) -> Fraction | None:
        assert instruction.dst is not None
        assert instruction.mode is not None and instruction.result is not None
        unit = self.component(instruction.dst)
        if not isinstance(unit, Sensor):
            raise ComponentError(f"{instruction.dst} is not a sensor")
        reading = unit.read(instruction.mode)
        if self.injector is not None:
            reading = self.injector.misread(reading, unit.name)
        self.results[instruction.result] = reading
        self._record(instruction, index, measurement=reading)
        return reading

    # -- dry handler ------------------------------------------------------
    def _exec_dry(
        self,
        instruction: Instruction,
        resolver: VolumeResolver | None,
        index: int,
    ) -> Fraction | None:
        value = instruction.value
        assert value is not None and instruction.reg is not None
        operand = (
            self.registers.get(str(value), 0)
            if isinstance(value, str)
            else int(value)
        )
        register = instruction.reg
        current = self.registers.get(register, 0)
        if instruction.opcode is Opcode.DRY_MOV:
            self.registers[register] = operand
        elif instruction.opcode is Opcode.DRY_ADD:
            self.registers[register] = current + operand
        elif instruction.opcode is Opcode.DRY_SUB:
            self.registers[register] = current - operand
        else:
            self.registers[register] = current * operand
        self._record(instruction, index)
        return None
