"""Wet components: reservoirs and functional units as stateful containers.

Every component that can hold fluid derives from :class:`Container`, which
enforces its capacity on deposit and availability on draw.  Functional units
add their operation (:meth:`Mixer.mix`, :meth:`Heater.incubate`,
:meth:`Separator.separate`, :meth:`Sensor.read`) and the bookkeeping the
trace records.

Separators are composite, matching the AIS operand space of the paper's
compiled code (``separator1.matrix``, ``separator1.pusher``,
``separator1.out1``): the matrix and pusher wells are loaded with plain
moves before ``separate.*`` fires, and the effluent/waste land in ``out1``
/ ``out2``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from ..core.limits import HardwareLimits, Number, as_fraction
from .errors import CapacityError, ComponentError, EmptyError
from .fluids import Mixture
from .separation import FractionalYield, SeparationModel

__all__ = ["Container", "Reservoir", "Mixer", "Heater", "Separator", "Sensor"]


class Container:
    """A capacity-limited vessel holding one mixture."""

    def __init__(self, name: str, capacity: Fraction) -> None:
        self.name = name
        self.capacity = as_fraction(capacity)
        self.contents = Mixture.empty()

    # ------------------------------------------------------------------
    @property
    def volume(self) -> Fraction:
        return self.contents.volume

    @property
    def free(self) -> Fraction:
        return self.capacity - self.volume

    @property
    def is_empty(self) -> bool:
        return self.contents.is_empty

    def deposit(self, mixture: Mixture) -> None:
        """Add fluid; raises :class:`CapacityError` on overflow."""
        if mixture.is_empty:
            return
        if self.volume + mixture.volume > self.capacity:
            raise CapacityError(
                f"{self.name}: depositing {float(mixture.volume):.6g} nl "
                f"into {float(self.volume):.6g}/{float(self.capacity):.6g} nl",
                component=self.name,
                requested=mixture.volume,
                capacity=self.capacity,
            )
        self.contents = self.contents.merge(mixture)

    def draw(self, volume: Number) -> Mixture:
        """Remove ``volume``; raises :class:`EmptyError` if unavailable."""
        requested = as_fraction(volume)
        if requested > self.volume:
            raise EmptyError(
                f"{self.name}: drawing {float(requested):.6g} nl but only "
                f"{float(self.volume):.6g} nl available",
                component=self.name,
                requested=requested,
                available=self.volume,
            )
        return self.contents.take(requested)

    def drain(self) -> Mixture:
        """Remove everything (used by storage-less operand forwarding)."""
        return self.contents.take_all()

    def discard(self) -> Fraction:
        """Empty the container to waste; returns the discarded volume."""
        discarded = self.volume
        self.contents = Mixture.empty()
        return discarded

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r}, {self.contents!r})"


class Reservoir(Container):
    """Plain storage (the PLoC's 'registers')."""


class Mixer(Container):
    """Mixing chamber.  Depositing already co-locates the fluids; ``mix``
    models the peristaltic homogenisation step and its duration."""

    def __init__(self, name: str, capacity: Fraction) -> None:
        super().__init__(name, capacity)
        self.mix_count = 0
        self.total_mix_time = Fraction(0)

    def mix(self, duration: Number) -> None:
        if self.is_empty:
            raise ComponentError(f"{self.name}: mixing an empty chamber")
        time = as_fraction(duration)
        if time <= 0:
            raise ComponentError(f"{self.name}: mix duration must be positive")
        self.mix_count += 1
        self.total_mix_time += time


class Heater(Container):
    """Incubation/concentration chamber.

    ``concentrate`` reduces volume by evaporating solvent — the output
    fraction mirrors the DAG's ``output_fraction`` for concentrate ops.
    """

    def __init__(self, name: str, capacity: Fraction) -> None:
        super().__init__(name, capacity)
        self.temperature: Fraction | None = None
        self.incubation_log: list[tuple[Fraction, Fraction]] = []

    def incubate(self, temperature: Number, duration: Number) -> None:
        if self.is_empty:
            raise ComponentError(f"{self.name}: incubating an empty chamber")
        temp = as_fraction(temperature)
        time = as_fraction(duration)
        self.temperature = temp
        self.incubation_log.append((temp, time))

    def concentrate(
        self, temperature: Number, duration: Number, keep_fraction: Number
    ) -> Fraction:
        """Evaporate down to ``keep_fraction`` of the volume; returns the
        volume lost."""
        self.incubate(temperature, duration)
        keep = as_fraction(keep_fraction)
        if not (0 < keep <= 1):
            raise ComponentError(
                f"{self.name}: keep fraction must be in (0, 1], got {keep}"
            )
        before = self.volume
        self.contents = self.contents.scaled(keep)
        return before - self.volume


class Separator(Container):
    """Composite separation unit with matrix/pusher wells and two outlets."""

    def __init__(
        self,
        name: str,
        capacity: Fraction,
        *,
        modes: tuple[str, ...] = (),
        model: SeparationModel | None = None,
    ) -> None:
        super().__init__(name, capacity)
        self.modes = modes
        self.model: SeparationModel = model or FractionalYield(Fraction(1, 2))
        self.matrix = Container(f"{name}.matrix", capacity)
        self.pusher = Container(f"{name}.pusher", capacity)
        self.out1 = Container(f"{name}.out1", capacity)
        self.out2 = Container(f"{name}.out2", capacity)
        self.separation_count = 0

    def sub(self, port: str) -> Container:
        try:
            return {
                "matrix": self.matrix,
                "pusher": self.pusher,
                "out1": self.out1,
                "out2": self.out2,
            }[port]
        except KeyError:
            raise ComponentError(
                f"{self.name}: no sub-port {port!r}"
            ) from None

    def separate(self, mode: str, duration: Number) -> tuple[Fraction, Fraction]:
        """Run the separation; effluent -> out1, waste -> out2.

        Returns (effluent volume, waste volume) — the effluent volume is
        the run-time measurement Section 3.5 needs.
        """
        if self.modes and mode not in self.modes:
            raise ComponentError(
                f"{self.name} does not implement separate.{mode}"
            )
        if self.is_empty:
            raise ComponentError(f"{self.name}: separating an empty chamber")
        as_fraction(duration)  # validates
        feed = self.contents.take_all()
        effluent, waste = self.model.separate(feed)
        if effluent.volume + waste.volume != feed.volume:
            raise ComponentError(
                f"{self.name}: separation model does not conserve volume"
            )
        self.out1.deposit(effluent)
        self.out2.deposit(waste)
        # The pusher buffer is consumed driving the separation, and the
        # matrix is spent with it (each run needs a fresh load — which is
        # why the compiler emits refill inputs before reuse).
        self.pusher.discard()
        self.matrix.discard()
        self.separation_count += 1
        return effluent.volume, waste.volume


class Sensor(Container):
    """Optical sensor: optical density or fluorescence reads.

    Reads are *non-destructive*: the fluid stays in the sensing cell and can
    be moved onward afterwards (AIS semantics).
    """

    def __init__(
        self,
        name: str,
        capacity: Fraction,
        *,
        senses: tuple[str, ...] = (),
        coefficients: dict[str, Fraction] | None = None,
    ) -> None:
        super().__init__(name, capacity)
        self.senses = senses
        self.coefficients = coefficients or {}
        self.readings: list[Fraction] = []

    def read(self, mode: str) -> Fraction:
        """Absorbance-additivity model: sum of concentration x coefficient."""
        if self.senses and mode not in self.senses:
            raise ComponentError(f"{self.name} does not implement sense.{mode}")
        if self.is_empty:
            raise ComponentError(f"{self.name}: sensing an empty cell")
        reading = Fraction(0)
        for species, coefficient in self.coefficients.items():
            reading += self.contents.concentration(species) * coefficient
        self.readings.append(reading)
        return reading
