"""Mixture tracking: fluids as exact composition vectors.

A :class:`Mixture` maps *species* (the names of primary input fluids) to the
volume each contributes.  Mixing merges vectors; drawing a portion splits
every component proportionally (assays always mix before splitting, so
homogeneity is a safe model).  Volumes are :class:`fractions.Fraction`
nanoliters, like everywhere else in the code base, so conservation checks in
tests are exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from collections.abc import Iterable, Mapping

from ..core.limits import Number, as_fraction

__all__ = ["Mixture"]


@dataclass
class Mixture:
    """A volume of (possibly mixed) fluid.

    Invariants: all component volumes are >= 0 and their sum is
    :attr:`volume`.  The empty mixture has no components.
    """

    components: dict[str, Fraction] = field(default_factory=dict)

    def __post_init__(self) -> None:
        clean: dict[str, Fraction] = {}
        for species, volume in self.components.items():
            value = as_fraction(volume)
            if value < 0:
                raise ValueError(
                    f"negative volume {volume} for species {species!r}"
                )
            if value > 0:
                clean[species] = value
        self.components = clean

    # ------------------------------------------------------------------
    @classmethod
    def pure(cls, species: str, volume: Number) -> "Mixture":
        """A single-species mixture."""
        return cls({species: as_fraction(volume)})

    @classmethod
    def empty(cls) -> "Mixture":
        return cls({})

    # ------------------------------------------------------------------
    @property
    def volume(self) -> Fraction:
        return sum(self.components.values(), Fraction(0))

    @property
    def is_empty(self) -> bool:
        return not self.components

    def species(self) -> tuple[str, ...]:
        return tuple(sorted(self.components))

    def concentration(self, species: str) -> Fraction:
        """Volume fraction of ``species`` in the mixture (0 when absent)."""
        total = self.volume
        if total == 0:
            return Fraction(0)
        return self.components.get(species, Fraction(0)) / total

    def amount(self, species: str) -> Fraction:
        return self.components.get(species, Fraction(0))

    # ------------------------------------------------------------------
    def merge(self, other: "Mixture") -> "Mixture":
        """The mixture obtained by combining self and other (new object)."""
        merged = dict(self.components)
        for species, volume in other.components.items():
            merged[species] = merged.get(species, Fraction(0)) + volume
        return Mixture(merged)

    def take(self, volume: Number) -> "Mixture":
        """Remove ``volume`` proportionally from every component.

        Returns the removed portion as a new mixture; mutates self.

        Raises:
            ValueError: if more than the available volume is requested.
        """
        requested = as_fraction(volume)
        if requested < 0:
            raise ValueError(f"cannot take a negative volume ({volume})")
        total = self.volume
        if requested > total:
            raise ValueError(
                f"cannot take {float(requested)} nl from {float(total)} nl"
            )
        if requested == 0:
            return Mixture.empty()
        if requested == total:
            taken = Mixture(dict(self.components))
            self.components = {}
            return taken
        share = requested / total
        taken: dict[str, Fraction] = {}
        remaining: dict[str, Fraction] = {}
        for species, amount in self.components.items():
            part = amount * share
            taken[species] = part
            remaining[species] = amount - part
        self.components = {k: v for k, v in remaining.items() if v > 0}
        return Mixture(taken)

    def take_all(self) -> "Mixture":
        return self.take(self.volume)

    def split(self, volumes: Iterable[Number]) -> tuple["Mixture", ...]:
        """Split off several portions in sequence (mutates self)."""
        return tuple(self.take(volume) for volume in volumes)

    def scaled(self, factor: Number) -> "Mixture":
        """A new mixture with every component scaled by ``factor``."""
        scale = as_fraction(factor)
        if scale < 0:
            raise ValueError("scale factor must be >= 0")
        return Mixture(
            {species: amount * scale for species, amount in self.components.items()}
        )

    def relabelled(self, species: str) -> "Mixture":
        """Collapse the composition into one new species of equal volume.

        Models chemistry that creates a genuinely new fluid (e.g. an
        enzymatic digestion): downstream sensing then sees the product, not
        the ingredients.
        """
        return Mixture.pure(species, self.volume)

    # ------------------------------------------------------------------
    def approx_equal(self, other: Mapping[str, Number], tolerance: Number = 0) -> bool:
        tol = as_fraction(tolerance)
        keys = set(self.components) | set(other)
        return all(
            abs(self.amount(k) - as_fraction(other.get(k, 0))) <= tol
            for k in keys
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_empty:
            return "Mixture(empty)"
        parts = ", ".join(
            f"{species}={float(amount):.4g}"
            for species, amount in sorted(self.components.items())
        )
        return f"Mixture({parts}; total={float(self.volume):.4g} nl)"
