"""Deterministic fault injection for the PLoC model.

The volume-management hierarchy bottoms out in Biostream-style
regeneration as the reactive fallback; to *test* that fallback (and to
measure how plans degrade when hardware misbehaves, cf. the storage/
transport cost models of the flow-based synthesis literature) we need a
fault model that is repeatable down to the byte.  This module provides it:

* :class:`FaultPlan` — a pure-value description of *which* faults can
  happen: an explicit RNG seed, a fault rate, the enabled
  :class:`FaultKind` set, and optionally an explicit schedule of
  :class:`ScheduledFault` entries for targeted tests.
* :class:`FaultInjector` — the runtime object the machine consults.  It
  is installed on a :class:`~repro.machine.Machine` (and shared with its
  :class:`~repro.machine.metering.MeteringPump`) and decides, per
  *(instruction index, attempt)*, whether a fault fires.

Determinism contract
--------------------

Every decision is derived from ``hash(seed | kind | index | occurrence)``
via a freshly seeded :class:`random.Random` — no global RNG, no wall
clock, no iteration-order dependence.  The same :class:`FaultPlan` against
the same program therefore produces the *identical* fault sequence, trace,
and readings on every run; and a plan with ``rate=0`` and no schedule is
a strict no-op (execution is byte-identical to running with no injector
at all — a property test enforces this).

Fault taxonomy
--------------

===================  ====================================================
kind                 effect
===================  ====================================================
metering-drift       a metered transfer is off by ± one least count
dispense-shortfall   a metered move delivers 1-2 least counts short
reservoir-depletion  a move's source is found spilled/evaporated: its
                     contents go to waste and the draw raises
                     :class:`~repro.machine.errors.EmptyError`, which the
                     executor answers with regeneration
sensor-misread       an optical reading is off by ±5% (relative)
transport-failure    a transfer is blocked before any fluid moves
                     (:class:`~repro.machine.errors.TransportError`);
                     retrying the instruction may succeed
===================  ====================================================

``LOSS_KINDS`` (depletion, transport) are *semantically transparent*
under recovery: retries repeat an un-started transfer and regeneration
re-executes producing slices with the same planned volumes, so a run
whose losses stay within the regeneration budget ends with the same
product mixtures as a fault-free run.  ``PERTURBING_KINDS`` (drift,
shortfall, misread) change delivered volumes or readings and are
reported, not corrected.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from fractions import Fraction
from collections.abc import Iterable

from .trace import ExecutionTrace, FaultEvent

__all__ = [
    "FaultKind",
    "ScheduledFault",
    "FaultPlan",
    "FaultInjector",
    "ALL_KINDS",
    "LOSS_KINDS",
    "PERTURBING_KINDS",
    "parse_kinds",
]

class FaultKind(str, Enum):
    """One class of injected hardware misbehaviour."""

    METERING_DRIFT = "metering-drift"
    DISPENSE_SHORTFALL = "dispense-shortfall"
    RESERVOIR_DEPLETION = "reservoir-depletion"
    SENSOR_MISREAD = "sensor-misread"
    TRANSPORT_FAILURE = "transport-failure"


ALL_KINDS: frozenset[FaultKind] = frozenset(FaultKind)
#: recoverable volume-loss faults: recovery restores exact semantics.
LOSS_KINDS: frozenset[FaultKind] = frozenset(
    {FaultKind.RESERVOIR_DEPLETION, FaultKind.TRANSPORT_FAILURE}
)
#: value-perturbing faults: reported in the trace, not corrected.
PERTURBING_KINDS: frozenset[FaultKind] = ALL_KINDS - LOSS_KINDS


def parse_kinds(names: Iterable[str]) -> frozenset[FaultKind]:
    """Parse kind names (CLI ``--kinds`` values) into a kind set."""
    kinds = set()
    for name in names:
        text = name.strip()
        if not text:
            continue
        try:
            kinds.add(FaultKind(text))
        except ValueError:
            valid = ", ".join(sorted(k.value for k in FaultKind))
            raise ValueError(
                f"unknown fault kind {text!r}; valid kinds: {valid}"
            ) from None
    return frozenset(kinds)


@dataclass(frozen=True)
class ScheduledFault:
    """An explicitly scheduled fault (fires regardless of the rate).

    ``occurrence`` is 1-based: occurrence 2 of index 7 means "the second
    time instruction 7 executes" (retries and regeneration re-executions
    each count as one occurrence).
    """

    index: int
    kind: FaultKind
    occurrence: int = 1
    #: kind-specific size in least counts (drift sign, shortfall depth) or
    #: relative delta (misread); None picks the seeded default.
    magnitude: Fraction | None = None


@dataclass(frozen=True)
class FaultPlan:
    """Pure-value description of a fault scenario.

    Attributes:
        seed: the explicit RNG seed; every decision derives from it.
        rate: per-(kind, attempt) probability that a fault fires.
        kinds: which fault classes are enabled.
        schedule: explicit faults, fired in addition to the seeded ones.
        misread_relative: relative size of a sensor misread.
        max_shortfall_counts: worst dispense shortfall, in least counts.
    """

    seed: int = 0
    rate: float = 0.0
    kinds: frozenset[FaultKind] = ALL_KINDS
    schedule: tuple[ScheduledFault, ...] = ()
    misread_relative: Fraction = Fraction(1, 20)
    max_shortfall_counts: int = 2

    @classmethod
    def seeded(
        cls,
        seed: int,
        rate: float,
        *,
        kinds: Iterable[FaultKind] = ALL_KINDS,
    ) -> "FaultPlan":
        return cls(seed=seed, rate=rate, kinds=frozenset(kinds))

    @classmethod
    def none(cls) -> "FaultPlan":
        """The zero-fault plan (a strict no-op under injection)."""
        return cls(seed=0, rate=0.0, schedule=())

    # ------------------------------------------------------------------
    def _rng(self, kind: FaultKind, index: int, occurrence: int) -> random.Random:
        # str seeding hashes the bytes (sha512), so decisions are stable
        # across processes and PYTHONHASHSEED values.
        return random.Random(f"{self.seed}|{kind.value}|{index}|{occurrence}")

    def roll(
        self, kind: FaultKind, index: int, occurrence: int
    ) -> ScheduledFault | None:
        """Decide whether ``kind`` fires at (``index``, ``occurrence``)."""
        for entry in self.schedule:
            if (
                entry.index == index
                and entry.kind is kind
                and entry.occurrence == occurrence
            ):
                return entry
        if kind not in self.kinds or self.rate <= 0.0:
            return None
        rng = self._rng(kind, index, occurrence)
        if rng.random() >= self.rate:
            return None
        return ScheduledFault(
            index, kind, occurrence, magnitude=self._magnitude(kind, rng)
        )

    def _magnitude(self, kind: FaultKind, rng: random.Random) -> Fraction | None:
        if kind is FaultKind.METERING_DRIFT:
            return Fraction(rng.choice((-1, 1)))          # ± one least count
        if kind is FaultKind.DISPENSE_SHORTFALL:
            return Fraction(rng.randint(1, self.max_shortfall_counts))
        if kind is FaultKind.SENSOR_MISREAD:
            return rng.choice((-1, 1)) * self.misread_relative
        return None                                       # depletion / transport

    def describe(self) -> dict[str, object]:
        return {
            "seed": self.seed,
            "rate": self.rate,
            "kinds": sorted(k.value for k in self.kinds),
            "scheduled": len(self.schedule),
        }


class FaultInjector:
    """Runtime fault source for one execution.

    The machine calls :meth:`begin` before executing each instruction;
    the hooks then consult the plan against the current *(index,
    occurrence)* and record every fired fault into the machine's trace.
    One injector serves one execution — build a fresh one per run.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.trace: ExecutionTrace | None = None
        self.least: Fraction = Fraction(0)
        self.injected: dict[str, int] = {}
        self._attempts: dict[int, int] = {}
        self._index: int = -1
        self._occurrence: int = 0
        self._location: str = ""

    # ------------------------------------------------------------------
    def install(self, trace: ExecutionTrace, least_count: Fraction) -> None:
        """Attach to a machine's trace and least count (Machine does this)."""
        self.trace = trace
        self.least = least_count

    def begin(self, index: int, location: str = "") -> None:
        """Mark the start of one execution attempt of instruction ``index``."""
        self._attempts[index] = self._attempts.get(index, 0) + 1
        self._index = index
        self._occurrence = self._attempts[index]
        self._location = location

    # ------------------------------------------------------------------
    def _fire(self, kind: FaultKind) -> ScheduledFault | None:
        return self.plan.roll(kind, self._index, self._occurrence)

    def _record(
        self,
        kind: FaultKind,
        *,
        location: str = "",
        magnitude: Fraction | None = None,
        note: str = "",
    ) -> None:
        self.injected[kind.value] = self.injected.get(kind.value, 0) + 1
        if self.trace is not None:
            self.trace.record_fault(
                FaultEvent(
                    index=self._index,
                    kind=kind.value,
                    location=location or self._location,
                    magnitude=magnitude,
                    note=note,
                )
            )

    # -- hooks, in execution order --------------------------------------
    def transport_blocked(self, location: str) -> bool:
        """True when a transient transport/valve failure blocks this
        attempt (nothing has moved yet)."""
        fired = self._fire(FaultKind.TRANSPORT_FAILURE)
        if fired is None:
            return False
        self._record(
            FaultKind.TRANSPORT_FAILURE,
            location=location,
            note="transfer blocked; retry may succeed",
        )
        return True

    def depleted(self, location: str) -> bool:
        """True when the source at ``location`` should be found spilled.
        The caller discards its contents and lets the draw underflow."""
        return self._fire(FaultKind.RESERVOIR_DEPLETION) is not None

    def record_depletion(self, location: str, lost: Fraction) -> None:
        self._record(
            FaultKind.RESERVOIR_DEPLETION,
            location=location,
            magnitude=lost,
            note="contents lost to waste",
        )

    def metering_drift(
        self, volume: Fraction, *, headroom: Fraction | None = None
    ) -> Fraction:
        """Apply ± least-count drift to a metered volume.

        The result stays ≥ the least count, and ≤ ``headroom`` when given
        (a pump cannot overfill the destination it backpressures against).
        """
        fired = self._fire(FaultKind.METERING_DRIFT)
        if fired is None:
            return volume
        sign = fired.magnitude if fired.magnitude is not None else Fraction(1)
        drifted = volume + sign * self.least
        if drifted < self.least:
            drifted = self.least
        if headroom is not None and drifted > headroom:
            drifted = min(volume, headroom)
        if drifted == volume:
            return volume  # clamped into a no-op: nothing observable happened
        self._record(
            FaultKind.METERING_DRIFT,
            magnitude=drifted - volume,
            note="metered volume drifted",
        )
        return drifted

    def dispense_shortfall(self, volume: Fraction) -> Fraction:
        """Deliver short by 1..max_shortfall_counts least counts."""
        fired = self._fire(FaultKind.DISPENSE_SHORTFALL)
        if fired is None:
            return volume
        counts = fired.magnitude if fired.magnitude is not None else Fraction(1)
        delivered = volume - counts * self.least
        if delivered < self.least:
            delivered = self.least
        if delivered == volume:
            return volume
        self._record(
            FaultKind.DISPENSE_SHORTFALL,
            magnitude=volume - delivered,
            note="dispense fell short",
        )
        return delivered

    def misread(self, reading: Fraction, location: str) -> Fraction:
        """Perturb an optical reading by ±misread_relative."""
        fired = self._fire(FaultKind.SENSOR_MISREAD)
        if fired is None:
            return reading
        delta = (
            fired.magnitude
            if fired.magnitude is not None
            else self.plan.misread_relative
        )
        perturbed = reading * (1 + delta)
        self._record(
            FaultKind.SENSOR_MISREAD,
            location=location,
            magnitude=delta,
            note="reading perturbed (relative)",
        )
        return perturbed
