"""Machine-level exception hierarchy.

Distinct from :mod:`repro.core.errors`: those describe *planning* failures,
these describe *execution* failures.  The runtime maps :class:`EmptyError`
(a fluid ran out mid-assay) to Biostream-style regeneration.
"""

from __future__ import annotations

__all__ = [
    "MachineError",
    "ComponentError",
    "CapacityError",
    "EmptyError",
    "MeteringError",
    "UnknownOperandError",
]


class MachineError(Exception):
    """Base class for all PLoC execution errors."""


class ComponentError(MachineError):
    """A component was used in a way its type does not support."""


class CapacityError(MachineError):
    """A transfer would exceed the destination's capacity (overflow)."""

    def __init__(self, message, *, component=None, requested=None, capacity=None):
        super().__init__(message)
        self.component = component
        self.requested = requested
        self.capacity = capacity


class EmptyError(MachineError):
    """A draw exceeded the fluid available at the source.

    This is the run-time face of the paper's "running out of a fluid"; the
    executor catches it and triggers regeneration.
    """

    def __init__(self, message, *, component=None, requested=None, available=None):
        super().__init__(message)
        self.component = component
        self.requested = requested
        self.available = available


class MeteringError(MachineError):
    """A transfer fell below the pump's least count (underflow)."""

    def __init__(self, message, *, requested=None, least_count=None):
        super().__init__(message)
        self.requested = requested
        self.least_count = least_count


class UnknownOperandError(MachineError):
    """An instruction referenced a component id the machine does not have."""
