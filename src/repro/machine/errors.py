"""Machine-level exception hierarchy.

Distinct from :mod:`repro.core.errors`: those describe *planning* failures,
these describe *execution* failures.  The runtime maps :class:`EmptyError`
(a fluid ran out mid-assay) to Biostream-style regeneration.
"""

from __future__ import annotations

from fractions import Fraction

__all__ = [
    "MachineError",
    "ComponentError",
    "CapacityError",
    "EmptyError",
    "MeteringError",
    "TransportError",
    "RegenerationExhausted",
    "UnknownOperandError",
]


class MachineError(Exception):
    """Base class for all PLoC execution errors."""


class ComponentError(MachineError):
    """A component was used in a way its type does not support."""


class CapacityError(MachineError):
    """A transfer would exceed the destination's capacity (overflow)."""

    def __init__(
        self,
        message: str,
        *,
        component: str | None = None,
        requested: Fraction | None = None,
        capacity: Fraction | None = None,
    ) -> None:
        super().__init__(message)
        self.component = component
        self.requested = requested
        self.capacity = capacity


class EmptyError(MachineError):
    """A draw exceeded the fluid available at the source.

    This is the run-time face of the paper's "running out of a fluid"; the
    executor catches it and triggers regeneration.
    """

    def __init__(
        self,
        message: str,
        *,
        component: str | None = None,
        requested: Fraction | None = None,
        available: Fraction | None = None,
    ) -> None:
        super().__init__(message)
        self.component = component
        self.requested = requested
        self.available = available


class MeteringError(MachineError):
    """A transfer fell below the pump's least count (underflow)."""

    def __init__(
        self,
        message: str,
        *,
        requested: Fraction | None = None,
        least_count: Fraction | None = None,
    ) -> None:
        super().__init__(message)
        self.requested = requested
        self.least_count = least_count


class TransportError(MachineError):
    """A transient transport/valve failure blocked a transfer.

    Unlike :class:`EmptyError` no fluid state changed: the move never
    started.  Retrying the same instruction may succeed; the executor does
    exactly that, bounded by its retry policy.
    """

    def __init__(
        self, message: str, *, component: str | None = None
    ) -> None:
        super().__init__(message)
        self.component = component


class RegenerationExhausted(MachineError):
    """Regeneration could not restore a fluid and was abandoned.

    Raised by the executor when a backward slice cannot make progress: the
    producing source is permanently empty, the per-location attempt cap was
    hit, or the global extra-input-volume budget ran out.  ``location``
    names the failing node so diagnostics can point at the culprit.
    """

    def __init__(
        self,
        message: str,
        *,
        location: str | None = None,
        attempts: int = 0,
        reason: str = "",
    ) -> None:
        super().__init__(message)
        self.location = location
        self.attempts = attempts
        self.reason = reason


class UnknownOperandError(MachineError):
    """An instruction referenced a component id the machine does not have."""
