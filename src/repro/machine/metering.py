"""Metering pumps: the least-count quantisation of all fluid transport.

The paper (Section 2.1): "At each end of each channel is a microfluidic
pump that effects fluid transfer ... by peristalsis.  These pumps may be
used for accurate volume metering, which is required to handle variable
volumes.  Further, they impose a discrete, minimum volume transport unit,
or least count."

:class:`MeteringPump` is the single place where that constraint lives at
execution time: every transfer must be a positive integer multiple of the
least count.  Planned volumes that are not (because a plan was not rounded)
can either be rejected (``strict=True``) or quantised on the fly, mirroring
the rounding discussion of paper Section 4.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING

from ..core.limits import HardwareLimits, Number, as_fraction
from .errors import MeteringError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .faults import FaultInjector

__all__ = ["MeteringPump"]


@dataclass
class MeteringPump:
    """Quantised transfer engine shared by all channels of a machine.

    Attributes:
        limits: the hardware least count (and capacity, unused here).
        strict: reject non-multiple volumes instead of quantising them.
        total_pumped: lifetime volume moved (for trace statistics).
        transfer_count: number of transfers effected.
        injector: optional fault source applying ± least-count drift to
            every metered volume (see :mod:`repro.machine.faults`).
    """

    limits: HardwareLimits
    strict: bool = False
    total_pumped: Fraction = Fraction(0)
    transfer_count: int = 0
    injector: "FaultInjector" | None = None

    def meter(
        self, volume: Number, *, headroom: Fraction | None = None
    ) -> Fraction:
        """Validate/quantise a requested transfer volume.

        Returns the volume that will actually move — with an injected
        metering-drift fault applied when a :class:`FaultInjector` is
        installed and fires.  ``headroom`` caps upward drift at the free
        space of the destination (the pump backpressures).

        Raises:
            MeteringError: if the request is below the least count, or is
                not a least-count multiple while ``strict``.
        """
        requested = as_fraction(volume)
        least = self.limits.least_count
        if requested < least:
            raise MeteringError(
                f"transfer of {float(requested):.6g} nl is below the least "
                f"count of {float(least):.6g} nl",
                requested=requested,
                least_count=least,
            )
        steps = requested / least
        if steps.denominator != 1:
            if self.strict:
                raise MeteringError(
                    f"transfer of {float(requested):.6g} nl is not a "
                    f"multiple of the least count {float(least):.6g} nl",
                    requested=requested,
                    least_count=least,
                )
            requested = self.limits.quantize(requested)
        if self.injector is not None:
            requested = self.injector.metering_drift(
                requested, headroom=headroom
            )
        return requested

    def record(self, volume: Fraction) -> None:
        self.total_pumped += volume
        self.transfer_count += 1
