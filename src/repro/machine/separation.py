"""Separation models: how a separator splits a mixture.

The paper's separations (affinity over a lectin matrix, liquid
chromatography over C_18, electrophoresis, size) all share the property
volume management cares about: the *effluent volume is not statically
known*.  We model the chemistry with pluggable strategies:

* :class:`SpeciesFilter` — retain the listed species at a recovery rate
  (affinity/LC: the matrix binds specific molecules); everything else goes
  to waste.
* :class:`FractionalYield` — retain a fixed fraction of the whole input
  (a simple stand-in when species-level detail is irrelevant).

Both return exact mixtures, so the simulator can report the measured
effluent volume that the run-time assigner needs (paper Section 3.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Protocol
from collections.abc import Iterable

from ..core.limits import Number, as_fraction
from .fluids import Mixture

__all__ = ["SeparationModel", "FractionalYield", "SpeciesFilter"]


class SeparationModel(Protocol):
    """Strategy: split an input mixture into (effluent, waste)."""

    def separate(self, mixture: Mixture) -> tuple[Mixture, Mixture]:
        """Return the effluent and waste mixtures; volumes must sum to the
        input volume."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class FractionalYield:
    """Retain a fixed volume fraction of the input, composition unchanged."""

    fraction: Fraction

    def __post_init__(self) -> None:
        value = as_fraction(self.fraction)
        if not (0 <= value <= 1):
            raise ValueError(f"yield fraction must be in [0, 1], got {value}")
        object.__setattr__(self, "fraction", value)

    def separate(self, mixture: Mixture) -> tuple[Mixture, Mixture]:
        working = Mixture(dict(mixture.components))
        effluent = working.take(working.volume * self.fraction)
        return effluent, working


@dataclass(frozen=True)
class SpeciesFilter:
    """Retain specific species at a recovery rate; the rest is waste.

    ``recovery`` models imperfect binding: 0.9 keeps 90% of each retained
    species in the effluent.
    """

    keep: frozenset[str]
    recovery: Fraction = Fraction(1)

    def __init__(self, keep: Iterable[str], recovery: Number = 1) -> None:
        object.__setattr__(self, "keep", frozenset(keep))
        rate = as_fraction(recovery)
        if not (0 <= rate <= 1):
            raise ValueError(f"recovery must be in [0, 1], got {rate}")
        object.__setattr__(self, "recovery", rate)

    def separate(self, mixture: Mixture) -> tuple[Mixture, Mixture]:
        effluent = {}
        waste = {}
        for species, amount in mixture.components.items():
            if species in self.keep:
                kept = amount * self.recovery
                effluent[species] = kept
                if amount - kept > 0:
                    waste[species] = amount - kept
            else:
                waste[species] = amount
        return Mixture(effluent), Mixture(waste)
