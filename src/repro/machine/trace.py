"""Execution traces: what the wet datapath did, step by step.

Each executed instruction appends a :class:`TraceEvent` carrying the moved
volumes and any measurement produced.  Benchmarks use traces to count wet
instructions (the costly resource: "fluidic instructions take seconds to
execute"), and tests use them to assert conservation of volume.

Fault injection (:mod:`repro.machine.faults`) and the hardened executor
weave two further record kinds into the same timeline:

* :class:`FaultEvent` — an injected hardware misbehaviour (metering drift,
  dispense shortfall, reservoir depletion, sensor misread, transient
  transport failure);
* :class:`RecoveryEvent` — what the runtime did about it (an instruction
  retry, or a Biostream-style regeneration of a backward slice).

Both carry ``seq`` (the position in the instruction event stream at the
moment they happened) and ``clock`` (the simulated wet-path time), so the
full interleaving is reconstructible.  The whole trace round-trips through
:meth:`ExecutionTrace.to_dict` / :meth:`ExecutionTrace.from_dict` with
exact :class:`~fractions.Fraction` values.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Any

__all__ = ["TraceEvent", "FaultEvent", "RecoveryEvent", "ExecutionTrace"]

TRACE_SCHEMA_VERSION = 1


def _frac(value: Fraction) -> str:
    return f"{value.numerator}/{value.denominator}"


def _unfrac(text: str) -> Fraction:
    numerator, __, denominator = text.partition("/")
    return Fraction(int(numerator), int(denominator or "1"))


def _opt_frac(value: Fraction | None) -> str | None:
    return None if value is None else _frac(value)


def _opt_unfrac(text: str | None) -> Fraction | None:
    return None if text is None else _unfrac(text)


@dataclass(frozen=True)
class TraceEvent:
    """One executed instruction."""

    index: int              # instruction index in the program (or -1 ad hoc)
    opcode: str
    text: str               # rendered instruction
    volume: Fraction | None = None   # volume moved / produced
    measurement: Fraction | None = None  # sense reading or separation yield
    note: str = ""
    #: simulated wet-path wall time this instruction took (0 for dry ops —
    #: electronic control is "orders of magnitude faster", Section 2.1).
    seconds: Fraction = Fraction(0)
    #: cumulative simulated time at completion of this instruction.
    clock: Fraction = Fraction(0)

    def __str__(self) -> str:
        extra = ""
        if self.volume is not None:
            extra += f"  [{float(self.volume):.4g} nl]"
        if self.measurement is not None:
            extra += f"  => {float(self.measurement):.6g}"
        if self.note:
            extra += f"  ({self.note})"
        return f"{self.index:4d}: {self.text}{extra}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "opcode": self.opcode,
            "text": self.text,
            "volume": _opt_frac(self.volume),
            "measurement": _opt_frac(self.measurement),
            "note": self.note,
            "seconds": _frac(self.seconds),
            "clock": _frac(self.clock),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceEvent":
        return cls(
            index=data["index"],
            opcode=data["opcode"],
            text=data["text"],
            volume=_opt_unfrac(data.get("volume")),
            measurement=_opt_unfrac(data.get("measurement")),
            note=data.get("note", ""),
            seconds=_unfrac(data.get("seconds", "0/1")),
            clock=_unfrac(data.get("clock", "0/1")),
        )


@dataclass(frozen=True)
class FaultEvent:
    """One injected hardware fault."""

    index: int              # instruction index the fault hit
    kind: str               # FaultKind value, e.g. "reservoir-depletion"
    location: str = ""      # component / operand it struck
    #: kind-specific size: volume lost (depletion), delta applied (drift /
    #: shortfall, in nl), relative misread delta; None for transport.
    magnitude: Fraction | None = None
    note: str = ""
    seq: int = 0            # len(trace.events) when the fault fired
    clock: Fraction = Fraction(0)

    def __str__(self) -> str:
        extra = f" at {self.location}" if self.location else ""
        if self.magnitude is not None:
            extra += f" [{float(self.magnitude):.4g}]"
        if self.note:
            extra += f" ({self.note})"
        return f"fault@{self.index}: {self.kind}{extra}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "kind": self.kind,
            "location": self.location,
            "magnitude": _opt_frac(self.magnitude),
            "note": self.note,
            "seq": self.seq,
            "clock": _frac(self.clock),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultEvent":
        return cls(
            index=data["index"],
            kind=data["kind"],
            location=data.get("location", ""),
            magnitude=_opt_unfrac(data.get("magnitude")),
            note=data.get("note", ""),
            seq=data.get("seq", 0),
            clock=_unfrac(data.get("clock", "0/1")),
        )


@dataclass(frozen=True)
class RecoveryEvent:
    """One recovery action the runtime took."""

    index: int              # instruction index being recovered
    action: str             # "retry" | "regeneration"
    location: str = ""      # the exhausted / blocked location
    attempts: int = 1       # how many recoveries this location/index has had
    #: extra input volume drawn while re-executing the backward slice
    #: (regeneration only) — the quantity the budget caps.
    extra_volume: Fraction | None = None
    note: str = ""
    seq: int = 0
    clock: Fraction = Fraction(0)

    def __str__(self) -> str:
        extra = f" of {self.location}" if self.location else ""
        if self.extra_volume is not None:
            extra += f" [+{float(self.extra_volume):.4g} nl]"
        return f"recovery@{self.index}: {self.action}{extra} (attempt {self.attempts})"

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "action": self.action,
            "location": self.location,
            "attempts": self.attempts,
            "extra_volume": _opt_frac(self.extra_volume),
            "note": self.note,
            "seq": self.seq,
            "clock": _frac(self.clock),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RecoveryEvent":
        return cls(
            index=data["index"],
            action=data["action"],
            location=data.get("location", ""),
            attempts=data.get("attempts", 1),
            extra_volume=_opt_unfrac(data.get("extra_volume")),
            note=data.get("note", ""),
            seq=data.get("seq", 0),
            clock=_unfrac(data.get("clock", "0/1")),
        )


@dataclass
class ExecutionTrace:
    """Accumulated events plus summary statistics."""

    events: list[TraceEvent] = field(default_factory=list)
    faults: list[FaultEvent] = field(default_factory=list)
    recoveries: list[RecoveryEvent] = field(default_factory=list)
    wet_instruction_count: int = 0
    dry_instruction_count: int = 0
    regeneration_count: int = 0
    total_fluid_moved: Fraction = Fraction(0)
    #: accumulated simulated fluid-path time.
    total_seconds: Fraction = Fraction(0)

    def record(self, event: TraceEvent, *, wet: bool) -> None:
        self.total_seconds += event.seconds
        self.events.append(replace(event, clock=self.total_seconds))
        if wet:
            self.wet_instruction_count += 1
            if event.volume is not None:
                self.total_fluid_moved += event.volume
        else:
            self.dry_instruction_count += 1

    def record_fault(self, event: FaultEvent) -> FaultEvent:
        """Stamp a fault with the current timeline position and keep it."""
        stamped = replace(
            event, seq=len(self.events), clock=self.total_seconds
        )
        self.faults.append(stamped)
        return stamped

    def record_recovery(self, event: RecoveryEvent) -> RecoveryEvent:
        """Stamp a recovery with the current timeline position and keep it."""
        stamped = replace(
            event, seq=len(self.events), clock=self.total_seconds
        )
        self.recoveries.append(stamped)
        return stamped

    def measurements(self) -> dict[int, Fraction]:
        return {
            e.index: e.measurement
            for e in self.events
            if e.measurement is not None
        }

    def render(self, limit: int | None = None) -> str:
        events = self.events if limit is None else self.events[:limit]
        lines = [str(e) for e in events]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more)")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """Exact, JSON-able snapshot of the whole trace."""
        return {
            "version": TRACE_SCHEMA_VERSION,
            "events": [e.to_dict() for e in self.events],
            "faults": [e.to_dict() for e in self.faults],
            "recoveries": [e.to_dict() for e in self.recoveries],
            "wet_instruction_count": self.wet_instruction_count,
            "dry_instruction_count": self.dry_instruction_count,
            "regeneration_count": self.regeneration_count,
            "total_fluid_moved": _frac(self.total_fluid_moved),
            "total_seconds": _frac(self.total_seconds),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ExecutionTrace":
        return cls(
            events=[TraceEvent.from_dict(e) for e in data.get("events", ())],
            faults=[FaultEvent.from_dict(e) for e in data.get("faults", ())],
            recoveries=[
                RecoveryEvent.from_dict(e)
                for e in data.get("recoveries", ())
            ],
            wet_instruction_count=data.get("wet_instruction_count", 0),
            dry_instruction_count=data.get("dry_instruction_count", 0),
            regeneration_count=data.get("regeneration_count", 0),
            total_fluid_moved=_unfrac(data.get("total_fluid_moved", "0/1")),
            total_seconds=_unfrac(data.get("total_seconds", "0/1")),
        )

    def __len__(self) -> int:
        return len(self.events)
