"""Execution traces: what the wet datapath did, step by step.

Each executed instruction appends a :class:`TraceEvent` carrying the moved
volumes and any measurement produced.  Benchmarks use traces to count wet
instructions (the costly resource: "fluidic instructions take seconds to
execute"), and tests use them to assert conservation of volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional

__all__ = ["TraceEvent", "ExecutionTrace"]


@dataclass(frozen=True)
class TraceEvent:
    """One executed instruction."""

    index: int              # instruction index in the program (or -1 ad hoc)
    opcode: str
    text: str               # rendered instruction
    volume: Optional[Fraction] = None   # volume moved / produced
    measurement: Optional[Fraction] = None  # sense reading or separation yield
    note: str = ""
    #: simulated wet-path wall time this instruction took (0 for dry ops —
    #: electronic control is "orders of magnitude faster", Section 2.1).
    seconds: Fraction = Fraction(0)

    def __str__(self) -> str:
        extra = ""
        if self.volume is not None:
            extra += f"  [{float(self.volume):.4g} nl]"
        if self.measurement is not None:
            extra += f"  => {float(self.measurement):.6g}"
        if self.note:
            extra += f"  ({self.note})"
        return f"{self.index:4d}: {self.text}{extra}"


@dataclass
class ExecutionTrace:
    """Accumulated events plus summary statistics."""

    events: List[TraceEvent] = field(default_factory=list)
    wet_instruction_count: int = 0
    dry_instruction_count: int = 0
    regeneration_count: int = 0
    total_fluid_moved: Fraction = Fraction(0)
    #: accumulated simulated fluid-path time.
    total_seconds: Fraction = Fraction(0)

    def record(self, event: TraceEvent, *, wet: bool) -> None:
        self.events.append(event)
        self.total_seconds += event.seconds
        if wet:
            self.wet_instruction_count += 1
            if event.volume is not None:
                self.total_fluid_moved += event.volume
        else:
            self.dry_instruction_count += 1

    def measurements(self) -> Dict[int, Fraction]:
        return {
            e.index: e.measurement
            for e in self.events
            if e.measurement is not None
        }

    def render(self, limit: Optional[int] = None) -> str:
        events = self.events if limit is None else self.events[:limit]
        lines = [str(e) for e in events]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more)")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)
