"""An executable model of the AquaCore PLoC (paper Section 2.1).

The machine is a discrete-event *fluid ledger*, not a physics simulator:
mixtures are composition vectors over named input fluids, metering pumps
quantise every transfer to the least count, and each reservoir/functional
unit enforces its capacity.  The interpreter executes AquaCore Instruction
Set (AIS) programs against this state, producing a trace and raising typed
errors on underflow/overflow — which is exactly the level of fidelity the
paper's evaluation needs (it never runs fluids either; it reasons about
volumes).
"""

from .components import (
    Container,
    Heater,
    Mixer,
    Reservoir,
    Sensor,
    Separator,
)
from .errors import (
    CapacityError,
    ComponentError,
    EmptyError,
    MachineError,
    MeteringError,
    RegenerationExhausted,
    TransportError,
)
from .faults import (
    ALL_KINDS,
    LOSS_KINDS,
    PERTURBING_KINDS,
    FaultInjector,
    FaultKind,
    FaultPlan,
    ScheduledFault,
)
from .fluids import Mixture
from .interpreter import Machine
from .metering import MeteringPump
from .separation import FractionalYield, SeparationModel, SpeciesFilter
from .spec import AQUACORE_SPEC, AQUACORE_XL_SPEC, FunctionalUnitSpec, MachineSpec
from .topology import ChannelTopology, bus_topology, ring_topology
from .trace import ExecutionTrace, FaultEvent, RecoveryEvent, TraceEvent

__all__ = [
    "MachineSpec",
    "FunctionalUnitSpec",
    "AQUACORE_SPEC",
    "AQUACORE_XL_SPEC",
    "Mixture",
    "MeteringPump",
    "Container",
    "Reservoir",
    "Mixer",
    "Heater",
    "Separator",
    "Sensor",
    "SeparationModel",
    "FractionalYield",
    "SpeciesFilter",
    "Machine",
    "ChannelTopology",
    "bus_topology",
    "ring_topology",
    "ExecutionTrace",
    "TraceEvent",
    "FaultEvent",
    "RecoveryEvent",
    "FaultKind",
    "FaultPlan",
    "FaultInjector",
    "ScheduledFault",
    "ALL_KINDS",
    "LOSS_KINDS",
    "PERTURBING_KINDS",
    "MachineError",
    "ComponentError",
    "CapacityError",
    "EmptyError",
    "MeteringError",
    "TransportError",
    "RegenerationExhausted",
]
