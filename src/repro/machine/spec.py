"""Machine description: the dry half of AquaCore's configuration.

A :class:`MachineSpec` lists the wet components (reservoirs, functional
units, ports) with their capacities, the global hardware limits, and the
sensing coefficients the optical-density model uses.  ``AQUACORE_SPEC``
mirrors the organisation of paper Figure 1 and the unit names used in the
compiled code of Figures 9-11 (``mixer1``, ``heater1``, ``separator1``,
``separator2``, ``sensor2``, reservoirs ``s1..sN``, input ports
``ip1..ipN``, output ports ``op1..opN``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from collections.abc import Mapping

from ..core.limits import PAPER_LIMITS, HardwareLimits, Number, as_fraction

__all__ = [
    "FunctionalUnitSpec",
    "MachineSpec",
    "AQUACORE_SPEC",
    "AQUACORE_XL_SPEC",
]

#: Functional unit kinds the interpreter understands.
FU_KINDS = ("mixer", "heater", "separator", "sensor")


@dataclass(frozen=True)
class FunctionalUnitSpec:
    """One functional unit: kind, capacity, optional minimum load.

    ``min_volume`` feeds the extra class-1 constraints of the LP model
    (e.g. a separator that cannot operate below some loadable volume).
    """

    name: str
    kind: str
    capacity: Fraction | None = None  # None: machine default
    min_volume: Fraction | None = None
    #: for separators: which AIS flavours this unit implements (CE/SIZE/AF/LC)
    modes: tuple[str, ...] = ()
    #: for sensors: which AIS flavours (OD/FL)
    senses: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FU_KINDS:
            raise ValueError(f"unknown functional unit kind {self.kind!r}")
        if self.capacity is not None:
            object.__setattr__(self, "capacity", as_fraction(self.capacity))
        if self.min_volume is not None:
            object.__setattr__(self, "min_volume", as_fraction(self.min_volume))


@dataclass(frozen=True)
class MachineSpec:
    """Complete static description of one PLoC configuration."""

    name: str
    limits: HardwareLimits
    n_reservoirs: int
    n_input_ports: int
    n_output_ports: int
    functional_units: tuple[FunctionalUnitSpec, ...]
    #: species -> extinction coefficient for the optical-density model;
    #: unlisted species read as 0 (optically transparent).
    extinction_coefficients: Mapping[str, Fraction] = field(
        default_factory=dict
    )
    #: simulated wall time of one fluid transfer (move/input/output).  The
    #: paper: "fluidic instructions take seconds to execute"; peristaltic
    #: transfers are the cheapest wet operation.
    transfer_seconds: Fraction = Fraction(1)
    #: simulated wall time of one sensor read.
    sense_seconds: Fraction = Fraction(1)

    def __post_init__(self) -> None:
        if self.n_reservoirs < 1:
            raise ValueError("a machine needs at least one reservoir")
        names = [unit.name for unit in self.functional_units]
        if len(names) != len(set(names)):
            raise ValueError("duplicate functional unit names")

    # ------------------------------------------------------------------
    def reservoir_names(self) -> tuple[str, ...]:
        return tuple(f"s{i}" for i in range(1, self.n_reservoirs + 1))

    def input_port_names(self) -> tuple[str, ...]:
        return tuple(f"ip{i}" for i in range(1, self.n_input_ports + 1))

    def output_port_names(self) -> tuple[str, ...]:
        return tuple(f"op{i}" for i in range(1, self.n_output_ports + 1))

    def unit(self, name: str) -> FunctionalUnitSpec:
        for candidate in self.functional_units:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no functional unit {name!r} in machine {self.name!r}")

    def units_of_kind(self, kind: str) -> tuple[FunctionalUnitSpec, ...]:
        return tuple(u for u in self.functional_units if u.kind == kind)

    def separator_for_mode(self, mode: str) -> FunctionalUnitSpec:
        """The first separator implementing an AIS mode (CE/SIZE/AF/LC)."""
        for unit in self.units_of_kind("separator"):
            if mode in unit.modes:
                return unit
        raise KeyError(f"no separator supports mode {mode!r}")

    def sensor_for_mode(self, mode: str) -> FunctionalUnitSpec:
        for unit in self.units_of_kind("sensor"):
            if mode in unit.senses:
                return unit
        raise KeyError(f"no sensor supports mode {mode!r}")

    def capacity_of(self, unit: FunctionalUnitSpec) -> Fraction:
        return unit.capacity or self.limits.max_capacity

    # ------------------------------------------------------------------
    def component_kind(self, name: str) -> str | None:
        """Classify an operand base name.

        Returns ``"reservoir"``, ``"input-port"``, ``"output-port"``, a
        functional-unit kind (``"mixer"``/``"heater"``/``"separator"``/
        ``"sensor"``), or ``None`` for a name that addresses nothing on
        this machine.
        """
        if name in self.reservoir_names():
            return "reservoir"
        if name in self.input_port_names():
            return "input-port"
        if name in self.output_port_names():
            return "output-port"
        for unit in self.functional_units:
            if unit.name == name:
                return unit.kind
        return None

    def location_capacity(self, name: str) -> Fraction | None:
        """Capacity of a fluid-holding location (sub-ports share their
        unit's capacity); ``None`` for ports and unknown names."""
        kind = self.component_kind(name)
        if kind == "reservoir":
            return self.limits.max_capacity
        if kind in FU_KINDS:
            return self.capacity_of(self.unit(name))
        return None

    def with_limits(self, limits: HardwareLimits) -> "MachineSpec":
        """A copy of the spec with different hardware limits."""
        return MachineSpec(
            name=self.name,
            limits=limits,
            n_reservoirs=self.n_reservoirs,
            n_input_ports=self.n_input_ports,
            n_output_ports=self.n_output_ports,
            functional_units=self.functional_units,
            extinction_coefficients=dict(self.extinction_coefficients),
        )


_DEFAULT_UNITS = (
    FunctionalUnitSpec("mixer1", "mixer"),
    FunctionalUnitSpec("mixer2", "mixer"),
    FunctionalUnitSpec("heater1", "heater"),
    FunctionalUnitSpec("separator1", "separator", modes=("AF", "SIZE")),
    FunctionalUnitSpec("separator2", "separator", modes=("LC", "CE")),
    FunctionalUnitSpec("sensor1", "sensor", senses=("FL",)),
    FunctionalUnitSpec("sensor2", "sensor", senses=("OD",)),
)

#: The default machine used throughout the evaluation: 100 nl / 100 pl
#: limits and the functional units named by the compiled code in paper
#: Figures 9-11.  The paper's enzyme assay keeps 12 dilutions live at once
#: in indexed reservoir banks (``s3(i)``, ``s5(j)``, ``s7(k)`` in Figure
#: 11(b)); we model the banks as a flat space of 24 reservoirs.
AQUACORE_SPEC = MachineSpec(
    name="aquacore",
    limits=PAPER_LIMITS,
    n_reservoirs=24,
    n_input_ports=16,
    n_output_ports=4,
    functional_units=_DEFAULT_UNITS,
)

#: A larger configuration for the EnzymeN scaling study (Table 2's
#: Enzyme10 keeps 30 dilutions live at once).
AQUACORE_XL_SPEC = MachineSpec(
    name="aquacore-xl",
    limits=PAPER_LIMITS,
    n_reservoirs=64,
    n_input_ports=48,
    n_output_ports=4,
    functional_units=_DEFAULT_UNITS,
)
