"""Channel topology: the physical interconnect of Figure 1.

The paper (Section 2.1): "These components are connected by a set of
channels ... At each end of each channel is a microfluidic pump that
effects fluid transfer from one component to another by peristalsis."

A :class:`ChannelTopology` is an undirected graph over *locations*
(reservoirs, functional units, ports; separator sub-wells route as their
unit).  It answers two questions the flat machine model abstracts away:

* **reachability** — is a `move src -> dst` physically routable?
* **distance** — how many channel segments does the transfer traverse?
  (each hop costs one pump actuation, so transfer time scales with it)

Two standard builders are provided: :func:`bus_topology`, the
AquaCore-style shared backbone where every location is one hop from the
bus (all transfers 2 hops), and :func:`ring_topology`, a minimal-valve
layout where distance varies with placement — useful for studying how
layout changes wet time.

Pass a topology to :class:`~repro.machine.interpreter.Machine` to make
moves route-aware; without one, the machine keeps the paper's abstract
constant-time transfers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from collections.abc import Iterable

from .errors import ComponentError
from .spec import MachineSpec

__all__ = ["ChannelTopology", "bus_topology", "ring_topology"]

Segment = tuple[str, str]


def _canonical(location: str) -> str:
    """Sub-wells (``separator1.matrix``) route as their unit."""
    return location.split(".")[0]


@dataclass
class ChannelTopology:
    """Undirected channel graph with BFS routing and a route cache."""

    name: str
    adjacency: dict[str, set[str]] = field(default_factory=dict)
    _route_cache: dict[tuple[str, str], tuple[str, ...] | None] = field(
        default_factory=dict, repr=False
    )
    #: memoized pairwise contention verdicts — the race detector asks the
    #: same ``conflicts`` question for every may-happen-in-parallel
    #: transfer pair, so the matrix is a hot path.  Invalidated whenever a
    #: channel is added.
    _conflict_cache: dict[
        tuple[tuple[str, str], tuple[str, str], bool], bool
    ] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    def add_location(self, location: str) -> None:
        self.adjacency.setdefault(location, set())

    def add_channel(self, a: str, b: str) -> None:
        if a == b:
            raise ComponentError(f"channel endpoints must differ ({a!r})")
        self.add_location(a)
        self.add_location(b)
        self.adjacency[a].add(b)
        self.adjacency[b].add(a)
        self._route_cache.clear()
        self._conflict_cache.clear()

    def locations(self) -> list[str]:
        return sorted(self.adjacency)

    @property
    def channel_count(self) -> int:
        return sum(len(peers) for peers in self.adjacency.values()) // 2

    # ------------------------------------------------------------------
    def route(self, src: str, dst: str) -> tuple[str, ...]:
        """Shortest location path ``src .. dst`` (inclusive).

        Raises :class:`ComponentError` when no channel path exists —
        the compile-time form of a physically impossible move.
        """
        a, b = _canonical(src), _canonical(dst)
        if a == b:
            return (a,)
        key = (a, b)
        if key not in self._route_cache:
            self._route_cache[key] = self._bfs(a, b)
        path = self._route_cache[key]
        if path is None:
            raise ComponentError(
                f"no channel route from {src!r} to {dst!r} on topology "
                f"{self.name!r}"
            )
        return path

    def hops(self, src: str, dst: str) -> int:
        """Number of channel segments a transfer traverses."""
        return len(self.route(src, dst)) - 1

    def is_routable(self, src: str, dst: str) -> bool:
        try:
            self.route(src, dst)
            return True
        except ComponentError:
            return False

    def _bfs(self, a: str, b: str) -> tuple[str, ...] | None:
        if a not in self.adjacency or b not in self.adjacency:
            return None
        previous: dict[str, str] = {}
        queue = deque([a])
        seen = {a}
        while queue:
            current = queue.popleft()
            if current == b:
                path = [b]
                while path[-1] != a:
                    path.append(previous[path[-1]])
                return tuple(reversed(path))
            for peer in sorted(self.adjacency[current]):
                if peer not in seen:
                    seen.add(peer)
                    previous[peer] = current
                    queue.append(peer)
        return None

    # ------------------------------------------------------------------
    def segments_of(self, src: str, dst: str) -> list[Segment]:
        """The channel segments of a route, as sorted endpoint pairs —
        the unit of conflict for any future parallel scheduler."""
        path = self.route(src, dst)
        return [
            tuple(sorted((path[i], path[i + 1])))  # type: ignore[misc]
            for i in range(len(path) - 1)
        ]

    def shared_locations(
        self, first: tuple[str, str], second: tuple[str, str]
    ) -> set[str]:
        """Locations two transfers' routes have in common — the concrete
        contention set behind :meth:`conflicts`."""
        return set(self.route(*first)) & set(self.route(*second))

    def conflicts(
        self,
        first: tuple[str, str],
        second: tuple[str, str],
        *,
        allow_shared_endpoint: bool = False,
    ) -> bool:
        """Would two simultaneous transfers contend for hardware?

        Transfers conflict when their routes share *any* location —
        a channel junction, a pump, or an endpoint can serve one stream at
        a time.  (On a bus topology every pair conflicts through the
        backbone, which is why AquaCore's wet path is serial.)

        ``allow_shared_endpoint`` relaxes the one case where sharing is
        deliberate: a location that is an endpoint of *both* transfers —
        the hand-off point of a sequential pair like ``A -> B`` then
        ``B -> C`` — is excluded from the contention set.  Interior route
        locations still conflict even when excluded endpoints touch them.

        Verdicts are memoized per (pair, pair, flag) on the topology
        object; ``add_channel`` invalidates the memo.  Unroutable
        endpoint pairs raise without being cached (the route cache
        already makes the repeat raise cheap).
        """
        key = self._conflict_key(first, second, allow_shared_endpoint)
        cached = self._conflict_cache.get(key)
        if cached is not None:
            return cached
        shared = self.shared_locations(first, second)
        if allow_shared_endpoint and shared:
            ends_first = {_canonical(first[0]), _canonical(first[1])}
            ends_second = {_canonical(second[0]), _canonical(second[1])}
            shared = shared - (ends_first & ends_second)
        verdict = bool(shared)
        self._conflict_cache[key] = verdict
        return verdict

    @staticmethod
    def _conflict_key(
        first: tuple[str, str],
        second: tuple[str, str],
        allow_shared_endpoint: bool,
    ) -> tuple[tuple[str, str], tuple[str, str], bool]:
        """Canonical, symmetric memo key: sub-wells route as their unit
        and ``conflicts(a, b)`` equals ``conflicts(b, a)``."""
        a = (_canonical(first[0]), _canonical(first[1]))
        b = (_canonical(second[0]), _canonical(second[1]))
        if b < a:
            a, b = b, a
        return (a, b, allow_shared_endpoint)


def _all_locations(spec: MachineSpec) -> list[str]:
    locations = list(spec.reservoir_names())
    locations += [unit.name for unit in spec.functional_units]
    locations += list(spec.input_port_names())
    locations += list(spec.output_port_names())
    return locations


def bus_topology(spec: MachineSpec) -> ChannelTopology:
    """The AquaCore-style shared backbone: every location is one channel
    away from the central bus, so every transfer crosses exactly 2 hops."""
    topology = ChannelTopology(name=f"{spec.name}-bus")
    bus = "__bus__"
    topology.add_location(bus)
    for location in _all_locations(spec):
        topology.add_channel(location, bus)
    return topology


def ring_topology(spec: MachineSpec) -> ChannelTopology:
    """A minimal ring: locations connected in a cycle.  Distances vary with
    placement — the layout-sensitivity counterpoint to the bus."""
    topology = ChannelTopology(name=f"{spec.name}-ring")
    locations = _all_locations(spec)
    for a, b in zip(locations, locations[1:]):
        topology.add_channel(a, b)
    if len(locations) > 2:
        topology.add_channel(locations[-1], locations[0])
    return topology
