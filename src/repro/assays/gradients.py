"""Dilution-gradient workload family (the waste objective's home turf).

Concentration gradients are the canonical microfluidic workload where the
paper's maximise-output objective and a minimise-waste objective diverge:
a gradient needs many dilutions of one stock, the steep end of the ladder
forces extreme mix ratios (and therefore cascading, paper Section 3.4.1),
and every cascade stage discards statically-known excess.  The
``--objective waste`` planner front-loads the stage splits and shares
identical stages between neighbouring gradient points, so these
generators are the workload behind ``benchmarks/bench_waste.py`` and
``tools/waste_corpus.py``.

All generators are deterministic (no seeds, no randomness): the same
arguments always produce the identical DAG, which the corpus tools rely
on for byte-identity checks.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.dag import AssayDAG

__all__ = [
    "linear_gradient",
    "dilution_gradient",
    "target_concentration_tree",
    "gradient_corpus",
]


def linear_gradient(n_points: int, *, name: str | None = None) -> AssayDAG:
    """An ``n``-point linear concentration gradient of one stock.

    Point ``i`` holds concentration ``i / (n + 1)``: a single mix of
    ``i`` parts stock to ``n + 1 - i`` parts diluent.  No ratio is
    extreme, so this family exercises the objective-aware solvers without
    ever entering the cascading transform.
    """
    if n_points < 2:
        raise ValueError("a gradient needs at least two points")
    dag = AssayDAG(name or f"linear_gradient_{n_points}")
    dag.add_input("stock")
    dag.add_input("diluent")
    for i in range(1, n_points + 1):
        dag.add_mix(
            f"point{i}", {"stock": i, "diluent": n_points + 1 - i}
        )
    dag.validate()
    return dag


def dilution_gradient(
    n_points: int,
    max_factor: int = 100_000,
    *,
    replicates: int = 1,
    name: str | None = None,
) -> AssayDAG:
    """A logarithmic dilution gradient reaching down to ``1:max_factor-1``.

    Point ``i`` dilutes the stock by factor ``round(max_factor**(i/n))``
    (duplicate factors collapse), so the steep end of the ladder exceeds
    any realistic dynamic range and forces cascaded mixing.  With
    ``replicates > 1`` every point is brewed in ``r`` identical wells —
    the shape where the waste objective's stage sharing pays off, since
    each replica's cascade wants the exact same intermediate dilutions.
    """
    if n_points < 1:
        raise ValueError("a gradient needs at least one point")
    if max_factor < 2:
        raise ValueError("max_factor must be >= 2")
    if replicates < 1:
        raise ValueError("replicates must be >= 1")
    factors: list[int] = []
    for i in range(1, n_points + 1):
        factor = round(max_factor ** (i / n_points))
        if factor >= 2 and factor not in factors:
            factors.append(factor)
    dag = AssayDAG(
        name or f"dilution_gradient_{n_points}x{max_factor}"
    )
    dag.add_input("stock")
    dag.add_input("diluent")
    for index, factor in enumerate(factors, start=1):
        for well in range(1, replicates + 1):
            suffix = f"_w{well}" if replicates > 1 else ""
            dag.add_mix(
                f"point{index}{suffix}",
                {"stock": 1, "diluent": factor - 1},
            )
    dag.validate()
    return dag


def target_concentration_tree(
    target: Fraction | str | float,
    *,
    bits: int = 8,
    name: str | None = None,
) -> AssayDAG:
    """Hit an arbitrary stock concentration with a chain of 1:1 mixes.

    Writes the target as ``0.b1 b2 ... bd`` in binary (``d = bits``) and
    builds the classic bit-sequence mixing chain from the least
    significant bit up: start from pure diluent and repeatedly 1:1-mix
    the running fluid with stock (bit set) or diluent (bit clear).  After
    the chain the running concentration is exactly
    ``round(target * 2**bits) / 2**bits``.

    Every mix is 1:1 so nothing ever cascades; the family stresses deep
    serial reuse of two inputs instead of ratio extremity.
    """
    value = Fraction(target)
    if not 0 < value < 1:
        raise ValueError(f"target concentration must be in (0, 1), got {value}")
    if bits < 1:
        raise ValueError("bits must be >= 1")
    scaled = round(value * 2**bits)
    scaled = min(max(scaled, 1), 2**bits - 1)
    bit_string = format(scaled, f"0{bits}b")
    dag = AssayDAG(name or f"target_{scaled}_of_{2 ** bits}")
    dag.add_input("stock")
    dag.add_input("diluent")
    current = "diluent"
    for step, bit in enumerate(reversed(bit_string), start=1):
        partner = "stock" if bit == "1" else "diluent"
        if partner == current:
            # a 1:1 self-mix is a no-op; fold it into the next stage
            continue
        node_id = f"step{step}"
        dag.add_mix(node_id, {partner: 1, current: 1})
        current = node_id
    dag.validate()
    return dag


def gradient_corpus() -> list[AssayDAG]:
    """The fixed gradient workload set used by benchmarks and CI tools."""
    return [
        linear_gradient(6),
        linear_gradient(12, name="linear_gradient_wide"),
        dilution_gradient(4, 10_000),
        dilution_gradient(6, 100_000, name="dilution_gradient_deep"),
        dilution_gradient(
            3, 50_000, replicates=3, name="dilution_gradient_wells"
        ),
        target_concentration_tree(Fraction(5, 16), bits=4),
        target_concentration_tree(Fraction(173, 256), bits=8),
    ]
