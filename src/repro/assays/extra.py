"""Additional realistic assays beyond the paper's three benchmarks.

These exercise the same machinery on other classic lab workflows and give
the examples/tests more varied shapes:

* :data:`ELISA_SOURCE` — a sandwich ELISA-style protocol: capture
  separation, enzyme-conjugate incubation, wash separation with a YIELD
  hint, substrate development, kinetic read.
* :data:`BRADFORD_SOURCE` — Bradford protein quantitation: a standard
  curve of five BSA dilutions plus the unknown, all mixed 1:50 with dye —
  a heavy shared-reagent workload (the dye is used six times at 50/51
  shares, a classic volume-management stress).
* :data:`PCR_PREP_SOURCE` — PCR master-mix preparation: a 4-component
  master mix (ratio 10:5:4:1) split across three reactions with different
  template dilutions.
"""

from __future__ import annotations

from ..core.dag import AssayDAG

__all__ = [
    "ELISA_SOURCE",
    "BRADFORD_SOURCE",
    "PCR_PREP_SOURCE",
    "build_bradford_dag",
]

ELISA_SOURCE = """\
ASSAY elisa
START
fluid sample, capture_matrix, washbuf, conjugate, substrate;
fluid bound, unbound, developed, rinse_waste, rinsed;
VAR Reading[3];

-- capture: antigen binds the antibody matrix
SEPARATE sample MATRIX capture_matrix USING washbuf YIELD 1 : 4 FOR 300
    INTO bound AND unbound;

-- label with the enzyme conjugate and incubate
MIX bound AND conjugate IN RATIOS 2 : 1 FOR 30;
INCUBATE it AT 37 FOR 1800;

-- wash off unbound conjugate
SEPARATE it MATRIX capture_matrix USING washbuf YIELD 3 : 5 FOR 120
    INTO rinsed AND rinse_waste;

-- develop with substrate and take a kinetic read
MIX rinsed AND substrate IN RATIOS 1 : 3 FOR 15;
SENSE OPTICAL it INTO Reading[1];
INCUBATE it AT 25 FOR 300;
SENSE OPTICAL it INTO Reading[2];
INCUBATE it AT 25 FOR 300;
SENSE OPTICAL it INTO Reading[3];
END
"""

BRADFORD_SOURCE = """\
ASSAY bradford
START
fluid bsa, diluent, dye, unknown;
fluid standard[5];
VAR i, parts, Curve[5], Sample;

-- five-point standard curve by serial two-fold dilution factors
parts = 1;
FOR i FROM 1 TO 5 START
standard[i] = MIX bsa AND diluent IN RATIOS 1 : parts FOR 15;
parts = parts * 2;
ENDFOR

-- each point reacts 1:50 with the dye (the heavy shared reagent)
FOR i FROM 1 TO 5 START
MIX standard[i] AND dye IN RATIOS 1 : 50 FOR 20;
INCUBATE it AT 25 FOR 600;
SENSE OPTICAL it INTO Curve[i];
ENDFOR

MIX unknown AND dye IN RATIOS 1 : 50 FOR 20;
INCUBATE it AT 25 FOR 600;
SENSE OPTICAL it INTO Sample;
END
"""

PCR_PREP_SOURCE = """\
ASSAY pcr_prep
START
fluid buffer, dntps, primers, polymerase, master, diluent, template;
fluid dilution[3];
VAR i, parts, Ct[3];

master = MIX buffer AND dntps AND primers AND polymerase
    IN RATIOS 10 : 5 : 4 : 1 FOR 30;

parts = 9;
FOR i FROM 1 TO 3 START
dilution[i] = MIX template AND diluent IN RATIOS 1 : parts FOR 15;
parts = parts * 10 + 9;
ENDFOR

FOR i FROM 1 TO 3 START
MIX master AND dilution[i] IN RATIOS 4 : 1 FOR 20;
INCUBATE it AT 95 FOR 120;
SENSE FLUORESCENCE it INTO Ct[i];
ENDFOR
END
"""


def build_bradford_dag() -> AssayDAG:
    """Hand-built Bradford DAG (ground truth for the compiler tests)."""
    dag = AssayDAG("bradford")
    dag.add_input("bsa")
    dag.add_input("diluent")
    dag.add_input("dye")
    dag.add_input("unknown")
    parts = 1
    for i in range(1, 6):
        dag.add_mix(f"standard[{i}]", {"bsa": 1, "diluent": parts})
        parts *= 2
    for i in range(1, 6):
        dag.add_mix(f"rxn{i}", {f"standard[{i}]": 1, "dye": 50})
        dag.add_unary(f"rxn{i}.inc", f"rxn{i}")
    dag.add_mix("rxn_u", {"unknown": 1, "dye": 50})
    dag.add_unary("rxn_u.inc", "rxn_u")
    dag.validate()
    return dag
