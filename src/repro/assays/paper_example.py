"""The paper's running example (Figures 2, 3 and 5).

Four mixes over three input fluids::

    K = mix A : B in ratio 1 : 4
    L = mix B : C in ratio 2 : 1
    M = mix K : L in ratio 2 : 1
    N = mix L : C in ratio 2 : 3

DAGSolve's backward pass yields (Figure 5a)::

    Vnorm(M) = Vnorm(N) = 1
    Vnorm(K) = 2/3        Vnorm(L) = 11/15
    Vnorm(A) = 2/15       Vnorm(B) = 46/45 (max)   Vnorm(C) = 38/45

and the dispensing pass with a 100 nl maximum yields (Figure 5b, rounded)::

    B = 100 nl, A = 13 nl, C = 83 nl, K = 65 nl, L = 72 nl
    edge B->K = 52 nl, B->L = 48 nl, C->L = 24 nl, C->N = 59 nl
"""

from __future__ import annotations

from fractions import Fraction

from ..core.dag import AssayDAG

__all__ = [
    "build_dag",
    "EXPECTED_VNORMS",
    "EXPECTED_EDGE_VNORMS",
    "EXPECTED_VOLUMES",
    "SOURCE",
]

#: The example in the Section 4.1 high-level language (not printed in the
#: paper, which shows it only as pseudo-assay text; the semantics match
#: Figure 2).
SOURCE = """\
ASSAY figure2
START
fluid A, B, C;
fluid K, L, M, N;
K = MIX A AND B IN RATIOS 1 : 4 FOR 10;
L = MIX B AND C IN RATIOS 2 : 1 FOR 10;
M = MIX K AND L IN RATIOS 2 : 1 FOR 10;
N = MIX L AND C IN RATIOS 2 : 3 FOR 10;
END
"""


def build_dag() -> AssayDAG:
    """Figure 2's DAG, with M and N as the final outputs."""
    dag = AssayDAG("figure2")
    dag.add_input("A")
    dag.add_input("B")
    dag.add_input("C")
    dag.add_mix("K", {"A": 1, "B": 4})
    dag.add_mix("L", {"B": 2, "C": 1})
    dag.add_mix("M", {"K": 2, "L": 1})
    dag.add_mix("N", {"L": 2, "C": 3})
    dag.validate()
    return dag


#: Figure 5(a): node Vnorms.
EXPECTED_VNORMS = {
    "M": Fraction(1),
    "N": Fraction(1),
    "K": Fraction(2, 3),
    "L": Fraction(11, 15),
    "A": Fraction(2, 15),
    "B": Fraction(46, 45),
    "C": Fraction(38, 45),
}

#: Figure 5(a): edge Vnorms (the paper prints a subset; all are derivable).
EXPECTED_EDGE_VNORMS = {
    ("K", "M"): Fraction(2, 3),
    ("L", "M"): Fraction(1, 3),
    ("L", "N"): Fraction(2, 5),
    ("C", "N"): Fraction(3, 5),
    ("A", "K"): Fraction(2, 15),
    ("B", "K"): Fraction(8, 15),
    ("B", "L"): Fraction(22, 45),
    ("C", "L"): Fraction(11, 45),
}

#: Figure 5(b): dispensed volumes in nl with a 100 nl maximum
#: (exact values; the paper prints them rounded to integers).
EXPECTED_VOLUMES = {
    "B": Fraction(100),
    "A": Fraction(100) * Fraction(2, 15) / Fraction(46, 45),     # ~13.04
    "C": Fraction(100) * Fraction(38, 45) / Fraction(46, 45),    # ~82.6
    "K": Fraction(100) * Fraction(2, 3) / Fraction(46, 45),      # ~65.2
    "L": Fraction(100) * Fraction(11, 15) / Fraction(46, 45),    # ~71.7
    "M": Fraction(100) / Fraction(46, 45),                       # ~97.8
    "N": Fraction(100) / Fraction(46, 45),                       # ~97.8
}
