"""The glucose assay (paper Figure 9, evaluated in Figure 12).

A calibration series of four glucose/reagent dilutions plus one
sample/reagent mix, each read with an optical-density sensor.  All volumes
and uses are statically known, so the whole volume assignment happens at
compile time.

DAGSolve (Figure 12): with every output normalised to 1, the reagent is the
most-used fluid (Vnorm 151/45 ~ 3.36); the smallest dispensed volume is the
glucose share of the 1:8 mix, 500/151 nl ~ 3.3 nl — comfortably above the
100 pl least count, so no transform is needed and zero regenerations occur.

Note on sensing: ``SENSE`` reads a fluid without creating a new one, so the
volume DAG's leaves are the mix outputs themselves — matching the DAG the
paper draws in Figure 12.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.dag import AssayDAG

__all__ = [
    "SOURCE",
    "build_dag",
    "MIX_RATIOS",
    "EXPECTED_VNORMS",
    "EXPECTED_MIN_EDGE",
]

#: Figure 9(a), verbatim semantics.
SOURCE = """\
ASSAY glucose
START
fluid Glucose, Reagent, Sample;
fluid a, b, c, d, e;
VAR Result[5];
a = MIX Glucose AND Reagent IN RATIOS 1 : 1 FOR 10;
SENSE OPTICAL it INTO Result[1];
b = MIX Glucose AND Reagent IN RATIOS 1 : 2 FOR 10;
SENSE OPTICAL it INTO Result[2];
c = MIX Glucose AND Reagent IN RATIOS 1 : 4 FOR 10;
SENSE OPTICAL it INTO Result[3];
d = MIX Glucose AND Reagent IN RATIOS 1 : 8 FOR 10;
SENSE OPTICAL it INTO Result[4];
e = MIX Sample AND Reagent IN RATIOS 1 : 1 FOR 10;
SENSE OPTICAL it INTO Result[5];
END
"""

#: The calibration ratios (glucose : reagent) plus the sample mix.
MIX_RATIOS = {
    "a": ("Glucose", 1, 1),
    "b": ("Glucose", 1, 2),
    "c": ("Glucose", 1, 4),
    "d": ("Glucose", 1, 8),
    "e": ("Sample", 1, 1),
}


def build_dag() -> AssayDAG:
    """The Figure 12 DAG: three inputs, five output mixes."""
    dag = AssayDAG("glucose")
    dag.add_input("Glucose")
    dag.add_input("Reagent")
    dag.add_input("Sample")
    for name, (minor_fluid, minor, major) in MIX_RATIOS.items():
        dag.add_mix(name, {minor_fluid: minor, "Reagent": major})
    dag.validate()
    return dag


#: Figure 12(a): node Vnorms.
EXPECTED_VNORMS = {
    "a": Fraction(1),
    "b": Fraction(1),
    "c": Fraction(1),
    "d": Fraction(1),
    "e": Fraction(1),
    "Glucose": Fraction(1, 2) + Fraction(1, 3) + Fraction(1, 5) + Fraction(1, 9),
    "Reagent": (
        Fraction(1, 2)
        + Fraction(2, 3)
        + Fraction(4, 5)
        + Fraction(8, 9)
        + Fraction(1, 2)
    ),
    "Sample": Fraction(1, 2),
}

#: Figure 12(b): the smallest dispensed volume (the glucose share of the
#: 1:8 mix) with a 100 nl maximum: 500/151 nl ~ 3.31 nl ("3.3 nl").
EXPECTED_MIN_EDGE = (("Glucose", "d"), Fraction(500, 151))
