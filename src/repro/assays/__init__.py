"""Benchmark assays from the paper plus synthetic generators.

Each assay module exposes:

* ``SOURCE`` — the assay in the high-level language of Section 4.1 (where
  the paper prints one, Figures 9-11);
* ``build_dag()`` — the assay DAG built directly against
  :class:`repro.core.AssayDAG` (ground truth for the compiler tests);
* paper-specific helpers/constants used by the benchmarks.
"""

from . import (
    enzyme,
    extra,
    generators,
    glucose,
    glycomics,
    gradients,
    paper_example,
)

__all__ = [
    "paper_example",
    "glucose",
    "glycomics",
    "enzyme",
    "generators",
    "gradients",
    "extra",
]
