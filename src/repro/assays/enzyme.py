"""The enzyme-kinetics assay (paper Figure 11, evaluated in Figure 14).

Four serial dilutions (1:1, 1:9, 1:99, 1:999) are prepared for each of the
enzyme, the substrate and the inhibitor, all from a shared diluent; every
combination of the three dilution series is then mixed 1:1:1, incubated and
sensed — 64 combination mixes, so **each dilution is used 16 times and the
diluent 12 times**.

This is the paper's stress test for volume management:

* the 1:999 dilutions are *extreme mixes* (minor share equal to the
  100 pl / 100 nl dynamic range), and
* the diluent's Vnorm (~54) makes it the binding fluid.

DAGSolve alone dispenses 9.8 pl for the enzyme share of the 1:999 mix —
underflow (LP fails too).  Cascading the 1:999 mixes into three 1:9 stages
removes that underflow but raises diluent uses from 12 to 18 (Vnorm ~81),
leaving a 65.6 pl underflow at the 1:99 mixes; replicating the diluent
three ways (Vnorm 27 per replica) finally lifts the minimum to ~197 pl.
Replication *without* cascading only reaches 29.5 pl (3 x 9.8).

``build_dag(n)`` generalises the dilution count for the Enzyme10 scaling
experiment (Table 2): ``n`` dilutions per reagent produce ``n**3``
combination mixes.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.dag import AssayDAG

__all__ = [
    "SOURCE",
    "build_dag",
    "dilution_ratios",
    "REAGENTS",
    "EXPECTED_DILUTION_VNORM",
    "EXPECTED_DILUENT_VNORM",
    "EXPECTED_MIN_VOLUME_NL",
]

#: Figure 11(a), verbatim semantics.
SOURCE = """\
ASSAY enzyme_test
START
VAR inhibitor_diluent, enzyme_diluent, substrate_diluent;
VAR i, j, k, temp, RESULT[4][4][4];
fluid Diluted_Inhibitor[4], Diluted_Enzyme[4];
fluid Diluted_Substrate[4];
fluid inhibitor, enzyme, diluent, substrate;
inhibitor_diluent = 1;
enzyme_diluent = 1;
substrate_diluent = 1;
temp = 1;
FOR i FROM 1 TO 4 START
Diluted_Inhibitor[i] = MIX inhibitor AND diluent IN RATIOS 1 : inhibitor_diluent FOR 30;
temp = temp * 10;
inhibitor_diluent = temp - 1;
ENDFOR
temp = 1;
FOR j FROM 1 TO 4 START
Diluted_Enzyme[j] = MIX enzyme AND diluent IN RATIOS 1 : enzyme_diluent FOR 30;
temp = temp * 10;
enzyme_diluent = temp - 1;
ENDFOR
temp = 1;
FOR k FROM 1 TO 4 START
Diluted_Substrate[k] = MIX substrate AND diluent IN RATIOS 1 : substrate_diluent FOR 30;
temp = temp * 10;
substrate_diluent = temp - 1;
ENDFOR
FOR i FROM 1 TO 4 START
FOR j FROM 1 TO 4 START
FOR k FROM 1 TO 4 START
MIX Diluted_Inhibitor[i] AND Diluted_Enzyme[j] AND Diluted_Substrate[k] FOR 60;
INCUBATE it AT 37 FOR 300;
SENSE OPTICAL it INTO RESULT[i][j][k];
ENDFOR
ENDFOR
ENDFOR
END
"""

REAGENTS = ("inhibitor", "enzyme", "substrate")


def dilution_ratios(n_dilutions: int) -> list[int]:
    """Diluent parts of the serial dilutions: 1, 9, 99, 999, ...

    (``inhibitor_diluent`` starts at 1, so the first mix is 1:1; ``temp``
    is then multiplied by 10 each iteration and the next diluent share is
    ``temp - 1``, yielding ``max(1, 10**i - 1)`` for iteration ``i``.)
    """
    return [max(1, 10 ** i - 1) for i in range(n_dilutions)]


def build_dag(n_dilutions: int = 4) -> AssayDAG:
    """The enzyme DAG with ``n_dilutions`` dilutions per reagent.

    Sensing does not create a fluid, so the incubated combination mixes are
    the output leaves; each dilution feeds ``n_dilutions**2`` combination
    mixes, i.e. 16 uses for the paper's ``n = 4``.
    """
    if n_dilutions < 1:
        raise ValueError("need at least one dilution")
    name = "enzyme" if n_dilutions == 4 else f"enzyme{n_dilutions}"
    dag = AssayDAG(name)
    dag.add_input("diluent")
    for reagent in REAGENTS:
        dag.add_input(reagent)
    ratios = dilution_ratios(n_dilutions)
    for reagent in REAGENTS:
        for i, diluent_parts in enumerate(ratios, start=1):
            dag.add_mix(
                f"{reagent}.dil{i}",
                {reagent: 1, "diluent": diluent_parts},
                label=f"Diluted_{reagent}[{i}]",
            )
    span = range(1, n_dilutions + 1)
    for i in span:
        for j in span:
            for k in span:
                mix_id = f"combo{i}{j}{k}" if n_dilutions < 10 else (
                    f"combo{i}.{j}.{k}"
                )
                dag.add_mix(
                    mix_id,
                    {
                        f"inhibitor.dil{i}": 1,
                        f"enzyme.dil{j}": 1,
                        f"substrate.dil{k}": 1,
                    },
                )
                dag.add_unary(f"{mix_id}.inc", mix_id, label=f"incubate {mix_id}")
    dag.validate()
    return dag


#: Every dilution is used 16 times at a 1/3 share: Vnorm = 16/3 ~ 5.3.
EXPECTED_DILUTION_VNORM = Fraction(16, 3)

#: Diluent Vnorm = 16 * (1/2 + 9/10 + 99/100 + 999/1000) = 6778/125 ~ 54.2
#: (the paper rounds to 54).
EXPECTED_DILUENT_VNORM = Fraction(16) * (
    Fraction(1, 2) + Fraction(9, 10) + Fraction(99, 100) + Fraction(999, 1000)
)

#: Baseline (no transforms) minimum dispensed volume: the enzyme share of a
#: 1:999 dilution: (16/3000) / (6778/125) * 100 nl ~ 0.00984 nl = 9.8 pl.
EXPECTED_MIN_VOLUME_NL = (
    Fraction(16, 3000) / EXPECTED_DILUENT_VNORM * Fraction(100)
)
