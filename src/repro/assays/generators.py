"""Synthetic assay generators for scaling studies and property tests.

``enzyme_n`` is the paper's own scaling knob (Table 2's Enzyme10 row turns
the four dilutions into ten, growing the LP to ~11k constraints while
DAGSolve stays under two seconds).  The other generators produce families
of structurally-diverse DAGs used by the property-based tests and the
DAGSolve-vs-LP scaling benchmark.

Generators take an explicit ``seed`` and use a private
:class:`random.Random`, so every caller gets reproducible graphs.
"""

from __future__ import annotations

import random
from fractions import Fraction

from ..core.dag import AssayDAG, NodeKind
from . import enzyme

__all__ = [
    "enzyme_n",
    "serial_dilution",
    "layered_random_dag",
    "binary_mix_tree",
    "fanout_chain",
]


def enzyme_n(n_dilutions: int) -> AssayDAG:
    """The EnzymeN family: ``n`` dilutions -> ``n**3`` combination mixes."""
    return enzyme.build_dag(n_dilutions)


def serial_dilution(
    steps: int, factor: int = 10, *, name: str | None = None
) -> AssayDAG:
    """A classic serial-dilution ladder: each stage dilutes the previous
    concentrate ``1:(factor-1)`` and is also sensed (used twice)."""
    if steps < 1:
        raise ValueError("need at least one step")
    dag = AssayDAG(name or f"serial_dilution_{steps}x{factor}")
    dag.add_input("stock")
    dag.add_input("diluent")
    previous = "stock"
    for step in range(1, steps + 1):
        dag.add_mix(
            f"dil{step}", {previous: 1, "diluent": factor - 1}
        )
        previous = f"dil{step}"
    dag.validate()
    return dag


def binary_mix_tree(depth: int, *, name: str | None = None) -> AssayDAG:
    """A complete binary tree of 1:1 mixes over ``2**depth`` inputs."""
    if depth < 1:
        raise ValueError("depth must be >= 1")
    dag = AssayDAG(name or f"mix_tree_{depth}")
    level = [
        dag.add_input(f"in{i}").id for i in range(2 ** depth)
    ]
    counter = 0
    while len(level) > 1:
        next_level: list[str] = []
        for left, right in zip(level[::2], level[1::2]):
            counter += 1
            node = dag.add_mix(f"m{counter}", {left: 1, right: 1})
            next_level.append(node.id)
        level = next_level
    dag.validate()
    return dag


def fanout_chain(
    uses: int, chain: int = 2, *, name: str | None = None
) -> AssayDAG:
    """One stock fluid mixed with ``uses`` distinct reagents, each result
    pushed through a short unary chain — a 'numerous uses' stress shape."""
    if uses < 1:
        raise ValueError("uses must be >= 1")
    dag = AssayDAG(name or f"fanout_{uses}")
    dag.add_input("stock")
    for i in range(uses):
        dag.add_input(f"reagent{i}")
        dag.add_mix(f"mix{i}", {"stock": 1, f"reagent{i}": 1})
        previous = f"mix{i}"
        for j in range(chain):
            dag.add_unary(f"mix{i}.step{j}", previous)
            previous = f"mix{i}.step{j}"
    dag.validate()
    return dag


def layered_random_dag(
    n_inputs: int,
    n_layers: int,
    layer_width: int,
    *,
    seed: int,
    max_ratio: int = 20,
    separator_probability: float = 0.0,
    name: str | None = None,
) -> AssayDAG:
    """A random layered assay DAG with integer mix ratios.

    Every node in layer ``k`` mixes 2-3 nodes drawn from earlier layers with
    ratio parts in ``[1, max_ratio]``; with ``separator_probability`` a node
    is instead a known-fraction separator.  The construction guarantees a
    valid DAG (acyclic, fractions summing to 1, every input used).
    """
    if n_inputs < 2:
        raise ValueError("need at least two inputs")
    rng = random.Random(seed)
    dag = AssayDAG(name or f"random_{seed}")
    pool = [dag.add_input(f"in{i}").id for i in range(n_inputs)]
    counter = 0
    for layer in range(n_layers):
        new_ids: list[str] = []
        for slot in range(layer_width):
            counter += 1
            node_id = f"n{layer}_{slot}"
            if rng.random() < separator_probability and layer > 0:
                src = rng.choice(pool)
                dag.add_unary(
                    node_id,
                    src,
                    kind=NodeKind.SEPARATE,
                    output_fraction=Fraction(rng.randint(1, 9), 10),
                )
            else:
                arity = rng.randint(2, min(3, len(pool)))
                sources = rng.sample(pool, arity)
                parts = {
                    src: rng.randint(1, max_ratio) for src in sources
                }
                dag.add_mix(node_id, parts)
            new_ids.append(node_id)
        pool.extend(new_ids)
    # Guarantee every input reaches the graph's active part: mix unused
    # inputs into one final collector.
    used = {e.src for e in dag.edges()}
    unused = [n.id for n in dag.inputs() if n.id not in used]
    if unused:
        counter += 1
        parts = {src: 1 for src in unused}
        if len(parts) == 1:
            dag.add_unary("collector", unused[0])
        else:
            dag.add_mix("collector", parts)
    dag.validate()
    return dag
