"""The glycomics assay (paper Figure 10, evaluated in Figure 13).

Glycan analysis: an affinity separation over a lectin matrix concentrates
glycoproteins, PNGase F cleaves the glycans, two liquid-chromatography
separations clean the product up, and sodium hydroxide permethylates it for
external mass spectrometry.

The three separations produce **statically-unknown volumes**, so this assay
exercises the Section 3.5 machinery: the DAG is cut at the separators into
four partitions; buffer3a feeds two different partitions and is split into
two 50 nl constrained inputs; the constrained input carrying the second
separator's effluent into the third partition has Vnorm 1/204 (the paper
flags this as a potential run-time underflow for which regeneration is the
backstop).

Matrix and pusher fluids (lectin, buffer1b, C_18, buffer3b) are moved into
the separators whole, outside any mix ratio, so — exactly as in the paper's
Figure 13 — they do not appear in the volume-management DAG; the compiler
emits plain ``move`` instructions for them.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.dag import AssayDAG, NodeKind

__all__ = [
    "SOURCE",
    "build_dag",
    "SEPARATORS",
    "EXPECTED_PARTITIONS",
    "EXPECTED_X2_VNORM",
]

#: Figure 10(a), verbatim semantics.
SOURCE = """\
ASSAY glycomics
START
fluid buffer1a, buffer1b, buffer2;
fluid buffer3a, buffer3b, buffer4, buffer5;
fluid sample, lectin, C_18, NaOH;
fluid effluent, effluent2, effluent3, waste, waste2, waste3;
MIX buffer1a AND sample FOR 30;
SEPARATE it MATRIX lectin USING buffer1b FOR 30 INTO effluent AND waste;
MIX effluent AND buffer2 FOR 30;
INCUBATE it AT 37 FOR 30;
MIX it AND buffer3a IN RATIOS 1 : 10 FOR 30;
LCSEPARATE it MATRIX C_18 USING buffer3b FOR 30 INTO effluent2 AND waste2;
MIX effluent2 AND buffer4 AND NaOH IN RATIOS 1 : 100 : 1 FOR 30;
MIX it AND buffer3a FOR 30;
LCSEPARATE it MATRIX C_18 USING buffer3b FOR 2400 INTO effluent3 AND waste3;
MIX effluent3 AND buffer5 FOR 30;
END
"""

#: The three unknown-volume nodes, in program order.
SEPARATORS = ("sep1", "sep2", "sep3")

#: Figure 13: the DAG splits into four partitions.
EXPECTED_PARTITIONS = 4

#: Figure 13: Vnorm of the X2 constrained input feeding the third
#: partition's 1:100:1 mix: (1/102) * (1/2) = 1/204.
EXPECTED_X2_VNORM = Fraction(1, 204)


def build_dag() -> AssayDAG:
    """The Figure 13 volume DAG (matrix/pusher loads excluded)."""
    dag = AssayDAG("glycomics")
    dag.add_input("buffer1a")
    dag.add_input("sample")
    dag.add_input("buffer2")
    dag.add_input("buffer3a")
    dag.add_input("buffer4")
    dag.add_input("NaOH")
    dag.add_input("buffer5")

    dag.add_mix("mix1", {"buffer1a": 1, "sample": 1})
    dag.add_unary(
        "sep1",
        "mix1",
        kind=NodeKind.SEPARATE,
        unknown_volume=True,
        label="affinity separation (lectin)",
    )
    dag.add_mix("mix2", {"sep1": 1, "buffer2": 1})
    dag.add_unary("inc1", "mix2", label="incubate 37C")
    dag.add_mix("mix3", {"inc1": 1, "buffer3a": 10})
    dag.add_unary(
        "sep2",
        "mix3",
        kind=NodeKind.SEPARATE,
        unknown_volume=True,
        label="LC separation (C_18)",
    )
    dag.add_mix("mix4", {"sep2": 1, "buffer4": 100, "NaOH": 1})
    dag.add_mix("mix5", {"mix4": 1, "buffer3a": 1})
    dag.add_unary(
        "sep3",
        "mix5",
        kind=NodeKind.SEPARATE,
        unknown_volume=True,
        label="LC separation (C_18, long)",
    )
    dag.add_mix("mix6", {"sep3": 1, "buffer5": 1})
    dag.validate()
    return dag
