"""Regeneration: the reactive baseline (Biostream) and its cost model.

Table 2's last column reports "the number of times regeneration is
triggered assuming no volume management".  The paper does not spell out the
naive policy, so we define one precisely (documented in DESIGN.md) and use
it consistently:

* every input reservoir is filled to maximum capacity;
* each operation draws **as much as its ratio allows** from what is
  currently available, capped by the consuming unit's capacity — i.e.
  ``total = min(capacity, min_i(available_i / fraction_i))`` — the natural
  behaviour of variable-volume instructions with no plan;
* when a required fluid is *exhausted* at use time, its backward slice is
  re-executed: inputs refill to capacity, intermediate producers re-run
  their operation (which may recursively exhaust and regenerate *their*
  inputs).  Every such trigger counts once.

Two flavours of "exhausted" are supported:

* ``respect_least_count=True`` — a draw below the metering least count also
  triggers regeneration, and mixes whose ratio can never be dispensed even
  from full reservoirs are *hard failures* (regeneration cannot help an
  extreme ratio — that is cascading's job, Section 3.4.1);
* ``respect_least_count=False`` (the Table 2 baseline) — only genuine
  volume exhaustion triggers, matching a pure volume-accounting model; this
  is the flavour whose counts line up with the paper (glucose 2, enzyme ~85,
  enzyme10 in the low thousands).

With a volume-management plan the draws are the planned volumes and no
regeneration occurs — the claim the benchmarks verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from ..core.dag import AssayDAG, NodeKind
from ..core.errors import VolumeError
from ..core.limits import HardwareLimits

__all__ = ["NaiveExecutionReport", "naive_regeneration_count"]


@dataclass
class NaiveExecutionReport:
    """Outcome of a naive (plan-free) execution."""

    regeneration_count: int
    #: regenerations per fluid (node id -> count)
    per_fluid: dict[str, int] = field(default_factory=dict)
    #: wet operations executed, including re-executions
    operations_executed: int = 0
    #: fluids whose regeneration could not fix the shortfall
    hard_failures: list[str] = field(default_factory=list)
    #: simulated fluid-path time spent, including re-executions (transfers
    #: at 1 s each plus each operation's declared duration)
    wet_seconds: Fraction = Fraction(0)


def naive_regeneration_count(
    dag: AssayDAG,
    limits: HardwareLimits,
    *,
    respect_least_count: bool = True,
    max_triggers: int = 1_000_000,
) -> NaiveExecutionReport:
    """Count regenerations under the no-volume-management policy.

    Args:
        dag: the assay's volume DAG (untransformed).
        limits: hardware capacity and least count.
        respect_least_count: treat sub-least-count draws as exhaustion too.
        max_triggers: safety valve against pathological assays.
    """
    dag.validate()
    available: dict[str, Fraction] = {}
    failed: set[str] = set()
    report = NaiveExecutionReport(0)
    min_useful = limits.least_count if respect_least_count else Fraction(0)

    def regenerate(node_id: str) -> bool:
        """Re-run the producer; returns False when it cannot help."""
        if node_id in failed:
            return False
        if report.regeneration_count >= max_triggers:
            raise VolumeError(
                f"naive execution exceeded {max_triggers} regenerations"
            )
        report.regeneration_count += 1
        report.per_fluid[node_id] = report.per_fluid.get(node_id, 0) + 1
        before = available.get(node_id, Fraction(0))
        produce(node_id)
        return available.get(node_id, Fraction(0)) > before

    def fail(node_id: str) -> None:
        if node_id not in failed:
            failed.add(node_id)
            report.hard_failures.append(node_id)

    def produce(node_id: str) -> None:
        """(Re-)execute the producing operation of ``node_id``."""
        node = dag.node(node_id)
        if node_id in failed:
            return
        report.operations_executed += 1
        if node.kind in (NodeKind.INPUT, NodeKind.CONSTRAINED_INPUT):
            capacity = node.capacity or limits.max_capacity
            available[node_id] = capacity  # refill from the port
            report.wet_seconds += 1  # one input transfer
            return
        inbound = [e for e in dag.in_edges(node_id) if not e.is_excess]
        capacity = node.capacity or limits.max_capacity
        while True:
            # the largest ratio-respecting draw possible right now
            total = capacity
            limiting: str | None = None
            for edge in inbound:
                src_available = available.get(edge.src, Fraction(0))
                bound = src_available / edge.fraction
                if bound < total:
                    total = bound
                    limiting = edge.src
            draws = [(e, e.fraction * total) for e in inbound]
            usable = total > 0 and total >= min_useful and all(
                volume >= min_useful for __, volume in draws
            )
            if usable:
                break
            if limiting is None:
                # Even a full-capacity draw underflows some share: the mix
                # ratio itself is extreme; regeneration cannot help.
                fail(node_id)
                return
            if not regenerate(limiting):
                fail(node_id)
                return
        for edge, volume in draws:
            available[edge.src] = available[edge.src] - volume
        # transfers in, plus the operation's own duration on the wet path
        duration = node.meta.get("duration", 10)
        report.wet_seconds += len(inbound) * 1 + Fraction(duration)
        fraction_out = (
            node.output_fraction
            if node.output_fraction is not None
            else Fraction(1, 2)  # unknown separations: assume half
        )
        produced = total * fraction_out
        available[node_id] = available.get(node_id, Fraction(0)) + produced

    for node_id in dag.topological_order():
        node = dag.node(node_id)
        if node.kind is NodeKind.EXCESS:
            continue
        if node_id not in failed:
            produce(node_id)

    return report
