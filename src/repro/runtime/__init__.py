"""The run-time system: execution, measurement, and regeneration.

* :mod:`repro.runtime.executor` — run a compiled assay on a
  :class:`~repro.machine.Machine`, resolving planned volumes (static or
  per-partition at run time) and falling back to Biostream-style
  regeneration when a fluid actually runs out;
* :mod:`repro.runtime.regeneration` — the *no-volume-management* baseline
  the paper's Table 2 regeneration counts assume, plus slice re-execution;
* :mod:`repro.runtime.measurement` — the on-line volume measurement log
  feeding the Section 3.5 run-time assigner.
"""

from .executor import AssayExecutor, ExecutionResult, PlanResolver, RuntimeResolver
from .measurement import MeasurementLog
from .regeneration import NaiveExecutionReport, naive_regeneration_count

__all__ = [
    "AssayExecutor",
    "ExecutionResult",
    "PlanResolver",
    "RuntimeResolver",
    "MeasurementLog",
    "naive_regeneration_count",
    "NaiveExecutionReport",
]
