"""The run-time system: execution, measurement, and regeneration.

* :mod:`repro.runtime.executor` — run a compiled assay on a
  :class:`~repro.machine.Machine`, resolving planned volumes (static or
  per-partition at run time) and falling back to Biostream-style
  regeneration when a fluid actually runs out;
* :mod:`repro.runtime.regeneration` — the *no-volume-management* baseline
  the paper's Table 2 regeneration counts assume, plus slice re-execution;
* :mod:`repro.runtime.measurement` — the on-line volume measurement log
  feeding the Section 3.5 run-time assigner;
* :mod:`repro.runtime.stress` — the seeded fault-injection harness behind
  ``repro stress``: survival matrices over deterministic fault scenarios.
"""

from .executor import (
    AssayExecutor,
    ExecutionResult,
    FailureReport,
    PlanResolver,
    RetryPolicy,
    RuntimeResolver,
)
from .measurement import MeasurementLog
from .regeneration import NaiveExecutionReport, naive_regeneration_count
from .stress import ScenarioOutcome, StressReport, stress_compiled

__all__ = [
    "AssayExecutor",
    "ExecutionResult",
    "FailureReport",
    "RetryPolicy",
    "PlanResolver",
    "RuntimeResolver",
    "MeasurementLog",
    "naive_regeneration_count",
    "NaiveExecutionReport",
    "ScenarioOutcome",
    "StressReport",
    "stress_compiled",
]
