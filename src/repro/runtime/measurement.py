"""On-line volume measurement log (paper Section 3.5).

Operations flagged as unknown-volume are measured at run time "(e.g., using
an opcode variant)" [paper, citing Gomez et al.'s impedance spectroscopy].
In our AquaCore model the measurement is the separator's reported effluent
volume; :class:`MeasurementLog` records them in order, optionally applying
a perturbation — tests use that to model measurement noise or low-yield
separations and to exercise the regeneration path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from collections.abc import Callable

from ..core.limits import Number, as_fraction

__all__ = ["MeasurementLog"]

#: optional hook: (node id, true volume) -> reported volume.
Perturbation = Callable[[str, Fraction], Fraction]


@dataclass
class MeasurementLog:
    """Ordered record of run-time volume measurements."""

    perturb: Perturbation | None = None
    entries: list[tuple[str, Fraction]] = field(default_factory=list)

    def record(self, node_id: str, volume: Number) -> Fraction:
        """Record a measurement; returns the (possibly perturbed) reading."""
        value = as_fraction(volume)
        if self.perturb is not None:
            value = as_fraction(self.perturb(node_id, value))
        if value < 0:
            raise ValueError(f"measured volume for {node_id!r} is negative")
        self.entries.append((node_id, value))
        return value

    def latest(self) -> dict[str, Fraction]:
        """Most recent reading per node."""
        return dict(self.entries)

    def __len__(self) -> int:
        return len(self.entries)
