"""Seeded stress harness: survival matrices under injected faults.

``repro stress`` (and ``tools/stress_corpus.py`` in CI) drive a compiled
assay through N deterministic fault scenarios — one
:class:`~repro.machine.faults.FaultPlan` per seed — and tabulate how the
hardened executor coped: how many scenarios survived, what recovery cost
(regenerations, retries, extra input volume), and which fault classes
terminated the runs that failed.

Everything here is deterministic by construction: scenario ``k`` uses the
explicit seed ``k``, executions consume no wall clock or global RNG, and
:meth:`StressReport.render_json` emits canonical (sorted-key) JSON — so
the same invocation twice produces byte-identical reports, which CI
asserts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any
from collections.abc import Callable, Iterable

from ..compiler.pipeline import CompiledAssay
from ..machine.faults import ALL_KINDS, FaultInjector, FaultKind, FaultPlan
from ..machine.interpreter import Machine
from .executor import AssayExecutor, ExecutionResult, FailureReport, RetryPolicy

__all__ = ["ScenarioOutcome", "StressReport", "stress_compiled"]

MachineFactory = Callable[[], Machine]


@dataclass
class ScenarioOutcome:
    """One seeded fault scenario's result."""

    seed: int
    survived: bool
    regenerations: int = 0
    transient_retries: int = 0
    regeneration_volume: Fraction = Fraction(0)
    wet_instructions: int = 0
    faults_injected: dict[str, int] = field(default_factory=dict)
    recoveries: dict[str, int] = field(default_factory=dict)
    #: exact match of every sensor reading against the fault-free run
    #: (None when the scenario failed before completing).
    readings_match: bool | None = None
    failure: FailureReport | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "survived": self.survived,
            "regenerations": self.regenerations,
            "transient_retries": self.transient_retries,
            "regeneration_volume_nl": float(self.regeneration_volume),
            "wet_instructions": self.wet_instructions,
            "faults_injected": dict(sorted(self.faults_injected.items())),
            "recoveries": dict(sorted(self.recoveries.items())),
            "readings_match": self.readings_match,
            "failure": None if self.failure is None else self.failure.to_dict(),
        }


@dataclass
class StressReport:
    """Aggregated survival matrix over all seeded scenarios."""

    assay: str
    fault_rate: float
    kinds: list[str]
    seeds: int
    budget: Fraction | None
    baseline_wet_instructions: int
    baseline_regenerations: int
    scenarios: list[ScenarioOutcome] = field(default_factory=list)

    # -- aggregates -----------------------------------------------------
    @property
    def survived(self) -> int:
        return sum(1 for s in self.scenarios if s.survived)

    @property
    def survival_rate(self) -> float:
        return self.survived / len(self.scenarios) if self.scenarios else 1.0

    def faults_by_kind(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for scenario in self.scenarios:
            for kind, count in scenario.faults_injected.items():
                totals[kind] = totals.get(kind, 0) + count
        return dict(sorted(totals.items()))

    def recoveries_by_action(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for scenario in self.scenarios:
            for action, count in scenario.recoveries.items():
                totals[action] = totals.get(action, 0) + count
        return dict(sorted(totals.items()))

    def terminal_errors(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for scenario in self.scenarios:
            if scenario.failure is not None:
                kind = scenario.failure.error_kind
                totals[kind] = totals.get(kind, 0) + 1
        return dict(sorted(totals.items()))

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": 1,
            "assay": self.assay,
            "fault_rate": self.fault_rate,
            "kinds": sorted(self.kinds),
            "seeds": self.seeds,
            "regeneration_budget_nl": (
                None if self.budget is None else float(self.budget)
            ),
            "baseline": {
                "wet_instructions": self.baseline_wet_instructions,
                "regenerations": self.baseline_regenerations,
            },
            "survived": self.survived,
            "survival_rate": self.survival_rate,
            "faults_by_kind": self.faults_by_kind(),
            "recoveries_by_action": self.recoveries_by_action(),
            "terminal_errors": self.terminal_errors(),
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    def render_json(self) -> str:
        """Canonical JSON: same seed, same bytes — CI asserts this."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        lines = [
            f"{self.assay}: {self.survived}/{len(self.scenarios)} scenarios "
            f"survived (fault rate {self.fault_rate:g}, "
            f"{len(self.kinds)} fault kind(s))",
        ]
        for scenario in self.scenarios:
            if scenario.survived:
                status = "ok"
                if scenario.regenerations or scenario.transient_retries:
                    status += (
                        f"  ({scenario.regenerations} regen, "
                        f"{scenario.transient_retries} retry, "
                        f"+{float(scenario.regeneration_volume):.4g} nl)"
                    )
                if scenario.readings_match is False:
                    status += "  [readings perturbed]"
            else:
                failure = scenario.failure
                status = (
                    f"FAILED at #{failure.instruction_index} "
                    f"{failure.error_kind}"
                    + (f" ({failure.location})" if failure.location else "")
                )
            lines.append(f"  seed {scenario.seed:3d}: {status}")
        faults = self.faults_by_kind()
        if faults:
            lines.append("  faults injected: " + ", ".join(
                f"{kind} x{count}" for kind, count in faults.items()
            ))
        recoveries = self.recoveries_by_action()
        if recoveries:
            lines.append("  recoveries: " + ", ".join(
                f"{action} x{count}" for action, count in recoveries.items()
            ))
        errors = self.terminal_errors()
        if errors:
            lines.append("  terminal errors: " + ", ".join(
                f"{kind} x{count}" for kind, count in errors.items()
            ))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
def _run_once(
    compiled: CompiledAssay,
    machine_factory: MachineFactory | None,
    *,
    injector: FaultInjector | None = None,
    policy: RetryPolicy | None = None,
) -> ExecutionResult:
    machine = machine_factory() if machine_factory is not None else None
    executor = AssayExecutor(
        compiled,
        machine,
        injector=injector,
        policy=policy,
        capture_failures=True,
    )
    return executor.run()


def stress_compiled(
    compiled: CompiledAssay,
    *,
    seeds: int = 10,
    fault_rate: float = 0.05,
    kinds: Iterable[FaultKind] = ALL_KINDS,
    budget: Fraction | None = None,
    policy: RetryPolicy | None = None,
    machine_factory: MachineFactory | None = None,
) -> StressReport:
    """Run ``compiled`` under ``seeds`` deterministic fault scenarios.

    Args:
        compiled: the assay to stress (compiled once, executed N+1 times).
        seeds: number of scenarios; scenario *k* uses seed *k*.
        fault_rate: per-(kind, attempt) fault probability.
        kinds: enabled fault classes (default: all five).
        budget: optional regeneration budget in extra input nl.
        policy: base retry policy; the budget is folded into it.
        machine_factory: builds a fresh machine per run (default: a plain
            ``Machine(compiled.spec)``).

    Every failure surfaces as a structured
    :class:`~repro.runtime.executor.FailureReport` on the scenario — an
    unhandled exception escaping this function is a bug, and the CI corpus
    sweep treats it as one.
    """
    kind_set = frozenset(kinds)
    base_policy = policy or RetryPolicy()
    if budget is not None:
        from dataclasses import replace

        base_policy = replace(base_policy, regeneration_budget=budget)

    baseline = _run_once(compiled, machine_factory)
    baseline_results = dict(baseline.results) if baseline.succeeded else None

    report = StressReport(
        assay=compiled.name,
        fault_rate=fault_rate,
        kinds=sorted(k.value for k in kind_set),
        seeds=seeds,
        budget=budget,
        baseline_wet_instructions=baseline.trace.wet_instruction_count,
        baseline_regenerations=baseline.regenerations,
    )
    for seed in range(seeds):
        plan = FaultPlan.seeded(seed, fault_rate, kinds=kind_set)
        injector = FaultInjector(plan)
        result = _run_once(
            compiled, machine_factory, injector=injector, policy=base_policy
        )
        readings_match: bool | None = None
        if result.succeeded and baseline_results is not None:
            readings_match = dict(result.results) == baseline_results
        report.scenarios.append(
            ScenarioOutcome(
                seed=seed,
                survived=result.succeeded,
                regenerations=result.regenerations,
                transient_retries=result.transient_retries,
                regeneration_volume=result.regeneration_volume,
                wet_instructions=result.trace.wet_instruction_count,
                faults_injected=dict(injector.injected),
                recoveries=_count_recoveries(result),
                readings_match=readings_match,
                failure=result.failure_report,
            )
        )
    return report


def _count_recoveries(result: ExecutionResult) -> dict[str, int]:
    counts: dict[str, int] = {}
    for event in result.trace.recoveries:
        counts[event.action] = counts.get(event.action, 0) + 1
    return counts
