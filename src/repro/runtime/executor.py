"""Assay execution: plan resolution, guards, and regeneration fallback.

:class:`AssayExecutor` runs a :class:`~repro.compiler.pipeline.CompiledAssay`
on a :class:`~repro.machine.Machine`:

* **static assays** resolve every metered move through the rounded
  compile-time :class:`~repro.core.dagsolve.VolumeAssignment`
  (:class:`PlanResolver`);
* **assays with unknown volumes** resolve per partition
  (:class:`RuntimeResolver`): when the first move of a partition executes,
  the partition is dispensed on the spot from its precomputed Vnorms and
  the measurements recorded so far — the Section 3.5 protocol;
* statements under a dynamic IF guard are skipped unless their branch is
  the one the sensed condition selected;
* a move that finds its source exhausted triggers **regeneration**: the
  backward slice of that location is re-executed (paper Section 1), the
  trigger is counted, and the move retries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..compiler.pipeline import CompiledAssay
from ..core.errors import PartitionError
from ..core.limits import as_fraction
from ..core.runtime_assign import RuntimeSession
from ..ir.instructions import Instruction, Opcode
from ..ir.slicing import slice_for_location
from ..lang.ast import BinOp, Compare, Expr, Index, Name, Num
from ..machine.errors import EmptyError, MachineError
from ..machine.interpreter import Machine
from ..machine.trace import ExecutionTrace
from .measurement import MeasurementLog

__all__ = ["PlanResolver", "RuntimeResolver", "AssayExecutor", "ExecutionResult"]


class PlanResolver:
    """Static case: volumes straight from the rounded assignment."""

    def __init__(self, assignment) -> None:
        self.assignment = assignment

    def __call__(self, instruction: Instruction) -> Optional[Fraction]:
        if instruction.edge is not None:
            return self.assignment.edge_volume.get(instruction.edge)
        if (
            instruction.opcode is Opcode.INPUT
            and "node" in instruction.meta
        ):
            return self.assignment.node_volume.get(instruction.meta["node"])
        return None


class RuntimeResolver:
    """Statically-unknown case: dispense each partition on first touch."""

    def __init__(self, compiled: CompiledAssay) -> None:
        if compiled.planner is None:
            raise PartitionError("assay has no runtime planner")
        self.planner = compiled.planner
        self.session: RuntimeSession = self.planner.session()
        partitioned = self.planner.partitioned
        #: original node id -> partition index
        self.partition_of: Dict[str, int] = {}
        #: (source, consumer-partition) -> constrained stub id
        self.stub_of: Dict[Tuple[str, int], str] = {}
        for partition in partitioned.partitions:
            for member in partition.members:
                self.partition_of[member] = partition.index
            for spec in partition.constrained:
                self.stub_of[(spec.source, partition.index)] = spec.node_id

    # ------------------------------------------------------------------
    def record_measurement(self, node_id: str, volume: Fraction) -> None:
        if node_id in self.planner.partitioned.measured_sources:
            self.session.record_measurement(node_id, volume)

    def _assignment_for(self, index: int):
        if index not in self.session.assignments:
            missing = self.session.missing_measurements(index)
            if missing:
                raise PartitionError(
                    f"partition {index} dispensed before measurements "
                    f"{missing} exist; program order violates epochs"
                )
            self.session.assign(index)
        return self.session.assignments[index]

    def __call__(self, instruction: Instruction) -> Optional[Fraction]:
        if instruction.edge is not None:
            src, dst = instruction.edge
            index = self.partition_of.get(dst)
            if index is None:
                raise PartitionError(f"node {dst!r} not in any partition")
            assignment = self._assignment_for(index)
            key = (src, dst)
            if key not in assignment.edge_volume:
                stub = self.stub_of.get((src, index))
                if stub is None:
                    raise PartitionError(
                        f"edge {src}->{dst} absent from partition {index}"
                    )
                key = (stub, dst)
            return assignment.limits.quantize(assignment.edge_volume[key])
        if instruction.opcode is Opcode.INPUT:
            # Inputs load before any measurement exists: fill to capacity
            # (the per-partition plans cap the subsequent draws).
            return None
        return None


@dataclass
class ExecutionResult:
    """What one assay execution produced."""

    machine: Machine
    trace: ExecutionTrace
    results: Dict[str, Fraction]
    measurements: MeasurementLog
    regenerations: int = 0
    skipped_guarded: int = 0

    @property
    def readings(self) -> Dict[str, float]:
        return {name: float(value) for name, value in self.results.items()}


class AssayExecutor:
    """Drives a compiled assay to completion on a machine."""

    def __init__(
        self,
        compiled: CompiledAssay,
        machine: Optional[Machine] = None,
        *,
        measurement_log: Optional[MeasurementLog] = None,
        allow_regeneration: bool = True,
        max_regenerations: int = 10_000,
    ) -> None:
        self.compiled = compiled
        self.machine = machine or Machine(compiled.spec)
        self.measurements = measurement_log or MeasurementLog()
        self.allow_regeneration = allow_regeneration
        self.max_regenerations = max_regenerations
        self.regenerations = 0
        self.skipped_guarded = 0
        self._bind_ports()
        if compiled.is_static:
            if compiled.assignment is None:
                raise MachineError(
                    "compiled assay has no volume assignment to execute"
                )
            self.resolver = PlanResolver(compiled.assignment)
        else:
            self.resolver = RuntimeResolver(compiled)

    # ------------------------------------------------------------------
    def _bind_ports(self) -> None:
        bound = set()
        for instruction in self.compiled.program:
            if instruction.opcode is not Opcode.INPUT:
                continue
            port = instruction.src.base
            if port in bound:
                continue
            species = instruction.meta.get("node") or instruction.meta.get("aux")
            if species is None:
                species = instruction.comment or port
            # replicas draw the same underlying species as their original
            base_species = str(species).split(".rep")[0]
            self.machine.bind_port(port, base_species)
            bound.add(port)

    # ------------------------------------------------------------------
    def _guard_allows(self, instruction: Instruction) -> bool:
        guard = instruction.meta.get("guard")
        if guard is None:
            return True
        condition_id, wanted = guard
        flat = self.compiled.flat
        if flat is None or condition_id not in flat.dynamic_condition_exprs:
            return True  # no way to evaluate; run conservatively
        verdict = self._eval_condition(
            flat.dynamic_condition_exprs[condition_id]
        )
        if verdict is None:
            return True
        return bool(verdict) == wanted

    def _eval_condition(self, expression: Expr) -> Optional[bool]:
        value = self._eval_expr(expression)
        return None if value is None else bool(value)

    def _eval_expr(self, expression: Expr):
        if isinstance(expression, Num):
            return expression.value
        if isinstance(expression, Name):
            return self.machine.results.get(expression.ident)
        if isinstance(expression, Index):
            flat_name = expression.base + "".join(
                f"[{self._eval_expr(i)}]" for i in expression.indices
            )
            return self.machine.results.get(flat_name)
        if isinstance(expression, BinOp):
            left = self._eval_expr(expression.left)
            right = self._eval_expr(expression.right)
            if left is None or right is None:
                return None
            return {
                "+": left + right,
                "-": left - right,
                "*": left * right,
                "/": left / right if right else None,
            }[expression.op]
        if isinstance(expression, Compare):
            left = self._eval_expr(expression.left)
            right = self._eval_expr(expression.right)
            if left is None or right is None:
                return None
            return {
                "==": left == right,
                "!=": left != right,
                "<": left < right,
                ">": left > right,
                "<=": left <= right,
                ">=": left >= right,
            }[expression.op]
        return None

    # ------------------------------------------------------------------
    def run(self) -> ExecutionResult:
        program = self.compiled.program
        for index, instruction in enumerate(program):
            sense_guard = instruction.meta.get("guard")
            if sense_guard is not None and not self._guard_allows(instruction):
                self.skipped_guarded += 1
                continue
            self._execute_with_regeneration(index, instruction)
        return ExecutionResult(
            machine=self.machine,
            trace=self.machine.trace,
            results=dict(self.machine.results),
            measurements=self.measurements,
            regenerations=self.regenerations,
            skipped_guarded=self.skipped_guarded,
        )

    def _execute_with_regeneration(
        self, index: int, instruction: Instruction
    ) -> None:
        attempts = 0
        while True:
            try:
                measurement = self.machine.execute(
                    instruction, resolver=self.resolver, index=index
                )
            except EmptyError as error:
                if not self.allow_regeneration:
                    raise
                attempts += 1
                if (
                    attempts > 8
                    or self.regenerations >= self.max_regenerations
                ):
                    raise MachineError(
                        f"regeneration could not satisfy instruction "
                        f"{index} ({instruction.render()}): {error}"
                    ) from error
                self._regenerate(index, error)
                continue
            break
        if measurement is not None and instruction.opcode is Opcode.SEPARATE:
            node_id = instruction.meta.get("node")
            if node_id is not None:
                reported = self.measurements.record(node_id, measurement)
                if isinstance(self.resolver, RuntimeResolver):
                    self.resolver.record_measurement(node_id, reported)

    def _regenerate(self, index: int, error: EmptyError) -> None:
        """Re-execute the backward slice producing the exhausted location."""
        location = error.component
        if location is None:
            raise MachineError(f"cannot regenerate: {error}") from error
        slice_indices = slice_for_location(
            self.compiled.program.instructions, location, index
        )
        if not slice_indices:
            raise MachineError(
                f"no producing slice found for {location!r}; cannot "
                "regenerate"
            ) from error
        self.regenerations += 1
        self.machine.trace.regeneration_count += 1
        for slice_index in slice_indices:
            instruction = self.compiled.program[slice_index]
            if not self._guard_allows(instruction):
                continue
            self.machine.execute(
                instruction, resolver=self.resolver, index=slice_index
            )
