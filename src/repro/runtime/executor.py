"""Assay execution: plan resolution, guards, and regeneration fallback.

:class:`AssayExecutor` runs a :class:`~repro.compiler.pipeline.CompiledAssay`
on a :class:`~repro.machine.Machine`:

* **static assays** resolve every metered move through the rounded
  compile-time :class:`~repro.core.dagsolve.VolumeAssignment`
  (:class:`PlanResolver`);
* **assays with unknown volumes** resolve per partition
  (:class:`RuntimeResolver`): when the first move of a partition executes,
  the partition is dispensed on the spot from its precomputed Vnorms and
  the measurements recorded so far — the Section 3.5 protocol;
* statements under a dynamic IF guard are skipped unless their branch is
  the one the sensed condition selected;
* a move that finds its source exhausted triggers **regeneration**: the
  backward slice of that location is re-executed (paper Section 1), the
  trigger is counted, and the move retries.

Recovery is *bounded* by a :class:`RetryPolicy`: per-instruction
regeneration attempts, per-location regeneration counts, transient
transport retries, and (optionally) a global regeneration budget in extra
input volume.  When a bound is hit the executor raises
:class:`~repro.machine.errors.RegenerationExhausted` naming the failing
node — or, with ``capture_failures=True``, degrades gracefully into a
structured :attr:`ExecutionResult.failure_report` instead of an exception
(the mode the ``repro stress`` harness runs in).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any

from ..compiler.pipeline import CompiledAssay
from ..core.errors import PartitionError, VolumeError
from ..core.limits import as_fraction
from ..core.runtime_assign import RuntimeSession
from ..ir.instructions import Instruction, Opcode
from ..ir.slicing import slice_for_location
from ..lang.ast import BinOp, Compare, Expr, Index, Name, Num
from ..machine.errors import (
    EmptyError,
    MachineError,
    RegenerationExhausted,
    TransportError,
)
from ..machine.faults import FaultInjector
from ..machine.fluids import Mixture
from ..machine.interpreter import Machine
from ..machine.trace import ExecutionTrace, RecoveryEvent
from .measurement import MeasurementLog

__all__ = [
    "PlanResolver",
    "RuntimeResolver",
    "AssayExecutor",
    "ExecutionResult",
    "RetryPolicy",
    "FailureReport",
]


class PlanResolver:
    """Static case: volumes straight from the rounded assignment."""

    def __init__(self, assignment) -> None:
        self.assignment = assignment

    def __call__(self, instruction: Instruction) -> Fraction | None:
        if instruction.edge is not None:
            return self.assignment.edge_volume.get(instruction.edge)
        if (
            instruction.opcode is Opcode.INPUT
            and "node" in instruction.meta
        ):
            return self.assignment.node_volume.get(instruction.meta["node"])
        return None


class RuntimeResolver:
    """Statically-unknown case: dispense each partition on first touch."""

    def __init__(self, compiled: CompiledAssay) -> None:
        if compiled.planner is None:
            raise PartitionError("assay has no runtime planner")
        self.planner = compiled.planner
        self.session: RuntimeSession = self.planner.session()
        partitioned = self.planner.partitioned
        #: original node id -> partition index
        self.partition_of: dict[str, int] = {}
        #: (source, consumer-partition) -> constrained stub id
        self.stub_of: dict[tuple[str, int], str] = {}
        for partition in partitioned.partitions:
            for member in partition.members:
                self.partition_of[member] = partition.index
            for spec in partition.constrained:
                self.stub_of[(spec.source, partition.index)] = spec.node_id

    # ------------------------------------------------------------------
    def record_measurement(self, node_id: str, volume: Fraction) -> None:
        if node_id in self.planner.partitioned.measured_sources:
            self.session.record_measurement(node_id, volume)

    def _assignment_for(self, index: int):
        if index not in self.session.assignments:
            missing = self.session.missing_measurements(index)
            if missing:
                raise PartitionError(
                    f"partition {index} dispensed before measurements "
                    f"{missing} exist; program order violates epochs"
                )
            self.session.assign(index)
        return self.session.assignments[index]

    def __call__(self, instruction: Instruction) -> Fraction | None:
        if instruction.edge is not None:
            src, dst = instruction.edge
            index = self.partition_of.get(dst)
            if index is None:
                raise PartitionError(f"node {dst!r} not in any partition")
            assignment = self._assignment_for(index)
            key = (src, dst)
            if key not in assignment.edge_volume:
                stub = self.stub_of.get((src, index))
                if stub is None:
                    raise PartitionError(
                        f"edge {src}->{dst} absent from partition {index}"
                    )
                key = (stub, dst)
            return assignment.limits.quantize(assignment.edge_volume[key])
        if instruction.opcode is Opcode.INPUT:
            # Inputs load before any measurement exists: fill to capacity
            # (the per-partition plans cap the subsequent draws).
            return None
        return None


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds on the executor's recovery behaviour.

    Attributes:
        max_attempts: regeneration-then-retry rounds per instruction.
        max_transient_retries: transport-failure retries per attempt.
        max_location_regenerations: regenerations of any single location
            before it is declared permanently exhausted.
        max_regenerations: global regeneration cap for the whole run.
        regeneration_budget: cap on the *extra input volume* (nl) drawn
            from ports while re-executing backward slices; ``None`` means
            unbounded.  This is the run-time analogue of the paper's
            input-volume cost of regeneration (Table 2).
    """

    max_attempts: int = 8
    max_transient_retries: int = 4
    max_location_regenerations: int = 64
    max_regenerations: int = 10_000
    regeneration_budget: Fraction | None = None


@dataclass(frozen=True)
class FailureReport:
    """Structured description of an execution that could not complete."""

    instruction_index: int
    instruction: str
    error_kind: str                 # exception class name
    message: str
    location: str | None = None  # failing node/component, when known
    regenerations: int = 0
    transient_retries: int = 0
    regeneration_volume: Fraction = Fraction(0)
    faults_injected: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "instruction_index": self.instruction_index,
            "instruction": self.instruction,
            "error_kind": self.error_kind,
            "message": self.message,
            "location": self.location,
            "regenerations": self.regenerations,
            "transient_retries": self.transient_retries,
            "regeneration_volume_nl": float(self.regeneration_volume),
            "faults_injected": dict(sorted(self.faults_injected.items())),
        }


@dataclass
class ExecutionResult:
    """What one assay execution produced."""

    machine: Machine
    trace: ExecutionTrace
    results: dict[str, Fraction]
    measurements: MeasurementLog
    regenerations: int = 0
    skipped_guarded: int = 0
    transient_retries: int = 0
    #: extra input volume drawn by regeneration slices (the budgeted cost).
    regeneration_volume: Fraction = Fraction(0)
    #: present iff the run could not complete (capture_failures mode).
    failure_report: FailureReport | None = None

    @property
    def succeeded(self) -> bool:
        return self.failure_report is None

    @property
    def readings(self) -> dict[str, float]:
        return {name: float(value) for name, value in self.results.items()}


class AssayExecutor:
    """Drives a compiled assay to completion on a machine."""

    def __init__(
        self,
        compiled: CompiledAssay,
        machine: Machine | None = None,
        *,
        measurement_log: MeasurementLog | None = None,
        allow_regeneration: bool = True,
        max_regenerations: int = 10_000,
        policy: RetryPolicy | None = None,
        injector: FaultInjector | None = None,
        capture_failures: bool = False,
    ) -> None:
        self.compiled = compiled
        self.machine = machine or Machine(compiled.spec)
        if injector is not None:
            self.machine.install_injector(injector)
        self.measurements = measurement_log or MeasurementLog()
        self.allow_regeneration = allow_regeneration
        self.policy = policy or RetryPolicy(max_regenerations=max_regenerations)
        self.max_regenerations = self.policy.max_regenerations
        self.capture_failures = capture_failures
        self.regenerations = 0
        self.skipped_guarded = 0
        self.transient_retries = 0
        self.regeneration_volume = Fraction(0)
        self._location_regenerations: dict[str, int] = {}
        self._bind_ports()
        if compiled.is_static:
            if compiled.assignment is None:
                raise MachineError(
                    "compiled assay has no volume assignment to execute"
                )
            self.resolver = PlanResolver(compiled.assignment)
        else:
            self.resolver = RuntimeResolver(compiled)

    # ------------------------------------------------------------------
    def _bind_ports(self) -> None:
        bound = set()
        for instruction in self.compiled.program:
            if instruction.opcode is not Opcode.INPUT:
                continue
            port = instruction.src.base
            if port in bound:
                continue
            species = instruction.meta.get("node") or instruction.meta.get("aux")
            if species is None:
                species = instruction.comment or port
            # replicas draw the same underlying species as their original
            base_species = str(species).split(".rep")[0]
            self.machine.bind_port(port, base_species)
            bound.add(port)

    # ------------------------------------------------------------------
    def _guard_allows(self, instruction: Instruction) -> bool:
        guard = instruction.meta.get("guard")
        if guard is None:
            return True
        condition_id, wanted = guard
        flat = self.compiled.flat
        if flat is None or condition_id not in flat.dynamic_condition_exprs:
            return True  # no way to evaluate; run conservatively
        verdict = self._eval_condition(
            flat.dynamic_condition_exprs[condition_id]
        )
        if verdict is None:
            return True
        return bool(verdict) == wanted

    def _eval_condition(self, expression: Expr) -> bool | None:
        value = self._eval_expr(expression)
        return None if value is None else bool(value)

    def _eval_expr(self, expression: Expr):
        if isinstance(expression, Num):
            return expression.value
        if isinstance(expression, Name):
            return self.machine.results.get(expression.ident)
        if isinstance(expression, Index):
            flat_name = expression.base + "".join(
                f"[{self._eval_expr(i)}]" for i in expression.indices
            )
            return self.machine.results.get(flat_name)
        if isinstance(expression, BinOp):
            left = self._eval_expr(expression.left)
            right = self._eval_expr(expression.right)
            if left is None or right is None:
                return None
            return {
                "+": left + right,
                "-": left - right,
                "*": left * right,
                "/": left / right if right else None,
            }[expression.op]
        if isinstance(expression, Compare):
            left = self._eval_expr(expression.left)
            right = self._eval_expr(expression.right)
            if left is None or right is None:
                return None
            return {
                "==": left == right,
                "!=": left != right,
                "<": left < right,
                ">": left > right,
                "<=": left <= right,
                ">=": left >= right,
            }[expression.op]
        return None

    # ------------------------------------------------------------------
    def run(self) -> ExecutionResult:
        program = self.compiled.program
        failure: FailureReport | None = None
        for index, instruction in enumerate(program):
            sense_guard = instruction.meta.get("guard")
            if sense_guard is not None and not self._guard_allows(instruction):
                self.skipped_guarded += 1
                continue
            try:
                self._execute_with_regeneration(index, instruction)
            except (MachineError, VolumeError) as error:
                if not self.capture_failures:
                    raise
                failure = self._failure_report(index, instruction, error)
                break
        return ExecutionResult(
            machine=self.machine,
            trace=self.machine.trace,
            results=dict(self.machine.results),
            measurements=self.measurements,
            regenerations=self.regenerations,
            skipped_guarded=self.skipped_guarded,
            transient_retries=self.transient_retries,
            regeneration_volume=self.regeneration_volume,
            failure_report=failure,
        )

    def _failure_report(
        self, index: int, instruction: Instruction, error: Exception
    ) -> FailureReport:
        location = getattr(error, "location", None) or getattr(
            error, "component", None
        )
        injector = self.machine.injector
        return FailureReport(
            instruction_index=index,
            instruction=instruction.render(),
            error_kind=type(error).__name__,
            message=str(error),
            location=location,
            regenerations=self.regenerations,
            transient_retries=self.transient_retries,
            regeneration_volume=self.regeneration_volume,
            faults_injected=dict(injector.injected) if injector else {},
        )

    def _total_drawn(self) -> Fraction:
        return sum(
            (binding.drawn for binding in self.machine.ports.values()),
            Fraction(0),
        )

    def _attempt(self, index: int, instruction: Instruction):
        """One machine execution, with bounded transient-failure retries."""
        retries = 0
        while True:
            try:
                return self.machine.execute(
                    instruction, resolver=self.resolver, index=index
                )
            except TransportError as error:
                retries += 1
                self.transient_retries += 1
                if retries > self.policy.max_transient_retries:
                    raise
                self.machine.trace.record_recovery(
                    RecoveryEvent(
                        index=index,
                        action="retry",
                        location=error.component or "",
                        attempts=retries,
                    )
                )

    def _execute_with_regeneration(
        self, index: int, instruction: Instruction
    ) -> None:
        measurement = self._recovering_attempt(index, instruction)
        if measurement is not None and instruction.opcode is Opcode.SEPARATE:
            node_id = instruction.meta.get("node")
            if node_id is not None:
                reported = self.measurements.record(node_id, measurement)
                if isinstance(self.resolver, RuntimeResolver):
                    self.resolver.record_measurement(node_id, reported)

    def _recovering_attempt(self, index: int, instruction: Instruction):
        """Execute one instruction, regenerating exhausted sources.

        The regeneration loop is re-entrant: a slice re-execution whose
        *own* source is exhausted regenerates that source recursively
        (bounded by the policy caps and a cycle guard), so a chain of dry
        intermediate cells recovers instead of giving up at depth one.
        """
        attempts = 0
        while True:
            try:
                return self._attempt(index, instruction)
            except EmptyError as error:
                if not self.allow_regeneration:
                    raise
                attempts += 1
                if attempts > self.policy.max_attempts:
                    raise RegenerationExhausted(
                        f"instruction {index} ({instruction.render()}) still "
                        f"failing after {attempts - 1} regeneration "
                        f"attempts: {error}",
                        location=error.component,
                        attempts=attempts - 1,
                        reason="max-attempts",
                    ) from error
                if self.regenerations >= self.policy.max_regenerations:
                    raise RegenerationExhausted(
                        f"global regeneration cap "
                        f"{self.policy.max_regenerations} reached at "
                        f"instruction {index} ({instruction.render()})",
                        location=error.component,
                        attempts=attempts,
                        reason="max-regenerations",
                    ) from error
                self._regenerate(index, error)

    def _slice_deposit_locations(self, slice_indices) -> set:
        """Locations the slice deposits into via non-clamping transfers.

        ``input`` refills are deliberately excluded: they clamp to the
        destination's free space (a top-up), so they can never stack into
        an overflow — and that top-up is exactly how under-provisioned
        reservoirs recover.
        """
        deposited = set()
        for slice_index in slice_indices:
            instruction = self.compiled.program[slice_index]
            if instruction.opcode in (Opcode.MOVE, Opcode.MOVE_ABS):
                deposited.add(str(instruction.dst))
            elif instruction.opcode is Opcode.SEPARATE:
                base = instruction.dst.base
                deposited.update((f"{base}.out1", f"{base}.out2"))
        return deposited

    def _spill(self, location: str) -> None:
        try:
            component = self.machine.component(location)
        except MachineError:
            return
        residual = component.discard()
        if residual > 0:
            self.machine.waste_tally += residual

    def _regenerate(self, index: int, error: EmptyError) -> None:
        """Re-execute the backward slice producing the exhausted location.

        Bounded and diagnosed: a location that keeps exhausting beyond the
        policy's per-location cap, an input port whose finite supply is
        spent, or a budget overrun all raise
        :class:`RegenerationExhausted` naming the failing node instead of
        looping.
        """
        location = error.component
        if location is None:
            raise RegenerationExhausted(
                f"cannot regenerate: {error}", reason="unknown-location"
            ) from error
        if location in self.machine.ports:
            # Regeneration re-executes on-chip producers; it cannot mint
            # new off-chip input fluid.
            raise RegenerationExhausted(
                f"input port {location!r} supply exhausted: {error}",
                location=location,
                attempts=self._location_regenerations.get(location, 0),
                reason="source-exhausted",
            ) from error
        count = self._location_regenerations.get(location, 0) + 1
        self._location_regenerations[location] = count
        if count > self.policy.max_location_regenerations:
            raise RegenerationExhausted(
                f"{location!r} exhausted again after "
                f"{count - 1} regenerations; giving up",
                location=location,
                attempts=count - 1,
                reason="location-cap",
            ) from error
        slice_indices = slice_for_location(
            self.compiled.program.instructions, location, index
        )
        if not slice_indices:
            raise RegenerationExhausted(
                f"no producing slice found for {location!r}; cannot "
                "regenerate",
                location=location,
                attempts=count,
                reason="no-slice",
            ) from error
        drawn_before = self._total_drawn()
        volume_before = self.regeneration_volume
        self.regenerations += 1
        self.machine.trace.regeneration_count += 1
        deposited = self._slice_deposit_locations(slice_indices)
        if location in deposited:
            # The slice re-deposits the target's contents from scratch at
            # full planned volumes, so any under-filled residue (a
            # dispense shortfall, say) must be spilled first or the
            # refill overflows the cell.  An input-only target keeps its
            # residue and recovers by topping up instead.
            self._spill(location)
        # Every other location the slice deposits into is only *transited*:
        # the slice recreates its historical contents and drains them
        # onward toward the target.  Whatever those cells hold NOW belongs
        # to later definitions that downstream instructions still need —
        # park it aside, run the slice against empty cells (the def-use
        # closure recreates every intermediate it reads), then put it
        # back, spilling any surplus the slice left behind.
        snapshots: dict[str, Mixture] = {}
        for name in sorted(deposited - {location}):
            try:
                component = self.machine.component(name)
            except MachineError:
                continue
            snapshots[name] = Mixture(dict(component.contents.components))
            component.contents = Mixture.empty()
        try:
            # Recursion terminates: a nested regeneration triggered at
            # slice_index regenerates against the strict prefix
            # program[:slice_index], and every slice index is < `index`.
            for slice_index in slice_indices:
                instruction = self.compiled.program[slice_index]
                if not self._guard_allows(instruction):
                    continue
                self._recovering_attempt(slice_index, instruction)
        finally:
            for name, saved in snapshots.items():
                component = self.machine.component(name)
                surplus = component.discard()
                if surplus > 0:
                    self.machine.waste_tally += surplus
                component.contents = saved
        # Extra input attributable to THIS regeneration: total new draws
        # minus what nested regenerations already booked.
        nested = self.regeneration_volume - volume_before
        extra = (self._total_drawn() - drawn_before) - nested
        self.regeneration_volume += extra
        self.machine.trace.record_recovery(
            RecoveryEvent(
                index=index,
                action="regeneration",
                location=location,
                attempts=count,
                extra_volume=extra,
            )
        )
        budget = self.policy.regeneration_budget
        if budget is not None and self.regeneration_volume > budget:
            raise RegenerationExhausted(
                f"regeneration budget exceeded: "
                f"{float(self.regeneration_volume):.6g} nl of extra input "
                f"drawn against a budget of {float(budget):.6g} nl "
                f"(regenerating {location!r})",
                location=location,
                attempts=count,
                reason="budget",
            )
