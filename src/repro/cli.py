"""Command-line interface: compile, plan, run, and inspect assays.

Usage (also via ``python -m repro``)::

    python -m repro check    assay.fluid            # parse + semantic lint
    python -m repro dag      assay.fluid [--dot]    # the volume DAG
    python -m repro plan     assay.fluid            # volume assignment
    python -m repro compile  assay.fluid            # AIS listing
        [--lint] [--certify] [--race-check]         # run the analyzers on
                                                    # the one compile
        [--time-passes] [--explain] [--profile]     # per-pass timing table /
        [--stats-json PATH]                         # cProfile hotspots /
                                                    # pass plan + events JSON
    python -m repro compile  a.fluid b.fluid --batch --jobs 4 \
        [--cache-dir DIR] [--stats-json PATH]       # batch pipeline with
                                                    # content-addressed cache
    python -m repro lint     program.ais            # fluid-safety analysis
        [--json] [--assay] [--source]               # JSON report; lint an
                                                    # assay source / verify
                                                    # the rolled program
        [--races [--topology {bus,ring}]]           # static race detector
                                                    # (HB + lockset, RACE-*)
    python -m repro certify  program.ais            # plan-certificate verifier
        [--json] [--assay] [--topology {bus,ring}]  # translation validation +
                                                    # schedule interference
    python -m repro run      assay.fluid            # execute on the model
        [--coeff SPECIES=VALUE ...]                 # optical coefficients
        [--sep-yield UNIT=FRACTION ...]             # separator models
    python -m repro bench-regen assay.fluid         # naive regeneration count
    python -m repro stress   assay.fluid            # seeded fault injection
        [--seeds N] [--fault-rate R] [--json]       # survival matrix over N
        [--kinds CSV] [--budget NL]                 # deterministic scenarios
    python -m repro serve    [--port P] [--jobs N]  # resident compile service
        [--cache-dir DIR] [--ttl S] [--token T=TEN] # (HTTP/JSON wire schema
                                                    # v1, docs/SERVICE.md)
    python -m repro client   compile assay.fluid    # submit one job to a
        [--url URL] [--tenant NAME]                 # running daemon; prints
                                                    # the CLI-identical output

Common options: ``--machine {aquacore,aquacore-xl}``, ``--no-lp``,
``--no-cascade``, ``--no-replicate``.  Pass ``-`` to read from stdin.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from fractions import Fraction
from collections.abc import Sequence

from .compiler.passes import (
    CompileContext,
    PassEventBus,
    events_payload,
    front_end,
    render_timing_table,
    run_compile,
)
from .core.hierarchy import VolumeManager
from .core.limits import as_fraction
from .lang.errors import FrontendError
from .machine.interpreter import Machine
from .machine.separation import FractionalYield
from .machine.spec import AQUACORE_SPEC, AQUACORE_XL_SPEC, MachineSpec
from .runtime.executor import AssayExecutor
from .runtime.regeneration import naive_regeneration_count

__all__ = ["main", "build_parser"]

MACHINES = {"aquacore": AQUACORE_SPEC, "aquacore-xl": AQUACORE_XL_SPEC}


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _spec(args) -> MachineSpec:
    spec = MACHINES[getattr(args, "machine", "aquacore")]
    if getattr(args, "coeff", None):
        coefficients = {}
        for item in args.coeff:
            species, __, value = item.partition("=")
            if not value:
                raise SystemExit(f"--coeff expects SPECIES=VALUE, got {item!r}")
            coefficients[species] = as_fraction(value)
        spec = dataclasses.replace(
            spec, extinction_coefficients=coefficients
        )
    return spec


def _cli_options(args) -> dict:
    return {
        "use_lp": not getattr(args, "no_lp", False),
        "allow_cascading": not getattr(args, "no_cascade", False),
        "allow_replication": not getattr(args, "no_replicate", False),
        "objective": getattr(args, "objective", "default"),
    }


@dataclasses.dataclass
class Invocation:
    """One CLI request, resolved exactly once.

    Every source-taking subcommand shares this preamble: read the file
    (or stdin), resolve the machine spec and volume-manager knobs, and
    compute the default program name.  The compile itself always goes
    through the one pass manager (:func:`repro.compiler.passes.run_compile`).
    """

    path: str
    source: str
    spec: MachineSpec
    options: dict

    @property
    def default_name(self) -> str:
        if self.path == "-":
            return "stdin"
        return os.path.splitext(os.path.basename(self.path))[0]

    def manager(self) -> VolumeManager:
        return VolumeManager(self.spec.limits, **self.options)

    def front_end(self) -> CompileContext:
        """Frontend passes only: parse, unroll, build + validate the DAG."""
        return front_end(source=self.source, spec=self.spec)

    def compile(
        self,
        *,
        lint: bool = False,
        certify: bool = False,
        source_lint: bool = False,
        race_check: bool = False,
        profile: bool = False,
        cache=None,
        bus: PassEventBus | None = None,
    ) -> CompileContext:
        """Full compile through the pass manager; returns the context."""
        return run_compile(
            source=self.source,
            spec=self.spec,
            manager=self.manager(),
            lint=lint,
            certify=certify,
            source_lint=source_lint,
            race_check=race_check,
            profile=profile,
            cache=cache,
            bus=bus,
        )


def _invocation(args, path: str | None = None) -> Invocation:
    """Build the shared front-end preamble from parsed CLI args."""
    file_path = path if path is not None else args.file
    return Invocation(
        path=file_path,
        source=_read_source(file_path),
        spec=_spec(args),
        options=_cli_options(args),
    )


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------
def cmd_check(args) -> int:
    ctx = _invocation(args).front_end()
    flat = ctx.flat
    print(f"{ctx.ast.name}: OK")
    print(f"  {len(flat.statements)} wet operations after unrolling")
    print(f"  inputs: {', '.join(flat.input_fluids) or '(none)'}")
    if flat.aux_fluids:
        print(f"  separator fluids: {', '.join(flat.aux_fluids)}")
    if flat.dynamic_conditions:
        print(f"  dynamic conditions: {len(flat.dynamic_conditions)}")
    return 0


def cmd_dag(args) -> int:
    dag = _invocation(args).front_end().dag
    if args.dot:
        print(dag.to_dot())
        return 0
    print(f"{dag.name}: {dag.node_count} nodes, {dag.edge_count} edges")
    for node_id in dag.topological_order():
        node = dag.node(node_id)
        inbound = ", ".join(
            f"{e.src} ({e.fraction})" for e in dag.in_edges(node_id)
        )
        kind = node.kind.value
        extra = " [unknown volume]" if node.unknown_volume else ""
        print(f"  {node_id} <{kind}>{extra}" + (f" <- {inbound}" if inbound else ""))
    return 0


def cmd_plan(args) -> int:
    compiled = _invocation(args).compile().compiled
    if compiled.is_static:
        print(compiled.plan.summary())
        assignment = compiled.assignment
        print("\nplanned volumes (nl, least-count rounded):")
        for node_id in compiled.final_dag.topological_order():
            if node_id in assignment.node_volume:
                print(f"  {node_id}: {float(assignment.node_volume[node_id]):.4g}")
        from .core.report import fluid_requirements, plan_waste_breakdown

        print()
        print(fluid_requirements(assignment).render())
        waste = plan_waste_breakdown(compiled.plan, assignment)
        if waste.excess or waste.retained:
            print()
            print(waste.render())
    else:
        planner = compiled.planner
        print(
            f"{compiled.name}: statically-unknown volumes; "
            f"{planner.n_partitions} partitions"
        )
        for partition in planner.partitions:
            vnorms = planner.vnorms[partition.index]
            print(f"  partition {partition.index} (epoch {partition.epoch}):")
            for member in partition.members:
                print(
                    f"    {member}: Vnorm {vnorms.node_vnorm.get(member)}"
                )
            for spec_input in partition.constrained:
                availability = (
                    f"{float(spec_input.static_available):g} nl"
                    if spec_input.static_available is not None
                    else f"measured from {spec_input.source}"
                )
                print(
                    f"    constrained {spec_input.node_id}: "
                    f"share {spec_input.share}, {availability}"
                )
    if len(compiled.diagnostics):
        print("\ndiagnostics:")
        print("  " + compiled.diagnostics.render().replace("\n", "\n  "))
    return 0


def _plan_cache(args):
    """Build the PlanCache a compile invocation asked for (or None)."""
    if args.cache_dir is None and not args.batch:
        return None
    from .compiler.cache import PlanCache

    return PlanCache(
        max_entries=args.cache_size, directory=args.cache_dir
    )


def cmd_compile(args) -> int:
    args.file = args.files[0]
    if args.batch or len(args.files) > 1:
        if args.time_passes or args.explain or args.profile:
            raise SystemExit(
                "--time-passes/--explain/--profile instrument a single "
                "compile; batch statistics go to --stats-json"
            )
        return _cmd_compile_batch(args)
    if args.rolled:
        from .compiler.rolled import render_rolled_source

        print(render_rolled_source(_read_source(args.file)).render())
        return 0
    instrumented = (
        args.time_passes
        or args.explain
        or args.profile
        or bool(args.stats_json)
    )
    bus = PassEventBus(fingerprints=True) if instrumented else None
    inv = _invocation(args)
    # one parse + one volume plan + one codegen pass, even when both
    # analyzers are requested
    ctx = inv.compile(
        lint=args.lint,
        certify=args.certify,
        source_lint=args.source_lint,
        race_check=args.race_check,
        profile=args.profile,
        cache=_plan_cache(args),
        bus=bus,
    )
    compiled = ctx.compiled
    print(compiled.listing())
    if len(compiled.diagnostics):
        print(file=sys.stderr)
        print(compiled.diagnostics.render(), file=sys.stderr)
    if args.explain:
        print(file=sys.stderr)
        print(ctx.pass_manager.explain(ctx), file=sys.stderr)
    if args.time_passes:
        print(file=sys.stderr)
        print(render_timing_table(bus), file=sys.stderr)
    if args.profile:
        from .compiler.passes.events import render_profile_table

        print(file=sys.stderr)
        print(render_profile_table(bus), file=sys.stderr)
    if args.stats_json:
        import json

        payload = events_payload(
            bus,
            program=compiled.name,
            machine=inv.spec.name,
            fingerprint=ctx.compile_fingerprint() if ctx.is_static else None,
        )
        if ctx.plan is not None:
            from .compiler.passes.events import plan_payload

            payload["plan"] = plan_payload(ctx.plan)
        if ctx.cache is not None:
            payload["cache"] = ctx.cache.stats.to_dict()
        if args.profile:
            from .compiler.passes.events import profile_payload

            payload["profile"] = profile_payload(bus)
        with open(args.stats_json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 1 if compiled.diagnostics.has_errors else 0


def _cmd_compile_batch(args) -> int:
    import json

    from .compiler.batch import BatchJob, compile_many

    if args.rolled:
        raise SystemExit("--rolled is not available in batch mode")
    if args.source_lint:
        raise SystemExit("--source-lint is not available in batch mode")
    if args.race_check:
        raise SystemExit("--race-check is not available in batch mode")
    spec = _spec(args)
    jobs = []
    for path in args.files:
        name = (
            "stdin"
            if path == "-"
            else os.path.splitext(os.path.basename(path))[0]
        )
        jobs.append(BatchJob(name, source=_read_source(path)))
    report = compile_many(
        jobs,
        spec=spec,
        manager_options=_cli_options(args),
        cache=_plan_cache(args),
        max_workers=args.jobs,
        lint=args.lint,
        certify=args.certify,
    )
    print(report.render())
    stats = report.to_dict()
    cache_stats = stats["cache"]
    print(
        f"cache: {cache_stats['hits']} hit / {cache_stats['misses']} miss "
        f"(rate {cache_stats['hit_rate']:.0%})"
    )
    if args.stats_json:
        with open(args.stats_json, "w", encoding="utf-8") as handle:
            json.dump(stats, handle, indent=2)
            handle.write("\n")
    if report.failed or report.total_errors:
        return 1
    if args.certify and any(
        r.certified_clean is False for r in report.results
    ):
        return 1
    return 0


def cmd_run(args) -> int:
    inv = _invocation(args)
    spec = inv.spec
    compiled = inv.compile().compiled
    models = {}
    for item in args.sep_yield or ():
        unit, __, value = item.partition("=")
        if not value:
            raise SystemExit(f"--sep-yield expects UNIT=FRACTION, got {item!r}")
        models[unit] = FractionalYield(as_fraction(value))
    topology = None
    if args.topology:
        from .machine.topology import bus_topology, ring_topology

        builder = {"bus": bus_topology, "ring": ring_topology}[args.topology]
        topology = builder(spec)
    machine = Machine(spec, separation_models=models, topology=topology)
    executor = AssayExecutor(compiled, machine)
    result = executor.run()
    print(f"executed {result.trace.wet_instruction_count} wet instructions")
    print(f"regenerations: {result.regenerations}")
    if result.skipped_guarded:
        print(f"guarded statements skipped: {result.skipped_guarded}")
    if result.measurements.entries:
        print("measured volumes:")
        for node, volume in result.measurements.entries:
            print(f"  {node}: {float(volume):.3f} nl")
    if result.results:
        print("sensor readings:")
        for name, value in sorted(result.results.items()):
            print(f"  {name} = {float(value):.6g}")
    if args.trace:
        print("\ntrace:")
        print(result.trace.render(limit=args.trace))
    return 0


def _lint_topology(args, spec):
    """The optional channel topology a ``lint --races`` run asked for."""
    if not getattr(args, "topology", None):
        return None
    from .machine.topology import bus_topology, ring_topology

    builder = {"bus": bus_topology, "ring": ring_topology}[args.topology]
    return builder(spec)


def cmd_lint(args) -> int:
    from .analysis import lint_program, lint_text
    from .ir.parse import AISParseError

    inv = _invocation(args)
    spec = inv.spec
    if args.races:
        from .analysis import analyze_races, race_text

        topology = _lint_topology(args, spec)
        if args.assay:
            compiled = inv.compile().compiled
            report = analyze_races(
                compiled.program, spec, topology=topology
            )
        else:
            try:
                report = race_text(
                    inv.source,
                    spec,
                    name=inv.default_name,
                    topology=topology,
                )
            except AISParseError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
    elif args.source:
        from .analysis import verify_source

        report = verify_source(inv.source, spec, name=inv.default_name)
    elif args.assay:
        compiled = inv.compile().compiled
        report = lint_program(compiled.program, spec)
    else:
        try:
            report = lint_text(inv.source, spec, name=inv.default_name)
        except AISParseError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.json:
        print(report.render_json())
    else:
        print(report.render_text())
    return report.exit_code


def cmd_certify(args) -> int:
    from .analysis.certify import certify, certify_program
    from .ir.parse import AISParseError, parse_ais
    from .machine.topology import bus_topology, ring_topology

    inv = _invocation(args)
    spec = inv.spec
    builder = {"bus": bus_topology, "ring": ring_topology}[args.topology]
    topology = builder(spec)
    if args.assay:
        compiled = inv.compile().compiled
        report = certify(compiled, topology=topology)
    else:
        try:
            program = parse_ais(inv.source, name=inv.default_name)
        except AISParseError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        report = certify_program(program, spec, topology=topology)
    if args.json:
        print(report.render_json())
    else:
        print(report.render_text())
    return report.exit_code


def cmd_bench_regen(args) -> int:
    inv = _invocation(args)
    dag = inv.front_end().dag
    spec = inv.spec
    report = naive_regeneration_count(
        dag, spec.limits, respect_least_count=not args.ignore_least_count
    )
    print(f"regenerations without volume management: {report.regeneration_count}")
    for fluid, count in sorted(report.per_fluid.items()):
        print(f"  {fluid}: {count}")
    if report.hard_failures:
        print(f"hard failures (need cascading): {report.hard_failures}")
    return 0


def cmd_stress(args) -> int:
    from .machine.faults import parse_kinds
    from .runtime.stress import stress_compiled

    inv = _invocation(args)
    spec = inv.spec
    compiled = inv.compile().compiled
    try:
        kinds = parse_kinds(args.kinds.split(",")) if args.kinds else None
    except ValueError as error:
        raise SystemExit(f"--kinds: {error}") from None
    try:
        budget = as_fraction(args.budget) if args.budget else None
    except ValueError:
        raise SystemExit(
            f"--budget expects a volume in nl, got {args.budget!r}"
        ) from None
    report = stress_compiled(
        compiled,
        seeds=args.seeds,
        fault_rate=args.fault_rate,
        **({"kinds": kinds} if kinds is not None else {}),
        budget=budget,
        machine_factory=lambda: Machine(spec),
    )
    if args.json:
        print(report.render_json())
    else:
        print(report.render_text())
    return 0 if report.survived == len(report.scenarios) else 1


def _parse_tokens(items) -> dict[str, str]:
    tokens: dict[str, str] = {}
    for item in items or ():
        token, sep, tenant = item.partition("=")
        if not sep or not token or not tenant:
            raise SystemExit(f"--token expects TOKEN=TENANT, got {item!r}")
        tokens[token] = tenant
    return tokens


def cmd_serve(args) -> int:
    import asyncio

    from .service.server import ReproService, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.jobs,
        cache_entries=args.cache_size,
        cache_dir=args.cache_dir,
        ttl_seconds=args.ttl,
        tokens=_parse_tokens(args.token),
        max_source_bytes=args.max_source_bytes,
    )

    async def serve() -> None:
        service = ReproService(config)
        host, port = await service.start()
        print(f"repro serve: listening on http://{host}:{port}", flush=True)
        try:
            await service.serve_forever()
        finally:
            await service.aclose()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_client(args) -> int:
    import json as json_module

    from .service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url, token=args.token, tenant=args.tenant)
    if args.kind != "metrics":
        try:
            source = _read_source(args.file)
        except (OSError, UnicodeDecodeError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    try:
        if args.kind == "metrics":
            print(
                json_module.dumps(
                    client.metrics(), indent=2, sort_keys=True
                )
            )
            return 0
        params: dict = {}
        if args.kind == "stress":
            params["seeds"] = args.seeds
            params["fault_rate"] = args.fault_rate
            if args.kinds:
                params["kinds"] = args.kinds.split(",")
            if args.budget:
                params["budget"] = args.budget
        if args.kind in ("lint", "certify") and args.assay:
            params["assay"] = True
        if args.kind == "certify" and args.topology:
            params["topology"] = args.topology
        name = (
            "stdin"
            if args.file == "-"
            else os.path.splitext(os.path.basename(args.file))[0]
        )
        options: dict | None = None
        if args.kind == "compile" and args.objective:
            options = {"objective": args.objective}
        response = client.run(
            args.kind,
            source,
            name=name,
            machine=args.machine,
            params=params,
            options=options,
            timeout=args.timeout,
        )
        job = response["job"]
        sys.stdout.write(
            client.artifact(job["id"]).decode("utf-8")
        )
        return int(response["result"].get("exit_code", 0))
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (ConnectionError, OSError, TimeoutError) as error:
        print(f"error: cannot reach daemon at {args.url}: {error}",
              file=sys.stderr)
        return 2


# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Volume-managed microfluidic assay compiler "
        "(PLDI 2008 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, run_options=False, multi=False):
        if multi:
            p.add_argument(
                "files",
                nargs="+",
                help="assay source file(s); - reads one from stdin",
            )
        else:
            p.add_argument("file", help="assay source file, or - for stdin")
        p.add_argument(
            "--machine",
            choices=sorted(MACHINES),
            default="aquacore",
            help="machine configuration (default: aquacore)",
        )
        p.add_argument("--no-lp", action="store_true",
                       help="disable the LP fallback stage")
        p.add_argument("--no-cascade", action="store_true",
                       help="disable cascading of extreme mix ratios")
        p.add_argument("--no-replicate", action="store_true",
                       help="disable static replication")
        p.add_argument(
            "--objective",
            choices=("default", "waste"),
            default="default",
            help="planning objective: 'default' maximises delivered output "
            "(paper-faithful); 'waste' minimises loaded-minus-delivered "
            "reagent volume",
        )
        if run_options:
            p.add_argument(
                "--coeff",
                action="append",
                metavar="SPECIES=VALUE",
                help="optical extinction coefficient for sensing",
            )
            p.add_argument(
                "--sep-yield",
                action="append",
                metavar="UNIT=FRACTION",
                help="separator effluent fraction (e.g. separator1=0.3)",
            )
            p.add_argument(
                "--trace",
                type=int,
                metavar="N",
                help="print the first N trace events",
            )
            p.add_argument(
                "--topology",
                choices=("bus", "ring"),
                help="route transfers over a channel topology (wet time "
                "scales with hop count)",
            )

    p_check = sub.add_parser("check", help="parse and lint an assay")
    p_check.add_argument("file")
    p_check.set_defaults(handler=cmd_check)

    p_dag = sub.add_parser("dag", help="print the volume DAG")
    p_dag.add_argument("file")
    p_dag.add_argument("--dot", action="store_true", help="Graphviz output")
    p_dag.set_defaults(handler=cmd_dag)

    p_plan = sub.add_parser("plan", help="show the volume-management plan")
    common(p_plan)
    p_plan.set_defaults(handler=cmd_plan)

    p_compile = sub.add_parser("compile", help="emit the AIS listing")
    common(p_compile, multi=True)
    p_compile.add_argument(
        "--rolled",
        action="store_true",
        help="emit the loop-preserving listing (paper Figure 11b form) "
        "instead of the unrolled executable program",
    )
    p_compile.add_argument(
        "--lint",
        action="store_true",
        help="run the fluid-safety analyzer on the same compile",
    )
    p_compile.add_argument(
        "--certify",
        action="store_true",
        help="run the plan-certificate verifier on the same compile",
    )
    p_compile.add_argument(
        "--source-lint",
        action="store_true",
        help="run the source-level parametric verifier (fixpoint over the "
        "rolled program) before unrolling",
    )
    p_compile.add_argument(
        "--race-check",
        action="store_true",
        help="run the static race detector on the generated schedule "
        "(schedule-sensitive pairs and RACE-* findings)",
    )
    p_compile.add_argument(
        "--batch",
        action="store_true",
        help="batch pipeline: fingerprint, dedupe, and cache every file "
        "(implied by passing several files)",
    )
    p_compile.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for cold batch compiles (0 = auto)",
    )
    p_compile.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persistent plan-cache directory (content-addressed JSON)",
    )
    p_compile.add_argument(
        "--cache-size",
        type=int,
        default=512,
        metavar="N",
        help="in-memory plan-cache entries (default: 512)",
    )
    p_compile.add_argument(
        "--stats-json",
        metavar="PATH",
        help="write compile statistics as JSON: the batch report "
        "(hits/misses/latencies) in batch mode, per-pass events for a "
        "single compile",
    )
    p_compile.add_argument(
        "--time-passes",
        action="store_true",
        help="print a per-pass wall/CPU timing table to stderr "
        "(single compile only)",
    )
    p_compile.add_argument(
        "--explain",
        action="store_true",
        help="print the resolved pass plan and which hierarchy attempt "
        "won to stderr (single compile only)",
    )
    p_compile.add_argument(
        "--profile",
        action="store_true",
        help="run each pass under cProfile and print its top cumulative "
        "hotspots to stderr; with --stats-json the hotspots land under "
        'the "profile" key (single compile only)',
    )
    p_compile.set_defaults(handler=cmd_compile)

    p_lint = sub.add_parser(
        "lint",
        help="run the fluid-safety analyzer over an AIS listing",
    )
    p_lint.add_argument("file", help="AIS listing, or - for stdin")
    p_lint.add_argument(
        "--machine",
        choices=sorted(MACHINES),
        default="aquacore",
        help="machine configuration (default: aquacore)",
    )
    p_lint.add_argument(
        "--json", action="store_true", help="emit a JSON report"
    )
    p_lint.add_argument(
        "--assay",
        action="store_true",
        help="treat the input as assay source: compile it, then lint "
        "the generated program",
    )
    p_lint.add_argument(
        "--source",
        action="store_true",
        help="treat the input as assay source and verify the *rolled* "
        "program: one fixpoint whose SRC-* verdicts hold for every "
        "loop bound (no unrolling, no compile)",
    )
    p_lint.add_argument(
        "--races",
        action="store_true",
        help="run the static race detector instead: happens-before + "
        "lockset interference analysis reporting RACE-* findings and "
        "a summary.mhp block (combine with --assay to compile first)",
    )
    p_lint.add_argument(
        "--topology",
        choices=("bus", "ring"),
        help="with --races: channel topology for route-contention "
        "findings (omitted = occupancy/re-banking analysis only)",
    )
    p_lint.set_defaults(handler=cmd_lint)

    p_certify = sub.add_parser(
        "certify",
        help="verify a compiled plan + schedule (translation validation)",
    )
    p_certify.add_argument("file", help="AIS listing, or - for stdin")
    p_certify.add_argument(
        "--machine",
        choices=sorted(MACHINES),
        default="aquacore",
        help="machine configuration (default: aquacore)",
    )
    p_certify.add_argument(
        "--json", action="store_true", help="emit a JSON report"
    )
    p_certify.add_argument(
        "--assay",
        action="store_true",
        help="treat the input as assay source: compile it, then certify "
        "the volume plan and generated schedule",
    )
    p_certify.add_argument(
        "--topology",
        choices=("bus", "ring"),
        default="bus",
        help="channel topology for route/interference checks (default: bus)",
    )
    p_certify.set_defaults(handler=cmd_certify)

    p_run = sub.add_parser("run", help="execute on the AquaCore model")
    common(p_run, run_options=True)
    p_run.set_defaults(handler=cmd_run)

    p_regen = sub.add_parser(
        "bench-regen",
        help="count regenerations under the naive baseline",
    )
    p_regen.add_argument("file")
    p_regen.add_argument(
        "--machine", choices=sorted(MACHINES), default="aquacore"
    )
    p_regen.add_argument(
        "--ignore-least-count",
        action="store_true",
        help="count pure volume exhaustion only (the Table 2 flavour)",
    )
    p_regen.set_defaults(handler=cmd_bench_regen)

    p_stress = sub.add_parser(
        "stress",
        help="run the assay under seeded fault injection and report "
        "a survival matrix",
    )
    common(p_stress)
    p_stress.add_argument(
        "--seeds",
        type=int,
        default=10,
        metavar="N",
        help="number of deterministic fault scenarios (seed k for "
        "scenario k; default: 10)",
    )
    p_stress.add_argument(
        "--fault-rate",
        type=float,
        default=0.05,
        metavar="R",
        help="per-(kind, attempt) fault probability (default: 0.05)",
    )
    p_stress.add_argument(
        "--kinds",
        metavar="CSV",
        help="comma-separated fault kinds to enable (default: all; see "
        "docs/ROBUSTNESS.md for the taxonomy)",
    )
    p_stress.add_argument(
        "--budget",
        metavar="NL",
        help="global regeneration budget in extra input volume (nl)",
    )
    p_stress.add_argument(
        "--json", action="store_true", help="emit the canonical JSON report"
    )
    p_stress.set_defaults(handler=cmd_stress)

    p_serve = sub.add_parser(
        "serve",
        help="run the resident compile service (HTTP/JSON, wire schema "
        "v1; see docs/SERVICE.md)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8642,
        help="listen port (0 picks a free one; default: 8642)",
    )
    p_serve.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="concurrent jobs; >1 also fans cold compiles onto the "
        "persistent worker pool; 0 = auto (default: 1)",
    )
    p_serve.add_argument(
        "--cache-size", type=int, default=512, metavar="N",
        help="plan-cache capacity in entries (default: 512)",
    )
    p_serve.add_argument(
        "--cache-dir", metavar="DIR",
        help="persist plan-cache entries under DIR (shared with the "
        "batch pipeline)",
    )
    p_serve.add_argument(
        "--ttl", type=float, metavar="SECONDS",
        help="expire cache entries after SECONDS (default: never)",
    )
    p_serve.add_argument(
        "--token", action="append", metavar="TOKEN=TENANT",
        help="enable bearer-token auth mapping TOKEN to TENANT "
        "(repeatable; without any, tenants come from X-Repro-Tenant)",
    )
    p_serve.add_argument(
        "--max-source-bytes", type=int, default=262_144, metavar="N",
        help="reject submitted sources larger than N bytes "
        "(default: 262144)",
    )
    p_serve.set_defaults(handler=cmd_serve)

    p_client = sub.add_parser(
        "client",
        help="submit one job to a running repro serve daemon and print "
        "the artifact (the CLI-identical listing or JSON report)",
    )
    p_client.add_argument(
        "kind",
        choices=("compile", "lint", "certify", "stress", "metrics"),
    )
    p_client.add_argument(
        "file", nargs="?", default="-",
        help="source file (or - for stdin); ignored for metrics",
    )
    p_client.add_argument(
        "--url", default="http://127.0.0.1:8642",
        help="daemon base URL (default: http://127.0.0.1:8642)",
    )
    p_client.add_argument("--machine", choices=sorted(MACHINES))
    p_client.add_argument("--token", help="bearer token")
    p_client.add_argument("--tenant", help="tenant name (open mode)")
    p_client.add_argument(
        "--timeout", type=float, default=300.0, metavar="S",
        help="overall job timeout in seconds (default: 300)",
    )
    p_client.add_argument(
        "--assay", action="store_true",
        help="lint/certify: treat the input as assay source",
    )
    p_client.add_argument(
        "--objective", choices=("default", "waste"),
        help="compile: planning objective for the submitted job",
    )
    p_client.add_argument("--topology", choices=("bus", "ring"))
    p_client.add_argument("--seeds", type=int, default=10)
    p_client.add_argument("--fault-rate", type=float, default=0.05)
    p_client.add_argument("--kinds", metavar="CSV")
    p_client.add_argument("--budget", metavar="NL")
    p_client.set_defaults(handler=cmd_client)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except FrontendError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # output piped into a pager/head that closed early: not an error
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
    except (OSError, UnicodeDecodeError) as error:
        # unreadable / missing / non-text input file
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
