"""repro — reproduction of *Automatic Volume Management for Programmable
Microfluidics* (Amin et al., PLDI 2008).

The package provides, end to end:

* :mod:`repro.core` — the paper's contribution: the assay DAG IR, DAGSolve,
  the LP/ILP formulations of RVol/IVol, cascading, static replication, the
  volume-management hierarchy, and the statically-unknown machinery;
* :mod:`repro.lang` — the small high-level assay language of Section 4.1;
* :mod:`repro.ir` — the AquaCore Instruction Set (AIS) program form,
  lowering, reservoir allocation and backward slicing;
* :mod:`repro.compiler` — the source -> AIS + volume-plan driver;
* :mod:`repro.machine` — an executable AquaCore PLoC model (reservoirs,
  functional units, metering pumps, least count);
* :mod:`repro.runtime` — the run-time system: executor, on-line volume
  measurement and Biostream-style regeneration;
* :mod:`repro.assays` — the paper's benchmark assays (glucose, glycomics,
  enzyme, enzyme10) plus generators for scaling studies.

Quickstart::

    from repro import PAPER_LIMITS, dagsolve
    from repro.assays import paper_example

    dag = paper_example.build_dag()
    assignment = dagsolve(dag, PAPER_LIMITS)
    print(assignment.as_floats())
"""

from .core import (
    PAPER_LIMITS,
    AssayDAG,
    Edge,
    HardwareLimits,
    Node,
    NodeKind,
    RuntimePlanner,
    VolumeAssignment,
    VolumeManager,
    VolumePlan,
    cascade_extreme_mixes,
    compute_vnorms,
    dagsolve,
    ilp_solve,
    iterative_replication,
    lp_solve,
    partition_unknown_volumes,
    round_assignment,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "AssayDAG",
    "Node",
    "Edge",
    "NodeKind",
    "HardwareLimits",
    "PAPER_LIMITS",
    "VolumeAssignment",
    "VolumeManager",
    "VolumePlan",
    "RuntimePlanner",
    "compute_vnorms",
    "dagsolve",
    "lp_solve",
    "ilp_solve",
    "round_assignment",
    "cascade_extreme_mixes",
    "iterative_replication",
    "partition_unknown_volumes",
]
