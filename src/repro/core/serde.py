"""Exact JSON serialization for DAGs, assignments, and volume plans.

The plan cache (:mod:`repro.compiler.cache`) stores compiled
:class:`~repro.core.hierarchy.VolumePlan` results content-addressed by DAG
fingerprint, both in memory and on disk.  Everything that round-trips
through the cache must come back *byte-identical* after re-serialization,
so this module defines one canonical JSON form:

* every :class:`fractions.Fraction` is encoded as the exact string
  ``"numerator/denominator"`` — no floats, no precision loss;
* node and edge **insertion order is preserved** (lists, not sorted maps),
  because :meth:`AssayDAG.topological_order` breaks ties by insertion order
  and codegen iterates in that order — a round-tripped DAG must compile to
  the identical listing;
* free-form ``meta`` values are encoded with a small tagged scheme
  (fractions, tuples) and **refused** (:class:`SerdeError`) when a value
  cannot round-trip losslessly (e.g. guard AST objects) — the cache layer
  treats such plans as uncacheable rather than serving corrupted ones.

Canonical bytes are produced by :func:`dumps_canonical` (sorted keys,
minimal separators); the byte-identity property test in
``tests/properties/test_cache_roundtrip.py`` pins serialize/deserialize/
re-serialize as the identity on bytes.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any

from .cascading import CascadeReport
from .dag import AssayDAG, Edge, Node, NodeKind
from .dagsolve import VnormResult, Violation, VolumeAssignment
from .errors import VolumeError
from .hierarchy import Attempt, VolumePlan
from .limits import HardwareLimits
from .replication import ReplicationReport

__all__ = [
    "SerdeError",
    "SERDE_VERSION",
    "dumps_canonical",
    "fraction_to_str",
    "fraction_from_str",
    "dag_to_dict",
    "dag_from_dict",
    "limits_to_dict",
    "limits_from_dict",
    "vnorms_to_dict",
    "vnorms_from_dict",
    "assignment_to_dict",
    "assignment_from_dict",
    "plan_to_dict",
    "plan_from_dict",
]

#: bump when the serialized form changes incompatibly; embedded in every
#: cache fingerprint so stale on-disk entries miss instead of mis-decoding.
SERDE_VERSION = 1


class SerdeError(VolumeError):
    """A value cannot be serialized losslessly."""


def dumps_canonical(obj: Any) -> str:
    """The one canonical JSON text for a serde dict (sorted keys, compact)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# scalars
# ---------------------------------------------------------------------------
def fraction_to_str(value: Fraction) -> str:
    return f"{value.numerator}/{value.denominator}"


def fraction_from_str(text: str) -> Fraction:
    numerator, __, denominator = text.partition("/")
    return Fraction(int(numerator), int(denominator))


def _opt_fraction(value: Fraction | None) -> str | None:
    return None if value is None else fraction_to_str(value)


def _opt_fraction_back(value: str | None) -> Fraction | None:
    return None if value is None else fraction_from_str(value)


def encode_value(value: Any) -> Any:
    """Encode one free-form (``meta``) value; raises :class:`SerdeError`
    on anything that cannot round-trip exactly."""
    if value is None or isinstance(value, (str, int, bool)):
        return value
    if isinstance(value, float):
        return {"$float": repr(value)}
    if isinstance(value, Fraction):
        return {"$frac": fraction_to_str(value)}
    if isinstance(value, tuple):
        return {"$tuple": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        encoded = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise SerdeError(f"non-string dict key {key!r}")
            if key.startswith("$"):
                raise SerdeError(f"reserved key {key!r}")
            encoded[key] = encode_value(item)
        return encoded
    raise SerdeError(f"cannot serialize {type(value).__name__}: {value!r}")


def decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "$frac" in value:
            return fraction_from_str(value["$frac"])
        if "$tuple" in value:
            return tuple(decode_value(item) for item in value["$tuple"])
        if "$float" in value:
            return float(value["$float"])
        return {key: decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    return value


# ---------------------------------------------------------------------------
# limits
# ---------------------------------------------------------------------------
def limits_to_dict(limits: HardwareLimits) -> dict[str, str]:
    return {
        "max_capacity": fraction_to_str(limits.max_capacity),
        "least_count": fraction_to_str(limits.least_count),
    }


def limits_from_dict(data: dict[str, str]) -> HardwareLimits:
    return HardwareLimits(
        max_capacity=fraction_from_str(data["max_capacity"]),
        least_count=fraction_from_str(data["least_count"]),
    )


# ---------------------------------------------------------------------------
# DAG
# ---------------------------------------------------------------------------
def _node_to_dict(node: Node) -> dict[str, Any]:
    return {
        "id": node.id,
        "kind": node.kind.value,
        "ratio": list(node.ratio) if node.ratio is not None else None,
        "output_fraction": _opt_fraction(node.output_fraction),
        "unknown_volume": node.unknown_volume,
        "excess_fraction": fraction_to_str(node.excess_fraction),
        "min_volume": _opt_fraction(node.min_volume),
        "capacity": _opt_fraction(node.capacity),
        "no_excess": node.no_excess,
        "available_volume": _opt_fraction(node.available_volume),
        "label": node.label,
        "meta": encode_value(node.meta),
    }


def _node_from_dict(data: dict[str, Any]) -> Node:
    return Node(
        id=data["id"],
        kind=NodeKind(data["kind"]),
        ratio=tuple(data["ratio"]) if data["ratio"] is not None else None,
        output_fraction=_opt_fraction_back(data["output_fraction"]),
        unknown_volume=data["unknown_volume"],
        excess_fraction=fraction_from_str(data["excess_fraction"]),
        min_volume=_opt_fraction_back(data["min_volume"]),
        capacity=_opt_fraction_back(data["capacity"]),
        no_excess=data["no_excess"],
        available_volume=_opt_fraction_back(data["available_volume"]),
        label=data["label"],
        meta=decode_value(data["meta"]),
    )


def dag_to_dict(dag: AssayDAG) -> dict[str, Any]:
    """Serialize a DAG, preserving node and edge insertion order."""
    return {
        "name": dag.name,
        "nodes": [_node_to_dict(node) for node in dag.nodes()],
        "edges": [
            {
                "src": edge.src,
                "dst": edge.dst,
                "fraction": fraction_to_str(edge.fraction),
                "is_excess": edge.is_excess,
            }
            for edge in dag.edges()
        ],
    }


def dag_from_dict(data: dict[str, Any]) -> AssayDAG:
    dag = AssayDAG(data["name"])
    for node_data in data["nodes"]:
        dag.add_node(_node_from_dict(node_data))
    for edge_data in data["edges"]:
        dag.add_edge(
            Edge(
                edge_data["src"],
                edge_data["dst"],
                fraction_from_str(edge_data["fraction"]),
                is_excess=edge_data["is_excess"],
            )
        )
    return dag


# ---------------------------------------------------------------------------
# Vnorms / assignments
# ---------------------------------------------------------------------------
def _edge_map_to_list(edge_map) -> list[list[Any]]:
    return [
        [src, dst, fraction_to_str(value)]
        for (src, dst), value in edge_map.items()
    ]


def _edge_map_from_list(items) -> dict[tuple[str, str], Fraction]:
    return {
        (src, dst): fraction_from_str(value) for src, dst, value in items
    }


def _node_map_to_dict(node_map) -> dict[str, str]:
    return {node_id: fraction_to_str(v) for node_id, v in node_map.items()}


def _node_map_from_dict(data) -> dict[str, Fraction]:
    return {node_id: fraction_from_str(v) for node_id, v in data.items()}


def vnorms_to_dict(vnorms: VnormResult) -> dict[str, Any]:
    return {
        "node_vnorm": _node_map_to_dict(vnorms.node_vnorm),
        "node_input_vnorm": _node_map_to_dict(vnorms.node_input_vnorm),
        "edge_vnorm": _edge_map_to_list(vnorms.edge_vnorm),
        "nodes_visited": vnorms.nodes_visited,
        "edges_visited": vnorms.edges_visited,
    }


def vnorms_from_dict(data: dict[str, Any]) -> VnormResult:
    return VnormResult(
        node_vnorm=_node_map_from_dict(data["node_vnorm"]),
        node_input_vnorm=_node_map_from_dict(data["node_input_vnorm"]),
        edge_vnorm=_edge_map_from_list(data["edge_vnorm"]),
        nodes_visited=data["nodes_visited"],
        edges_visited=data["edges_visited"],
    )


def assignment_to_dict(assignment: VolumeAssignment) -> dict[str, Any]:
    """Serialize an assignment *without* its DAG (stored once per plan)."""
    return {
        "node_volume": _node_map_to_dict(assignment.node_volume),
        "node_input_volume": _node_map_to_dict(assignment.node_input_volume),
        "edge_volume": _edge_map_to_list(assignment.edge_volume),
        "scale": _opt_fraction(assignment.scale),
        "method": assignment.method,
        "vnorms": (
            vnorms_to_dict(assignment.vnorms)
            if assignment.vnorms is not None
            else None
        ),
        "tolerance": fraction_to_str(assignment.tolerance),
        "meta": encode_value(assignment.meta),
        "limits": limits_to_dict(assignment.limits),
    }


def assignment_from_dict(
    data: dict[str, Any], dag: AssayDAG
) -> VolumeAssignment:
    return VolumeAssignment(
        dag=dag,
        limits=limits_from_dict(data["limits"]),
        node_volume=_node_map_from_dict(data["node_volume"]),
        node_input_volume=_node_map_from_dict(data["node_input_volume"]),
        edge_volume=_edge_map_from_list(data["edge_volume"]),
        scale=_opt_fraction_back(data["scale"]),
        method=data["method"],
        vnorms=(
            vnorms_from_dict(data["vnorms"])
            if data["vnorms"] is not None
            else None
        ),
        tolerance=fraction_from_str(data["tolerance"]),
        meta=decode_value(data["meta"]),
    )


# ---------------------------------------------------------------------------
# plans
# ---------------------------------------------------------------------------
def _violation_to_dict(violation: Violation) -> dict[str, Any]:
    return {
        "kind": violation.kind,
        "subject": violation.subject,
        "volume": fraction_to_str(violation.volume),
        "bound": fraction_to_str(violation.bound),
    }


def _violation_from_dict(data: dict[str, Any]) -> Violation:
    return Violation(
        kind=data["kind"],
        subject=data["subject"],
        volume=fraction_from_str(data["volume"]),
        bound=fraction_from_str(data["bound"]),
    )


def _attempt_to_dict(attempt: Attempt) -> dict[str, Any]:
    return {
        "stage": attempt.stage,
        "round": attempt.round,
        "succeeded": attempt.succeeded,
        "detail": attempt.detail,
        "violations": [_violation_to_dict(v) for v in attempt.violations],
        "objective": attempt.objective,
    }


def _attempt_from_dict(data: dict[str, Any]) -> Attempt:
    return Attempt(
        stage=data["stage"],
        round=data["round"],
        succeeded=data["succeeded"],
        detail=data["detail"],
        violations=tuple(
            _violation_from_dict(v) for v in data["violations"]
        ),
        objective=data.get("objective", "default"),
    )


def _transform_to_dict(report) -> dict[str, Any]:
    if isinstance(report, CascadeReport):
        return {
            "kind": "cascade",
            "node": report.node,
            "depth": report.depth,
            "factors": [fraction_to_str(f) for f in report.factors],
            "intermediate_ids": list(report.intermediate_ids),
            "shared_ids": list(report.shared_ids),
        }
    if isinstance(report, ReplicationReport):
        return {
            "kind": "replicate",
            "node": report.node,
            "copies": report.copies,
            "replica_ids": list(report.replica_ids),
            "distribution": [list(group) for group in report.distribution],
        }
    raise SerdeError(f"unknown transform report {type(report).__name__}")


def _transform_from_dict(data: dict[str, Any]):
    if data["kind"] == "cascade":
        return CascadeReport(
            node=data["node"],
            depth=data["depth"],
            factors=tuple(fraction_from_str(f) for f in data["factors"]),
            intermediate_ids=tuple(data["intermediate_ids"]),
            shared_ids=tuple(data.get("shared_ids", ())),
        )
    if data["kind"] == "replicate":
        return ReplicationReport(
            node=data["node"],
            copies=data["copies"],
            replica_ids=tuple(data["replica_ids"]),
            distribution=tuple(
                tuple(group) for group in data["distribution"]
            ),
        )
    raise SerdeError(f"unknown transform kind {data['kind']!r}")


def plan_to_dict(plan: VolumePlan) -> dict[str, Any]:
    """Serialize a :class:`VolumePlan` (including its final DAG)."""
    return {
        "version": SERDE_VERSION,
        "dag": dag_to_dict(plan.dag),
        "status": plan.status,
        "assignment": (
            assignment_to_dict(plan.assignment)
            if plan.assignment is not None
            else None
        ),
        "attempts": [_attempt_to_dict(a) for a in plan.attempts],
        "transforms": [_transform_to_dict(t) for t in plan.transforms],
    }


def plan_from_dict(
    data: dict[str, Any], dag: AssayDAG | None = None
) -> VolumePlan:
    """Reconstruct a plan; pass ``dag`` to share an already-decoded DAG."""
    if data.get("version") != SERDE_VERSION:
        raise SerdeError(
            f"unsupported plan serde version {data.get('version')!r}"
        )
    if dag is None:
        dag = dag_from_dict(data["dag"])
    return VolumePlan(
        dag=dag,
        assignment=(
            assignment_from_dict(data["assignment"], dag)
            if data["assignment"] is not None
            else None
        ),
        status=data["status"],
        attempts=[_attempt_from_dict(a) for a in data["attempts"]],
        transforms=[_transform_from_dict(t) for t in data["transforms"]],
    )
