"""Constraint-system construction for the LP/ILP formulations (Section 3.2).

The paper casts volume management as a linear program over one variable per
DAG edge (the absolute volume flowing along that edge).  Six constraint
classes are generated, with paper Figure 3 as the reference instance:

1. **Minimum volume** — every edge volume is at least the least count (plus
   any functional-unit minimum), one bound per edge.
2. **Maximum capacity** — the total volume entering a node (for input nodes:
   leaving it) is at most the hardware capacity, one row per node.
3. **Non-deficit** — the use of a fluid (sum of outbound edge volumes) does
   not exceed its production, one row per non-output node.
4. **Ratio** — inbound edge volumes obey the declared mix ratio, ``k - 1``
   equality rows for a ``k``-way mix.
5. **Relative node output-to-input** — production is the node's
   ``output_fraction`` times its input (folded into the non-deficit rows, as
   in Figure 3's ``w + x <= t + u``).
6. **Relative output-to-output** (optional) — all outputs stay within a
   fixed percentage of an anchor output (Figure 3's ``0.9 N <= M <= 1.1 N``),
   two rows per non-anchor output.

The cost vector is built by the pluggable planning objective
(:mod:`repro.core.objectives`); the default objective maximises the sum of
final output volumes, the ``waste`` objective minimises total source draw
minus total delivery.

For the ablation in paper Section 4.3 ("adding DAGSolve's additional
constraints to the LP formulation"), :func:`build_lp_model` can also emit

* **flow conservation** equalities at intermediate nodes, and
* **output equalisation** equalities pinning all outputs to the anchor,

which over-constrain the LP exactly the way DAGSolve does.

The builder is solver-independent: it produces sparse matrices plus labelled
rows, so the same model feeds :mod:`repro.core.lp` (scipy ``linprog``/HiGHS),
:mod:`repro.core.ilp` (scipy ``milp``), and the Table 2 constraint-count
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from collections.abc import Sequence

import numpy as np
from scipy import sparse

from .dag import AssayDAG, Edge, NodeKind
from .errors import DagError
from .limits import HardwareLimits
from .objectives import resolve_objective

__all__ = ["ConstraintRow", "LPModel", "build_lp_model"]

EdgeKey = tuple[str, str]

#: Constraint-class labels, matching the paper's numbering.
CLASS_MIN_VOLUME = "min-volume"
CLASS_CAPACITY = "capacity"
CLASS_NON_DEFICIT = "non-deficit"
CLASS_RATIO = "ratio"
CLASS_OUTPUT_TO_OUTPUT = "output-to-output"
CLASS_FLOW_CONSERVATION = "flow-conservation"  # DAGSolve extra (ablation)
CLASS_OUTPUT_EQUAL = "output-equalisation"     # DAGSolve extra (ablation)


@dataclass(frozen=True)
class ConstraintRow:
    """Provenance of one matrix row, for reporting and debugging."""

    cls: str
    description: str
    equality: bool


@dataclass
class LPModel:
    """A fully-built linear model over edge-volume variables.

    The inequality system is ``A_ub @ x <= b_ub`` and the equality system is
    ``A_eq @ x == b_eq``; ``bounds`` carries per-variable (lo, hi) pairs that
    encode the minimum-volume constraint class (scipy treats bounds
    separately from rows, but we count them as constraints exactly like the
    paper does).
    """

    dag: AssayDAG
    limits: HardwareLimits
    var_index: dict[EdgeKey, int]
    objective: np.ndarray
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    a_eq: sparse.csr_matrix
    b_eq: np.ndarray
    bounds: list[tuple[float, float | None]]
    rows_ub: list[ConstraintRow]
    rows_eq: list[ConstraintRow]
    meta: dict[str, object] = field(default_factory=dict)

    @property
    def n_variables(self) -> int:
        return len(self.var_index)

    @property
    def n_constraints(self) -> int:
        """Total constraint count as reported in Table 2.

        Counts every matrix row plus one minimum-volume constraint per
        variable (the paper's class 1 is one constraint per edge).
        """
        return len(self.rows_ub) + len(self.rows_eq) + self.n_variables

    def counts_by_class(self) -> dict[str, int]:
        counts: dict[str, int] = {CLASS_MIN_VOLUME: self.n_variables}
        for row in list(self.rows_ub) + list(self.rows_eq):
            counts[row.cls] = counts.get(row.cls, 0) + 1
        return counts

    def edge_for_variable(self, index: int) -> EdgeKey:
        for key, i in self.var_index.items():
            if i == index:
                return key
        raise IndexError(index)


class _MatrixBuilder:
    """Accumulates sparse rows with labels."""

    def __init__(self, n_vars: int) -> None:
        self.n_vars = n_vars
        self.data: list[float] = []
        self.rows: list[int] = []
        self.cols: list[int] = []
        self.rhs: list[float] = []
        self.labels: list[ConstraintRow] = []

    def add_row(
        self,
        coefficients: Sequence[tuple[int, Fraction]],
        rhs: Fraction,
        cls: str,
        description: str,
        *,
        equality: bool,
    ) -> None:
        row_index = len(self.rhs)
        for col, value in coefficients:
            if value == 0:
                continue
            self.rows.append(row_index)
            self.cols.append(col)
            self.data.append(float(value))
        self.rhs.append(float(rhs))
        self.labels.append(ConstraintRow(cls, description, equality))

    def matrices(self) -> tuple[sparse.csr_matrix, np.ndarray]:
        matrix = sparse.coo_matrix(
            (self.data, (self.rows, self.cols)),
            shape=(len(self.rhs), self.n_vars),
        ).tocsr()
        return matrix, np.asarray(self.rhs, dtype=float)


def build_lp_model(
    dag: AssayDAG,
    limits: HardwareLimits,
    *,
    output_tolerance: float | None = 0.1,
    dagsolve_constraints: bool = False,
    min_volume_bounds: bool = True,
    objective=None,
) -> LPModel:
    """Build the RVol linear model for ``dag``.

    Args:
        dag: validated assay DAG; unknown-volume nodes with downstream uses
            must have been partitioned away first, exactly as for DAGSolve.
        limits: hardware capacity and least count.
        output_tolerance: the optional class-6 bound (0.1 reproduces
            Figure 3's 10% band); ``None`` omits the class entirely.
        objective: a :class:`~repro.core.objectives.PlanningObjective` (or
            its name) that builds the cost vector; ``None`` / ``"default"``
            reproduces the paper's maximise-total-output objective exactly.
        dagsolve_constraints: also emit DAGSolve's two artificial constraint
            sets (flow conservation + output equalisation) for the
            Section 4.3 ablation.
        min_volume_bounds: when False, replace the class-1 lower bounds
            with 0.  Used by the runtime benchmark so infeasible-by-bounds
            instances (raw enzyme) still exercise a full LP solve, matching
            the paper's timing methodology (their LIPSOL runs reported a
            time for enzyme even though the result underflowed).
    """
    dag.validate()
    for node in dag.nodes():
        if node.unknown_volume and dag.out_degree(node.id) > 0:
            raise DagError(
                f"node {node.id!r} has unknown output volume and downstream "
                "uses; partition the DAG before building the LP"
            )

    # Excess machinery is DAGSolve-specific: LP's non-deficit constraints
    # already allow discarding surplus production, so cascaded DAGs are
    # modelled without their excess edges.
    edges = [edge for edge in dag.edges() if not edge.is_excess]
    var_index: dict[EdgeKey, int] = {
        edge.key: i for i, edge in enumerate(edges)
    }
    n_vars = len(var_index)

    def out_vars(node_id: str) -> list[tuple[int, Edge]]:
        return [
            (var_index[e.key], e)
            for e in dag.out_edges(node_id)
            if not e.is_excess
        ]

    def in_vars(node_id: str) -> list[tuple[int, Edge]]:
        return [
            (var_index[e.key], e)
            for e in dag.in_edges(node_id)
            if not e.is_excess
        ]

    ub = _MatrixBuilder(n_vars)
    eq = _MatrixBuilder(n_vars)

    # -- class 1: minimum volume, as variable lower bounds ----------------
    bounds: list[tuple[float, float | None]] = []
    for edge in edges:
        if not min_volume_bounds:
            bounds.append((0.0, float(limits.max_capacity)))
            continue
        lo = limits.least_count
        dst = dag.node(edge.dst)
        if dst.min_volume is not None and dag.in_degree(edge.dst) == 1:
            lo = max(lo, dst.min_volume)
        bounds.append((float(lo), float(limits.max_capacity)))

    output_nodes = [n for n in dag.outputs()]
    output_ids = {n.id for n in output_nodes}

    for node in dag.nodes():
        if node.kind is NodeKind.EXCESS:
            continue
        inbound = in_vars(node.id)
        outbound = out_vars(node.id)
        is_source = node.kind in (NodeKind.INPUT, NodeKind.CONSTRAINED_INPUT)

        # -- class 2: maximum capacity ---------------------------------
        capacity = node.capacity or limits.max_capacity
        if is_source:
            if node.kind is NodeKind.CONSTRAINED_INPUT:
                if node.available_volume is not None:
                    capacity = min(capacity, node.available_volume)
            if outbound:
                ub.add_row(
                    [(i, Fraction(1)) for i, __ in outbound],
                    Fraction(capacity),
                    CLASS_CAPACITY,
                    f"{node.id}: total draw <= {capacity}",
                    equality=False,
                )
        elif inbound:
            ub.add_row(
                [(i, Fraction(1)) for i, __ in inbound],
                Fraction(capacity),
                CLASS_CAPACITY,
                f"{node.id}: total input <= {capacity}",
                equality=False,
            )
            if node.min_volume is not None and len(inbound) > 1:
                # FU minimum over the whole load (class 1 extension).
                ub.add_row(
                    [(i, Fraction(-1)) for i, __ in inbound],
                    -Fraction(node.min_volume),
                    CLASS_MIN_VOLUME,
                    f"{node.id}: total input >= {node.min_volume}",
                    equality=False,
                )

        # -- classes 3+5: non-deficit with relative output-to-input ------
        if not is_source and node.id not in output_ids and outbound:
            fraction_out = node.output_fraction or Fraction(1)
            coefficients = [(i, Fraction(1)) for i, __ in outbound]
            coefficients += [(i, -fraction_out) for i, __ in inbound]
            ub.add_row(
                coefficients,
                Fraction(0),
                CLASS_NON_DEFICIT,
                f"{node.id}: use <= {fraction_out} * input",
                equality=False,
            )
            if dagsolve_constraints:
                eq.add_row(
                    coefficients,
                    Fraction(0),
                    CLASS_FLOW_CONSERVATION,
                    f"{node.id}: use == {fraction_out} * input",
                    equality=True,
                )

        # -- class 4: mix-ratio equalities -------------------------------
        if len(inbound) > 1:
            anchor_var, anchor_edge = inbound[0]
            for other_var, other_edge in inbound[1:]:
                # anchor / f_anchor == other / f_other
                eq.add_row(
                    [
                        (anchor_var, other_edge.fraction),
                        (other_var, -anchor_edge.fraction),
                    ],
                    Fraction(0),
                    CLASS_RATIO,
                    (
                        f"{node.id}: {anchor_edge.src} vs {other_edge.src} "
                        f"in ratio {anchor_edge.fraction}:{other_edge.fraction}"
                    ),
                    equality=True,
                )

    # -- objective: cost vector delegated to the planning objective -------
    planning = resolve_objective(objective)
    cost = np.zeros(n_vars)
    for key, value in planning.lp_objective_pairs(dag, output_nodes):
        cost[var_index[key]] -= value  # linprog minimises

    # -- class 6: relative output-to-output -------------------------------
    def output_volume_coefficients(node_id: str) -> list[tuple[int, Fraction]]:
        node = dag.node(node_id)
        fraction_out = node.output_fraction or Fraction(1)
        return [(i, fraction_out) for i, __ in in_vars(node_id)]

    real_outputs = [
        n.id
        for n in output_nodes
        if n.kind not in (NodeKind.INPUT, NodeKind.CONSTRAINED_INPUT)
        and dag.in_degree(n.id) > 0
    ]
    if len(real_outputs) > 1:
        anchor = real_outputs[0]
        anchor_coefficients = output_volume_coefficients(anchor)
        for other in real_outputs[1:]:
            other_coefficients = output_volume_coefficients(other)
            if output_tolerance is not None:
                low = Fraction(str(1 - output_tolerance))
                high = Fraction(str(1 + output_tolerance))
                # low * other <= anchor  <=>  low*other - anchor <= 0
                ub.add_row(
                    [(i, low * c) for i, c in other_coefficients]
                    + [(i, -c) for i, c in anchor_coefficients],
                    Fraction(0),
                    CLASS_OUTPUT_TO_OUTPUT,
                    f"{low} * V({other}) <= V({anchor})",
                    equality=False,
                )
                # anchor <= high * other
                ub.add_row(
                    [(i, c) for i, c in anchor_coefficients]
                    + [(i, -high * c) for i, c in other_coefficients],
                    Fraction(0),
                    CLASS_OUTPUT_TO_OUTPUT,
                    f"V({anchor}) <= {high} * V({other})",
                    equality=False,
                )
            if dagsolve_constraints:
                eq.add_row(
                    [(i, c) for i, c in anchor_coefficients]
                    + [(i, -c) for i, c in other_coefficients],
                    Fraction(0),
                    CLASS_OUTPUT_EQUAL,
                    f"V({anchor}) == V({other})",
                    equality=True,
                )

    a_ub, b_ub = ub.matrices()
    a_eq, b_eq = eq.matrices()
    return LPModel(
        dag=dag,
        limits=limits,
        var_index=var_index,
        objective=cost,
        a_ub=a_ub,
        b_ub=b_ub,
        a_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        rows_ub=ub.labels,
        rows_eq=eq.labels,
        meta={
            "output_tolerance": output_tolerance,
            "dagsolve_constraints": dagsolve_constraints,
            "planning_objective": planning.name,
        },
    )
