"""ILP solution of IVol via scipy's HiGHS ``milp`` (paper Section 3.2).

IVol requires every dispensed volume to be an **integer multiple of the
least count**.  We substitute variables ``x_e = least_count * k_e`` with
``k_e`` integral, scale the RVol constraint system accordingly, and hand the
result to HiGHS branch-and-cut (the paper used the LP_Solve 5.5 MILP mode).

The paper's finding — ILP matches LP on the small glucose assay but "ran for
hours without generating a solution" on the enzyme assay — is reproduced in
``benchmarks/bench_ilp_vs_lp.py`` with a configurable time limit standing in
for "hours".
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
from scipy.optimize import LinearConstraint, milp
from scipy.sparse import vstack

from .dag import AssayDAG
from .dagsolve import VolumeAssignment
from .errors import InfeasibleError, SolverError
from .limits import HardwareLimits
from .lp import assignment_from_edge_volumes
from .lpmodel import LPModel, build_lp_model

__all__ = ["ilp_solve", "solve_model_ilp"]


def solve_model_ilp(
    model: LPModel,
    *,
    time_limit: float | None = None,
) -> VolumeAssignment:
    """Solve the integer (IVol) variant of a built model.

    Args:
        model: an :class:`LPModel` from :func:`build_lp_model`.
        time_limit: seconds before HiGHS gives up; a timeout raises
            :class:`SolverError` (the reproduction of "ran for hours").
    """
    least = float(model.limits.least_count)
    n = model.n_variables
    # x = least * k  =>  constraint rows A x {<=,==} b become (A*least) k.
    constraints = []
    if model.a_ub.shape[0]:
        constraints.append(
            LinearConstraint(
                model.a_ub * least, -np.inf, model.b_ub
            )
        )
    if model.a_eq.shape[0]:
        constraints.append(
            LinearConstraint(model.a_eq * least, model.b_eq, model.b_eq)
        )
    import math

    lower = np.array(
        [math.ceil(lo / least - 1e-9) for lo, __ in model.bounds]
    )
    upper = np.array(
        [
            np.floor(hi / least) if hi is not None else np.inf
            for __, hi in model.bounds
        ]
    )
    from scipy.optimize import Bounds

    options = {}
    if time_limit is not None:
        options["time_limit"] = time_limit
    result = milp(
        c=model.objective * least,
        constraints=constraints,
        integrality=np.ones(n),
        bounds=Bounds(lower, upper),
        options=options,
    )
    if result.status == 2:
        raise InfeasibleError(
            f"ILP infeasible for DAG {model.dag.name!r}: {result.message}"
        )
    if result.status == 1 or result.x is None:
        raise SolverError(
            f"ILP did not finish for DAG {model.dag.name!r} "
            f"(status {result.status}): {result.message}"
        )
    least_fraction = model.limits.least_count
    edge_volume = {
        key: Fraction(round(result.x[i])) * least_fraction
        for key, i in model.var_index.items()
    }
    return assignment_from_edge_volumes(
        model.dag,
        model.limits,
        edge_volume,
        method="ilp",
        tolerance=model.limits.max_capacity * Fraction(1, 10_000_000),
        meta={
            "objective": -float(result.fun) if result.fun is not None else None,
            "n_constraints": model.n_constraints,
            "mip_gap": float(getattr(result, "mip_gap", 0.0) or 0.0),
        },
    )


def ilp_solve(
    dag: AssayDAG,
    limits: HardwareLimits,
    *,
    output_tolerance: float | None = 0.1,
    time_limit: float | None = None,
) -> VolumeAssignment:
    """Build and solve the IVol ILP for ``dag``."""
    model = build_lp_model(dag, limits, output_tolerance=output_tolerance)
    return solve_model_ilp(model, time_limit=time_limit)
