"""Static replication for heavily-used fluids (paper Section 3.4.2).

When a fluid has so many uses that even a reservoir filled to maximum
capacity cannot cover them at useful per-use volumes, the paper replicates
(part of) the backward slice of the fluid's production: the heavily-used
node is copied ``k`` times and its uses are distributed "as evenly as
possible" among the replicas.  Each replica then holds ``1/k`` of the load,
which lowers the DAG's maximum Vnorm and therefore *raises* every dispensed
volume (volumes scale inversely with the maximum Vnorm).

Replication proceeds iteratively — one node (level) at a time, re-running
DAGSolve after each rewrite — rather than replicating the whole backward
slice at once, because one-shot replication may exhaust PLoC resources in
cases where the iterative procedure succeeds.  The rewrite is purely
structural, so the LP formulation applies to the replicated DAG unchanged.

In the enzyme assay (paper Figure 14) the diluent input (Vnorm 81 after
cascading) is replicated three ways; each replica drops to Vnorm 27 and the
minimum dispensed volume triples from 65.6 pl to ~197 pl, clearing the
least count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from math import ceil
from collections.abc import Mapping

from .dag import AssayDAG, Edge, Node, NodeKind
from .dagsolve import compute_vnorms, dispense
from .errors import DagError, ResourceExhaustedError
from .limits import HardwareLimits

__all__ = [
    "ReplicationReport",
    "replicate_node",
    "needed_copies",
    "iterative_replication",
]

EdgeKey = tuple[str, str]


@dataclass(frozen=True)
class ReplicationReport:
    """Provenance of one replication rewrite."""

    node: str
    copies: int
    replica_ids: tuple[str, ...]
    #: consumer node ids served by each replica, in replica order.
    distribution: tuple[tuple[str, ...], ...]

    def __str__(self) -> str:
        return f"replicate {self.node} x{self.copies}"


def _check_replicable(dag: AssayDAG, node_id: str) -> Node:
    node = dag.node(node_id)
    if node.kind in (NodeKind.EXCESS, NodeKind.CONSTRAINED_INPUT):
        raise DagError(f"cannot replicate {node.kind.value} node {node_id!r}")
    if node.unknown_volume:
        raise DagError(
            f"cannot replicate unknown-volume node {node_id!r}; its output "
            "exists only at run time"
        )
    if any(edge.is_excess for edge in dag.out_edges(node_id)):
        raise DagError(
            f"cannot replicate cascade intermediate {node_id!r}; replicate "
            "its inputs instead"
        )
    return node


def _balanced_partition(
    items: list[tuple[EdgeKey, Fraction]], bins: int
) -> list[list[EdgeKey]]:
    """Longest-processing-time greedy partition of weighted uses.

    This realises the paper's "distribute the original outbound uses as
    evenly as possible between the replicas" with Vnorm-weighted balance:
    symmetric workloads (like the enzyme assay's three reagent fans) come
    out perfectly even.
    """
    buckets: list[list[EdgeKey]] = [[] for __ in range(bins)]
    loads = [Fraction(0)] * bins
    for key, weight in sorted(items, key=lambda kv: (-kv[1], kv[0])):
        target = min(range(bins), key=lambda b: (loads[b], b))
        buckets[target].append(key)
        loads[target] += weight
    return buckets


def replicate_node(
    dag: AssayDAG,
    node_id: str,
    copies: int,
    *,
    weights: Mapping[EdgeKey, Fraction] | None = None,
) -> tuple[AssayDAG, ReplicationReport]:
    """Copy ``node_id`` ``copies`` times and distribute its uses evenly.

    The original node acts as replica 1; fresh nodes ``<id>.rep2``, ... are
    added.  Internal nodes also copy their inbound edges (which is what
    "replicating a level of the backward slice" means: the predecessors now
    feed every replica and their own use counts grow accordingly).

    Args:
        weights: optional per-use weights (edge Vnorms) used to balance the
            distribution; unweighted uses count 1 each.
    """
    if copies < 2:
        raise ValueError("copies must be >= 2")
    node = _check_replicable(dag, node_id)
    uses = [e for e in dag.out_edges(node_id) if not e.is_excess]
    if len(uses) < copies:
        raise DagError(
            f"node {node_id!r} has {len(uses)} uses; cannot spread them "
            f"over {copies} replicas"
        )

    weighted = [
        (edge.key, (weights or {}).get(edge.key, Fraction(1)))
        for edge in uses
    ]
    buckets = _balanced_partition(weighted, copies)

    new_dag = dag.copy()
    # Allocate fresh replica ids: a node can be replicated again in a later
    # iteration (its replicas from the previous round are still in the DAG),
    # so skip suffixes that are already taken.
    replica_ids = [node_id]
    suffix = 2
    while len(replica_ids) < copies:
        candidate = f"{node_id}.rep{suffix}"
        if candidate not in dag:
            replica_ids.append(candidate)
        suffix += 1
    inbound = [e.copy() for e in dag.in_edges(node_id)]
    for replica_id in replica_ids[1:]:
        replica = node.copy()
        replica.id = replica_id
        replica.label = f"{node.display_name} (replica)"
        replica.meta = dict(node.meta)
        replica.meta["replica_of"] = node_id
        new_dag.add_node(replica)
        for edge in inbound:
            new_dag.add_edge(Edge(edge.src, replica_id, edge.fraction))
    # Reassign uses: bucket 0 keeps the original producer.
    for replica_id, bucket in zip(replica_ids, buckets):
        if replica_id == node_id:
            continue
        for (__, dst) in bucket:
            moved = new_dag.remove_edge(node_id, dst)
            new_dag.add_edge(Edge(replica_id, dst, moved.fraction))
    report = ReplicationReport(
        node=node_id,
        copies=copies,
        replica_ids=tuple(replica_ids),
        distribution=tuple(
            tuple(dst for (__, dst) in bucket) for bucket in buckets
        ),
    )
    return new_dag, report


def needed_copies(
    load_vnorm: Fraction,
    capacity: Fraction,
    required_scale: Fraction,
) -> int:
    """Replica count needed so ``load/k`` fits ``capacity`` at the scale
    that lifts the smallest dispensed volume to the least count."""
    if required_scale <= 0:
        raise ValueError("required_scale must be positive")
    exact = load_vnorm * required_scale / capacity
    return max(2, ceil(exact))


def iterative_replication(
    dag: AssayDAG,
    limits: HardwareLimits,
    *,
    max_rounds: int = 8,
    max_total_nodes: int | None = None,
) -> tuple[AssayDAG, list[ReplicationReport]]:
    """Replicate binding nodes until DAGSolve stops underflowing.

    Each round recomputes Vnorms, finds the node whose capacity bound pins
    the global scale, and replicates it just enough to lift the minimum
    dispensed volume to the least count.  Stops when feasible, when no
    progress is possible (the underflow is not capacity-limited, e.g. a
    still-extreme mix ratio that needs cascading instead), or when the
    resource budget is exhausted — mirroring "the replicated code may exceed
    the PLoC's resources; in such cases, compilation fails".
    """
    current = dag
    reports: list[ReplicationReport] = []
    for __ in range(max_rounds):
        vnorms = compute_vnorms(current)
        assignment = dispense(current, vnorms, limits)
        underflows = [
            v for v in assignment.violations() if v.kind != "overflow"
        ]
        if not underflows:
            return current, reports
        min_key, min_volume = assignment.min_edge()
        min_vnorm = vnorms.edge_vnorm[min_key]
        required_scale = limits.least_count / min_vnorm

        # Find the binding node: the one whose capacity bound yields the
        # current (insufficient) scale.
        binding_id = None
        binding_bound = None
        for node in current.nodes():
            load = max(
                vnorms.node_vnorm[node.id], vnorms.node_input_vnorm[node.id]
            )
            if load == 0:
                continue
            capacity = node.capacity or limits.max_capacity
            bound = capacity / load
            if binding_bound is None or bound < binding_bound:
                binding_bound = bound
                binding_id = node.id
        assert binding_id is not None and binding_bound is not None
        if binding_bound >= required_scale:
            # Capacity is not the limiter; replication cannot help (the
            # constrained input or the ratio itself binds).
            raise ResourceExhaustedError(
                "replication cannot raise the minimum volume "
                f"({float(min_volume):.4g} nl at {min_key}); the scale is "
                "not capacity-limited"
            )
        binding = current.node(binding_id)
        uses = [
            e for e in current.out_edges(binding_id) if not e.is_excess
        ]
        capacity = binding.capacity or limits.max_capacity
        load = max(
            vnorms.node_vnorm[binding_id],
            vnorms.node_input_vnorm[binding_id],
        )
        copies = min(len(uses), needed_copies(load, capacity, required_scale))
        if copies < 2:
            raise ResourceExhaustedError(
                f"binding node {binding_id!r} has too few uses to replicate"
            )
        weights = {
            e.key: vnorms.edge_vnorm[e.key] for e in uses
        }
        current, report = replicate_node(
            current, binding_id, copies, weights=weights
        )
        reports.append(report)
        if max_total_nodes is not None and current.node_count > max_total_nodes:
            raise ResourceExhaustedError(
                f"replication grew the DAG to {current.node_count} nodes, "
                f"exceeding the PLoC budget of {max_total_nodes}"
            )
    raise ResourceExhaustedError(
        f"underflow persists after {max_rounds} replication rounds"
    )
