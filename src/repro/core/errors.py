"""Exception hierarchy for the volume-management core.

All errors raised by :mod:`repro.core` derive from :class:`VolumeError` so
callers can catch the whole family with one clause.  The compiler and the
volume-management hierarchy (paper Figure 6) rely on the *specific* subclasses
to decide which fallback to attempt next: an :class:`UnderflowError` from
DAGSolve triggers the LP fallback, an infeasible LP triggers cascading or
static replication, and so on.
"""

from __future__ import annotations

__all__ = [
    "VolumeError",
    "DagError",
    "CycleError",
    "RatioError",
    "UnderflowError",
    "OverflowError_",
    "InfeasibleError",
    "ResourceExhaustedError",
    "PartitionError",
    "SolverError",
]


class VolumeError(Exception):
    """Base class for all volume-management errors."""


class DagError(VolumeError):
    """Malformed assay DAG (dangling edge, duplicate node id, ...)."""


class CycleError(DagError):
    """The assay graph contains a cycle and therefore is not a DAG."""


class RatioError(VolumeError):
    """A mix node's edge fractions are missing, negative or do not sum to 1."""


class UnderflowError(VolumeError):
    """A dispensed volume fell below the hardware least count.

    Carries enough context for the hierarchy to decide whether cascading
    (extreme ratio at fault) or replication (too many uses at fault) is the
    appropriate remedy.
    """

    def __init__(self, message, *, node=None, edge=None, volume=None, least_count=None):
        super().__init__(message)
        self.node = node
        self.edge = edge
        self.volume = volume
        self.least_count = least_count


class OverflowError_(VolumeError):
    """A node's total assigned volume exceeded the hardware maximum capacity.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`OverflowError`.
    """

    def __init__(self, message, *, node=None, volume=None, capacity=None):
        super().__init__(message)
        self.node = node
        self.volume = volume
        self.capacity = capacity


class InfeasibleError(VolumeError):
    """No volume assignment satisfies the constraint system (LP/ILP verdict)."""


class ResourceExhaustedError(VolumeError):
    """A DAG transform (replication/cascading) exceeded PLoC resources.

    The paper: "the replicated code may exceed the PLoC's resources.  In such
    cases, compilation fails."
    """


class PartitionError(VolumeError):
    """Invalid partitioning request for the statically-unknown case."""


class SolverError(VolumeError):
    """The underlying LP/ILP solver failed for a non-feasibility reason."""
