"""Cascaded mixing for extreme mix ratios (paper Section 3.4.1, Figure 7).

A mix ratio ``1:R`` whose minor share is below the hardware's dynamic range
(least count / maximum capacity) cannot be dispensed directly: setting the
major side to capacity underflows the minor side, and setting the minor side
to the least count overflows the major side.  The classic wet-lab remedy is
**cascaded mixing**: realise the ratio as a chain of milder mixes, e.g.
``1:99 = (1:9) ∘ (1:9)``, discarding the statically-known surplus at each
intermediate stage (9/10 parts in the example).

The surplus is what makes cascading compatible with DAGSolve: flow
conservation would otherwise force each stage's production down to the next
stage's draw, re-creating the underflow one level up.  We therefore attach
an :class:`~repro.core.dag.NodeKind.EXCESS` node to every intermediate with
``excess_fraction = 1 - 1/s`` where ``s`` is the next stage's dilution
factor; DAGSolve then assigns every intermediate the same Vnorm as the
original extreme node, exactly as the paper describes for the enzyme assay
(all cascade intermediates get Vnorm 16/3).

Depth selection follows the paper's iterative deepening: try two stages of
``1:(sqrt(R+1) - 1)``, then three of ``1:(cbrt(R+1) - 1)``, ... until every
stage factor fits within the dynamic range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from math import ceil

from .dag import AssayDAG, Edge, Node, NodeKind
from .errors import DagError, RatioError, ResourceExhaustedError
from .limits import HardwareLimits

__all__ = [
    "CascadeReport",
    "is_extreme_mix",
    "find_extreme_mixes",
    "stage_factors",
    "waste_stage_factors",
    "cascade_mix",
    "cascade_extreme_mixes",
]


@dataclass(frozen=True)
class CascadeReport:
    """Provenance of one cascading rewrite.

    ``shared_ids`` names pre-existing cascade stages this rewrite reused
    instead of creating (waste objective only): the reused stage's excess
    share shrinks by the new consumer's draw.
    """

    node: str
    depth: int
    factors: tuple[Fraction, ...]
    intermediate_ids: tuple[str, ...]
    shared_ids: tuple[str, ...] = ()

    def __str__(self) -> str:
        chain = " -> ".join(f"1:{factor - 1}" for factor in self.factors)
        suffix = ""
        if self.shared_ids:
            suffix = f" ({len(self.shared_ids)} stage(s) shared)"
        return f"cascade {self.node}: {chain}{suffix}"


def _minor_edge(dag: AssayDAG, node_id: str) -> Edge:
    inbound = [e for e in dag.in_edges(node_id) if not e.is_excess]
    if len(inbound) < 2:
        raise RatioError(f"node {node_id!r} is not a multi-input mix")
    return min(inbound, key=lambda e: e.fraction)


def is_extreme_mix(
    dag: AssayDAG,
    node_id: str,
    limits: HardwareLimits,
    *,
    slack: Fraction = Fraction(1),
) -> bool:
    """True when the node's minor input share is at or below the dynamic
    range limit (optionally relaxed by ``slack`` > 1).

    With the paper's 100 nl / 100 pl hardware the dynamic range is 1000, so
    a 1:999 mix (minor share 1/1000) is extreme while 1:99 (1/100) is not.
    """
    node = dag.node(node_id)
    inbound = [e for e in dag.in_edges(node_id) if not e.is_excess]
    if node.kind is not NodeKind.MIX or len(inbound) < 2:
        return False
    minor = min(edge.fraction for edge in inbound)
    return minor * slack <= 1 / limits.dynamic_range


def find_extreme_mixes(
    dag: AssayDAG,
    limits: HardwareLimits,
    *,
    slack: Fraction = Fraction(1),
) -> list[str]:
    """All mix nodes with an extreme minor share, in topological order."""
    return [
        node_id
        for node_id in dag.topological_order()
        if is_extreme_mix(dag, node_id, limits, slack=slack)
    ]


def stage_factors(total_factor: Fraction, depth: int) -> list[Fraction]:
    """Split an overall dilution factor into ``depth`` per-stage factors.

    The product of the returned factors equals ``total_factor`` exactly.
    The first ``depth - 1`` stages use the integer ceiling of the real
    ``depth``-th root (so ``1000 -> [10, 10, 10]`` and ``400 -> [20, 20]``,
    matching the paper's examples); the final stage absorbs the exact
    rational remainder.

    A small ``total_factor`` cannot support an arbitrarily deep cascade
    (every non-final stage factor is an integer >= 2), so the requested
    depth is clamped to ``ceil(log2(total_factor))`` — asking for three
    stages of a 1:3 mix yields the two-stage split.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    if total_factor <= 1:
        raise RatioError(f"dilution factor must exceed 1, got {total_factor}")
    max_depth = max(
        1, ceil(math.log2(float(total_factor)) - 1e-12)
    )
    depth = min(depth, max_depth)
    factors: list[Fraction] = []
    remaining = Fraction(total_factor)
    for stage in range(depth - 1):
        stages_left = depth - stage
        root = float(remaining) ** (1.0 / stages_left)
        factor = Fraction(max(2, ceil(round(root, 9))))
        # Never leave the remainder at or below 1 (a 1:0 mix is meaningless).
        while factor > 2 and remaining / factor <= 1:
            factor -= 1
        factors.append(factor)
        remaining /= factor
    if remaining <= 1:
        raise RatioError(
            f"cannot split factor {total_factor} into {depth} stages"
        )
    factors.append(remaining)
    return factors


def waste_stage_factors(
    total_factor: Fraction,
    limits: HardwareLimits,
    *,
    max_depth: int = 8,
) -> list[Fraction]:
    """Front-loaded stage split minimising cascade discard (waste objective).

    The discard of a cascade is ``sum(1 - 1/f)`` over every stage factor
    *after the first* (stage ``i``'s excess share is fixed by stage
    ``i+1``'s draw, so the first factor is free).  Pushing as much dilution
    as possible into the front therefore shrinks the tail factors and the
    discard with them: a 1:999 mix splits as ``[500, 2]`` (half a stage
    volume discarded) where the default equal split ``[32, 125/4]``
    discards ~97% of one.  Every factor stays strictly inside the dynamic
    range so no stage is itself extreme; the product is exact.
    """
    total = Fraction(total_factor)
    if total <= 1:
        raise RatioError(f"dilution factor must exceed 1, got {total}")
    span = limits.dynamic_range
    # the largest integer factor whose minor share still clears the range
    cap = int(span) - 1 if Fraction(span).denominator == 1 else int(span)
    if cap < 2:
        raise ResourceExhaustedError(
            f"dynamic range {span} leaves no room for cascading"
        )
    factors: list[Fraction] = []
    remaining = total
    while remaining > cap:
        if len(factors) >= max_depth - 1:
            raise ResourceExhaustedError(
                f"no cascade of depth <= {max_depth} brings dilution factor "
                f"{total} within dynamic range {span}"
            )
        # keep the remainder >= 2 so the tail never degenerates to 1:0
        factors.append(Fraction(max(2, min(cap, int(remaining / 2)))))
        remaining /= factors[-1]
    if not factors:
        # not actually extreme for this hardware; fall back to the
        # paper-faithful two-way split
        return stage_factors(total, 2)
    if remaining - 1 <= 1 / (span - 1):
        # a final factor this close to 1 would make the *diluent* side the
        # extreme one; no front-loaded split exists
        raise ResourceExhaustedError(
            f"front-loaded cascade of dilution factor {total} leaves an "
            f"extreme final stage (1:{remaining - 1})"
        )
    factors.append(remaining)
    return factors


def _pick_depth(
    total_factor: Fraction, limits: HardwareLimits, max_depth: int
) -> tuple[int, list[Fraction]]:
    """Iterative deepening: smallest depth whose stages all fit the range."""
    for depth in range(2, max_depth + 1):
        factors = stage_factors(total_factor, depth)
        if all(factor <= limits.dynamic_range for factor in factors):
            return depth, factors
    raise ResourceExhaustedError(
        f"no cascade of depth <= {max_depth} brings dilution factor "
        f"{total_factor} within dynamic range {limits.dynamic_range}"
    )


def cascade_mix(
    dag: AssayDAG,
    node_id: str,
    factors: list[Fraction],
    *,
    share_registry: dict[tuple, str] | None = None,
) -> tuple[AssayDAG, CascadeReport]:
    """Rewrite a two-input mix into a cascade with the given stage factors.

    The original node keeps its id (so downstream consumers are untouched)
    and becomes the *final* stage; fresh intermediate nodes named
    ``<id>.cascade1 ...`` are inserted upstream, each with an excess node
    capturing its statically-known discard.

    ``share_registry`` (waste objective) maps ``(concentrate, diluent,
    factor)`` to an existing stage id producing exactly that dilution.  On a
    hit the stage is reused instead of duplicated: the reuse draws from the
    stage's would-be discard, so its excess share shrinks by the new
    consumer's draw (and the excess node disappears once fully consumed).
    Created stages are entered into the registry for later rewrites.

    Returns the rewritten copy of the DAG plus a provenance report.
    """
    node = dag.node(node_id)
    if node.no_excess:
        raise DagError(
            f"node {node_id!r} is flagged no-excess; cascading would discard "
            "fluid, which the programmer disallowed"
        )
    inbound = [e for e in dag.in_edges(node_id) if not e.is_excess]
    if len(inbound) != 2:
        raise RatioError(
            f"cascading supports two-input mixes; node {node_id!r} has "
            f"{len(inbound)} inputs"
        )
    if len(factors) < 2:
        raise ValueError("a cascade needs at least two stages")
    minor = min(inbound, key=lambda e: e.fraction)
    major = max(inbound, key=lambda e: e.fraction)
    if minor.fraction == major.fraction:
        raise RatioError(f"node {node_id!r} is a 1:1 mix; nothing to cascade")
    total_factor = 1 / minor.fraction
    product = Fraction(1)
    for factor in factors:
        product *= factor
    if product != total_factor:
        raise RatioError(
            f"stage factors {factors} multiply to {product}, expected "
            f"{total_factor} for node {node_id!r}"
        )

    new_dag = dag.copy()
    new_dag.remove_edge(minor.src, node_id)
    new_dag.remove_edge(major.src, node_id)

    intermediates: list[str] = []
    shared: list[str] = []
    concentrate = minor.src
    for stage, factor in enumerate(factors):
        is_last = stage == len(factors) - 1
        stage_id = node_id if is_last else f"{node_id}.cascade{stage + 1}"
        if not is_last and share_registry is not None:
            next_factor = factors[stage + 1]
            key = (concentrate, major.src, factor)
            existing = share_registry.get(key)
            if existing is not None and existing in new_dag:
                stage_node = new_dag.node(existing)
                draw = stage_node.meta.get("cascade_draw", Fraction(0))
                draw += 1 / next_factor
                stage_node.meta["cascade_draw"] = draw
                stage_node.meta["cascade_consumers"] = (
                    stage_node.meta.get("cascade_consumers", 1) + 1
                )
                stage_node.excess_fraction = max(Fraction(0), 1 - draw)
                if stage_node.excess_fraction == 0:
                    for out in list(new_dag.out_edges(existing)):
                        if out.is_excess:
                            new_dag.remove_node(out.dst)
                shared.append(existing)
                concentrate = existing
                continue
        if is_last:
            stage_node = new_dag.node(node_id)
            stage_node.ratio = None  # the declared ratio no longer applies
            stage_node.meta.setdefault("cascade", []).append(
                {"stage": stage + 1, "factor": factor}
            )
        else:
            next_factor = factors[stage + 1]
            inherited = {
                key: node.meta[key]
                for key in ("seq", "duration", "op", "line")
                if key in node.meta
            }
            sharing: dict[str, object] = {}
            if share_registry is not None:
                key = (concentrate, major.src, factor)
                sharing = {
                    "cascade_key": key,
                    "cascade_draw": 1 / next_factor,
                    "cascade_consumers": 1,
                }
                share_registry[key] = stage_id
            stage_node = new_dag.add_node(
                Node(
                    stage_id,
                    NodeKind.MIX,
                    label=f"{node.display_name} cascade {stage + 1}",
                    excess_fraction=1 - 1 / next_factor,
                    meta={
                        **inherited,
                        "cascade_of": node_id,
                        "stage": stage + 1 - len(factors),
                        **sharing,
                    },
                )
            )
            intermediates.append(stage_id)
        new_dag.add_edge(Edge(concentrate, stage_id, 1 / factor))
        new_dag.add_edge(Edge(major.src, stage_id, 1 - 1 / factor))
        if not is_last:
            excess_id = f"{stage_id}.excess"
            new_dag.add_node(
                Node(
                    excess_id,
                    NodeKind.EXCESS,
                    label=f"discard from {stage_id}",
                    meta={"cascade_of": node_id},
                )
            )
            new_dag.add_edge(Edge(stage_id, excess_id, is_excess=True))
        concentrate = stage_id
    report = CascadeReport(
        node=node_id,
        depth=len(factors),
        factors=tuple(factors),
        intermediate_ids=tuple(intermediates),
        shared_ids=tuple(shared),
    )
    return new_dag, report


def cascade_extreme_mixes(
    dag: AssayDAG,
    limits: HardwareLimits,
    *,
    slack: Fraction = Fraction(1),
    max_depth: int = 8,
    objective=None,
) -> tuple[AssayDAG, list[CascadeReport]]:
    """Cascade every extreme mix in the DAG (Figure 6's left-to-right arrow).

    With a waste-aware planning ``objective`` the stage split comes from
    :func:`waste_stage_factors` (front-loaded, minimal discard) and stages
    producing identical dilutions are shared between cascades, each consumer
    drinking from the others' would-be discard.  The default objective keeps
    the paper's iterative-deepening equal split untouched.

    Returns the rewritten DAG and one report per rewritten node; the DAG is
    returned unchanged (same object) when nothing is extreme.
    """
    waste_aware = objective is not None and getattr(
        objective, "waste_aware_cascades", False
    )
    registry: dict[tuple, str] | None = None
    if waste_aware:
        registry = {}
        for node in dag.nodes():
            key = node.meta.get("cascade_key")
            if key is not None:
                registry[tuple(key)] = node.id
    reports: list[CascadeReport] = []
    current = dag
    for node_id in find_extreme_mixes(dag, limits, slack=slack):
        minor = _minor_edge(current, node_id)
        total_factor = 1 / minor.fraction
        if waste_aware:
            factors = waste_stage_factors(
                total_factor, limits, max_depth=max_depth
            )
        else:
            __, factors = _pick_depth(total_factor, limits, max_depth)
        current, report = cascade_mix(
            current, node_id, factors, share_registry=registry
        )
        reports.append(report)
    return current, reports
