"""Human-facing plan reports: what the volume plan means at the bench.

A :class:`FluidRequirements` summarises a volume assignment per *input
fluid* — total volume to load, number of draws, largest single draw — and
per *output* — how much product the plan delivers.  This is the answer to
the question an assay author actually asks ("how much reagent do I need?")
and the quantity the paper's objective function maximises (total output
production).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from .dag import AssayDAG, NodeKind
from .dagsolve import VolumeAssignment

__all__ = [
    "FluidUsage",
    "FluidRequirements",
    "fluid_requirements",
    "WasteBreakdown",
    "waste_breakdown",
    "plan_waste_breakdown",
]


@dataclass(frozen=True)
class FluidUsage:
    """Consumption summary for one input fluid."""

    fluid: str
    total: Fraction
    draws: int
    largest_draw: Fraction
    smallest_draw: Fraction

    def format(self, width: int) -> str:
        return (
            f"  {self.fluid:<{width}}  {float(self.total):8.2f} nl over "
            f"{self.draws} draw(s)  "
            f"[{float(self.smallest_draw):.2f} .. "
            f"{float(self.largest_draw):.2f} nl]"
        )


@dataclass
class FluidRequirements:
    """The bench-side view of a plan."""

    inputs: list[FluidUsage]
    outputs: dict[str, Fraction]
    total_loaded: Fraction
    total_delivered: Fraction

    @property
    def utilisation(self) -> Fraction:
        """Delivered product as a share of loaded reagent — the flip side
        of the excess/discard accounting."""
        if self.total_loaded == 0:
            return Fraction(0)
        return self.total_delivered / self.total_loaded

    def render(self) -> str:
        width = max(
            [len(usage.fluid) for usage in self.inputs] + [len("fluid")]
        )
        lines = ["reagents to load:"]
        lines += [usage.format(width) for usage in self.inputs]
        lines.append("products delivered:")
        for name, volume in sorted(self.outputs.items()):
            lines.append(f"  {name:<{width}}  {float(volume):8.2f} nl")
        lines.append(
            f"utilisation: {float(self.utilisation) * 100:.1f}% "
            f"({float(self.total_delivered):.1f} of "
            f"{float(self.total_loaded):.1f} nl)"
        )
        return "\n".join(lines)


def fluid_requirements(assignment: VolumeAssignment) -> FluidRequirements:
    """Summarise an assignment per input fluid and per output product."""
    dag = assignment.dag
    inputs: list[FluidUsage] = []
    total_loaded = Fraction(0)
    for node in dag.nodes():
        if node.kind is not NodeKind.INPUT:
            continue
        draws = [
            assignment.edge_volume[e.key]
            for e in dag.out_edges(node.id)
            if not e.is_excess
        ]
        if not draws:
            continue
        total = sum(draws, Fraction(0))
        total_loaded += total
        inputs.append(
            FluidUsage(
                fluid=node.display_name,
                total=total,
                draws=len(draws),
                largest_draw=max(draws),
                smallest_draw=min(draws),
            )
        )
    inputs.sort(key=lambda usage: (-usage.total, usage.fluid))

    outputs: dict[str, Fraction] = {}
    total_delivered = Fraction(0)
    for node in dag.outputs():
        if node.kind in (NodeKind.INPUT, NodeKind.CONSTRAINED_INPUT):
            continue
        volume = assignment.node_volume.get(node.id, Fraction(0))
        outputs[node.display_name] = volume
        total_delivered += volume
    return FluidRequirements(
        inputs=inputs,
        outputs=outputs,
        total_loaded=total_loaded,
        total_delivered=total_delivered,
    )


@dataclass
class WasteBreakdown:
    """Where loaded reagent that is *not* delivered ends up.

    Excess-production discards (the paper's "excess fluid" at partially
    used intermediates) are itemised per node; the residual bucket covers
    volume retained inside non-output sinks (parked intermediates, sensed
    samples) rather than pumped to waste.
    """

    loaded: Fraction
    delivered: Fraction
    excess_by_node: dict[str, Fraction]

    @property
    def excess(self) -> Fraction:
        return sum(self.excess_by_node.values(), Fraction(0))

    @property
    def retained(self) -> Fraction:
        """Loaded volume neither delivered nor discarded as excess."""
        return max(self.loaded - self.delivered - self.excess, Fraction(0))

    @property
    def utilisation(self) -> Fraction:
        if self.loaded == 0:
            return Fraction(0)
        return self.delivered / self.loaded

    def render(self) -> str:
        lines = [
            f"waste breakdown ({float(self.loaded):.2f} nl loaded):",
            f"  delivered: {float(self.delivered):8.2f} nl "
            f"({float(self.utilisation) * 100:.1f}%)",
            f"  excess:    {float(self.excess):8.2f} nl",
        ]
        for node, volume in sorted(
            self.excess_by_node.items(), key=lambda item: (-item[1], item[0])
        ):
            lines.append(f"    {node}: {float(volume):.2f} nl")
        if self.retained:
            lines.append(f"  retained:  {float(self.retained):8.2f} nl")
        return "\n".join(lines)


def waste_breakdown(assignment: VolumeAssignment) -> WasteBreakdown:
    """Itemise discarded excess per producing node for an assignment."""
    dag = assignment.dag
    loaded = Fraction(0)
    for node in dag.nodes():
        if node.kind not in (NodeKind.INPUT, NodeKind.CONSTRAINED_INPUT):
            continue
        for edge in dag.out_edges(node.id):
            if not edge.is_excess:
                loaded += assignment.edge_volume.get(edge.key, Fraction(0))

    delivered = Fraction(0)
    for node in dag.outputs():
        if node.kind in (NodeKind.INPUT, NodeKind.CONSTRAINED_INPUT):
            continue
        delivered += assignment.node_volume.get(node.id, Fraction(0))

    excess_by_node: dict[str, Fraction] = {}
    for edge in dag.edges():
        if not edge.is_excess:
            continue
        volume = assignment.edge_volume.get(edge.key, Fraction(0))
        if volume > 0:
            excess_by_node[edge.src] = (
                excess_by_node.get(edge.src, Fraction(0)) + volume
            )
    return WasteBreakdown(
        loaded=loaded,
        delivered=delivered,
        excess_by_node=excess_by_node,
    )


def plan_waste_breakdown(plan, assignment=None) -> WasteBreakdown:
    """Waste accounting for a plan, against its *final* DAG.

    A regeneration plan keeps the best assignment seen across all rounds,
    which can predate a cascade rewrite — pricing the old graph misses
    every excess edge the transform introduced, so the breakdown would
    under-attribute cascade-node discard.  When the assignment's DAG is
    not the plan's, the volumes are re-derived over the post-transform
    graph so the accounting matches what ``repro certify`` checks.
    """
    from .intsolve import exact_dagsolve

    if assignment is None:
        assignment = plan.assignment
    if assignment is None:
        raise ValueError(f"plan for {plan.dag.name!r} has no assignment")
    if assignment.dag is not plan.dag:
        assignment = exact_dagsolve(plan.dag, assignment.limits)
    return waste_breakdown(assignment)
