"""Human-facing plan reports: what the volume plan means at the bench.

A :class:`FluidRequirements` summarises a volume assignment per *input
fluid* — total volume to load, number of draws, largest single draw — and
per *output* — how much product the plan delivers.  This is the answer to
the question an assay author actually asks ("how much reagent do I need?")
and the quantity the paper's objective function maximises (total output
production).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from .dag import AssayDAG, NodeKind
from .dagsolve import VolumeAssignment

__all__ = ["FluidUsage", "FluidRequirements", "fluid_requirements"]


@dataclass(frozen=True)
class FluidUsage:
    """Consumption summary for one input fluid."""

    fluid: str
    total: Fraction
    draws: int
    largest_draw: Fraction
    smallest_draw: Fraction

    def format(self, width: int) -> str:
        return (
            f"  {self.fluid:<{width}}  {float(self.total):8.2f} nl over "
            f"{self.draws} draw(s)  "
            f"[{float(self.smallest_draw):.2f} .. "
            f"{float(self.largest_draw):.2f} nl]"
        )


@dataclass
class FluidRequirements:
    """The bench-side view of a plan."""

    inputs: List[FluidUsage]
    outputs: Dict[str, Fraction]
    total_loaded: Fraction
    total_delivered: Fraction

    @property
    def utilisation(self) -> Fraction:
        """Delivered product as a share of loaded reagent — the flip side
        of the excess/discard accounting."""
        if self.total_loaded == 0:
            return Fraction(0)
        return self.total_delivered / self.total_loaded

    def render(self) -> str:
        width = max(
            [len(usage.fluid) for usage in self.inputs] + [len("fluid")]
        )
        lines = ["reagents to load:"]
        lines += [usage.format(width) for usage in self.inputs]
        lines.append("products delivered:")
        for name, volume in sorted(self.outputs.items()):
            lines.append(f"  {name:<{width}}  {float(volume):8.2f} nl")
        lines.append(
            f"utilisation: {float(self.utilisation) * 100:.1f}% "
            f"({float(self.total_delivered):.1f} of "
            f"{float(self.total_loaded):.1f} nl)"
        )
        return "\n".join(lines)


def fluid_requirements(assignment: VolumeAssignment) -> FluidRequirements:
    """Summarise an assignment per input fluid and per output product."""
    dag = assignment.dag
    inputs: List[FluidUsage] = []
    total_loaded = Fraction(0)
    for node in dag.nodes():
        if node.kind is not NodeKind.INPUT:
            continue
        draws = [
            assignment.edge_volume[e.key]
            for e in dag.out_edges(node.id)
            if not e.is_excess
        ]
        if not draws:
            continue
        total = sum(draws, Fraction(0))
        total_loaded += total
        inputs.append(
            FluidUsage(
                fluid=node.display_name,
                total=total,
                draws=len(draws),
                largest_draw=max(draws),
                smallest_draw=min(draws),
            )
        )
    inputs.sort(key=lambda usage: (-usage.total, usage.fluid))

    outputs: Dict[str, Fraction] = {}
    total_delivered = Fraction(0)
    for node in dag.outputs():
        if node.kind in (NodeKind.INPUT, NodeKind.CONSTRAINED_INPUT):
            continue
        volume = assignment.node_volume.get(node.id, Fraction(0))
        outputs[node.display_name] = volume
        total_delivered += volume
    return FluidRequirements(
        inputs=inputs,
        outputs=outputs,
        total_loaded=total_loaded,
        total_delivered=total_delivered,
    )
