"""The volume-management hierarchy (paper Figure 6).

The paper composes its techniques as a hierarchy of attempts:

1. **DAGSolve** — fast, linear, may fail because of its two artificial
   constraints;
2. **LP** — slower, strictly more general (no flow conservation, free output
   proportions); used only when DAGSolve's assignment is infeasible;
3. **DAG transforms** — if even LP fails, the graph itself is at fault:
   *cascading* rewrites extreme mix ratios, *static replication* rewrites
   heavily-used fluids; the rewritten DAG re-enters the hierarchy;
4. **Regeneration** — the reactive Biostream fallback: accept the best
   infeasible plan and re-execute backward slices at run time whenever a
   fluid actually runs out ("it is better to provide a slow solution than no
   solution").

:class:`VolumeManager` implements the flowchart and records every attempt so
benchmarks and callers can see *why* a plan ended up where it did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from .cascading import CascadeReport
from .dag import AssayDAG
from .dagsolve import VolumeAssignment, Violation
from .errors import VolumeError
from .limits import HardwareLimits, Number
from .objectives import resolve_objective
from .replication import ReplicationReport

__all__ = ["Attempt", "VolumePlan", "VolumeManager"]

TransformReport = CascadeReport | ReplicationReport


@dataclass(frozen=True)
class Attempt:
    """One stage of the hierarchy and how it fared."""

    stage: str          # "dagsolve" | "lp" | "cascade" | "replicate"
    round: int
    succeeded: bool
    detail: str = ""
    violations: Sequence[Violation] = ()
    objective: str = "default"

    def __str__(self) -> str:
        outcome = "ok" if self.succeeded else "failed"
        suffix = f" ({self.detail})" if self.detail else ""
        if self.objective != "default":
            suffix += f" [{self.objective}]"
        return f"round {self.round}: {self.stage} {outcome}{suffix}"


@dataclass
class VolumePlan:
    """Result of running the hierarchy on an assay DAG.

    ``assignment`` is feasible unless ``needs_regeneration`` is set, in
    which case it is the best infeasible attempt (the executor pairs it with
    run-time regeneration).  ``dag`` is the final — possibly transformed —
    graph the assignment refers to.
    """

    dag: AssayDAG
    assignment: VolumeAssignment | None
    status: str  # "dagsolve" | "lp" | "regeneration" | "failed"
    attempts: list[Attempt] = field(default_factory=list)
    transforms: list[TransformReport] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        return self.status in ("dagsolve", "lp")

    @property
    def needs_regeneration(self) -> bool:
        return self.status == "regeneration"

    @property
    def was_transformed(self) -> bool:
        return bool(self.transforms)

    def summary(self) -> str:
        lines = [f"plan for {self.dag.name!r}: {self.status}"]
        lines += [f"  {attempt}" for attempt in self.attempts]
        lines += [f"  transform: {report}" for report in self.transforms]
        if self.assignment is not None:
            key, volume = self.assignment.min_edge()
            lines.append(
                f"  min dispense {float(volume):.4g} nl at {key[0]}->{key[1]}"
            )
        return "\n".join(lines)


class VolumeManager:
    """Figure 6 flowchart: DAGSolve -> LP -> cascade/replicate -> regenerate.

    Parameters mirror the paper's knobs:

    Args:
        limits: hardware capacity and least count.
        use_lp: fall back on LP when DAGSolve's assignment is infeasible.
        allow_cascading: rewrite extreme mix ratios (Section 3.4.1).
        allow_replication: rewrite heavily-used fluids (Section 3.4.2).
        output_tolerance: LP's optional output-to-output band.
        max_rounds: transform-and-retry iterations before giving up.
        max_total_nodes: PLoC resource budget for replication growth.
        objective: planning objective name or instance
            (:mod:`repro.core.objectives`) — ``"default"`` reproduces the
            paper's maximise-delivered-output plans, ``"waste"`` minimises
            loaded-minus-delivered volume at every stage of the hierarchy.
        cache: optional Vnorm memo — any object with a
            ``memo_vnorms(dag, output_targets=None) -> VnormResult`` method
            (in practice :class:`repro.compiler.cache.PlanCache`).  When
            set, the DAGSolve backward pass is served from the memo for
            structurally-identical DAGs, so partitioned sub-DAGs and
            transformed slices hit independently of the enclosing assay.
    """

    def __init__(
        self,
        limits: HardwareLimits,
        *,
        use_lp: bool = True,
        allow_cascading: bool = True,
        allow_replication: bool = True,
        output_tolerance: float | None = 0.1,
        max_rounds: int = 4,
        max_total_nodes: int | None = None,
        cache=None,
        objective="default",
    ) -> None:
        self.limits = limits
        self.use_lp = use_lp
        self.allow_cascading = allow_cascading
        self.allow_replication = allow_replication
        self.output_tolerance = output_tolerance
        self.max_rounds = max_rounds
        self.max_total_nodes = max_total_nodes
        self.cache = cache
        self.objective = resolve_objective(objective)

    def options_dict(self) -> dict:
        """The planning-relevant knobs, for cache fingerprinting."""
        return {
            "use_lp": self.use_lp,
            "allow_cascading": self.allow_cascading,
            "allow_replication": self.allow_replication,
            "output_tolerance": self.output_tolerance,
            "max_rounds": self.max_rounds,
            "max_total_nodes": self.max_total_nodes,
            "objective": self.objective.name,
        }

    # ------------------------------------------------------------------
    def plan(
        self,
        dag: AssayDAG,
        output_targets: Mapping[str, Number] | None = None,
    ) -> VolumePlan:
        """Run the hierarchy and return a :class:`VolumePlan`.

        The flowchart itself lives in the pass manager
        (:mod:`repro.compiler.passes.stages`: ``DAGSolvePass`` ->
        ``LPFallback`` -> ``CascadeTransform`` -> ``ReplicateTransform``
        inside ``HierarchyLoop``); this method is the un-instrumented
        front door for callers that plan a DAG outside a full compile.
        """
        # local import: the pass machinery consumes this module's types
        from ..compiler.passes.stages import run_hierarchy

        return run_hierarchy(dag, self, output_targets)

    # ------------------------------------------------------------------
    @staticmethod
    def _better(
        current: VolumeAssignment | None, candidate: VolumeAssignment
    ) -> VolumeAssignment:
        """Keep the attempt with the largest minimum dispensed volume."""
        if current is None:
            return candidate
        try:
            if candidate.min_edge_volume() > current.min_edge_volume():
                return candidate
        except VolumeError:
            return current
        return current
