"""Hardware limits relevant to volume management.

The paper evaluates with a *default maximum* of 100 nl per functional unit /
reservoir and a *least count* of 100 pl (= 0.1 nl), citing PDMS valve work
[Unger et al. 2000].  All core algorithms are parameterised over these two
numbers only; the full machine description (functional-unit inventory,
channel topology, ...) lives in :mod:`repro.machine.spec` and embeds a
:class:`HardwareLimits`.

Volumes are expressed in **nanoliters** throughout the code base, and the
core keeps them as :class:`fractions.Fraction` so feasibility checks are
exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

__all__ = ["HardwareLimits", "PAPER_LIMITS", "as_fraction"]

Number = int | float | str | Fraction


def as_fraction(value: Number) -> Fraction:
    """Convert ``value`` to an exact :class:`Fraction`.

    Floats are converted via their shortest repeating decimal using
    ``Fraction(str(value))`` so that ``as_fraction(0.1) == Fraction(1, 10)``
    rather than the binary artefact ``3602879701896397/36028797018963968``.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, float):
        return Fraction(str(value))
    return Fraction(value)


@dataclass(frozen=True)
class HardwareLimits:
    """Maximum capacity and least count of the PLoC fluid path.

    Attributes:
        max_capacity: largest volume (nl) any reservoir or functional unit
            may hold; assignments above this overflow.
        least_count: smallest volume (nl) the metering pumps can transport;
            assignments below this underflow.  Every dispensed volume must
            also be an integer multiple of this resolution (the IVol
            requirement).
    """

    max_capacity: Fraction
    least_count: Fraction

    def __post_init__(self) -> None:
        object.__setattr__(self, "max_capacity", as_fraction(self.max_capacity))
        object.__setattr__(self, "least_count", as_fraction(self.least_count))
        if self.least_count <= 0:
            raise ValueError("least_count must be positive")
        if self.max_capacity < self.least_count:
            raise ValueError("max_capacity must be at least the least count")

    @property
    def dynamic_range(self) -> Fraction:
        """Ratio of max capacity to least count.

        A mix whose extreme side exceeds this ratio is infeasible without
        cascading (paper Section 3.4.1).
        """
        return self.max_capacity / self.least_count

    def fits(self, volume: Number) -> bool:
        """True when ``least_count <= volume <= max_capacity``."""
        vol = as_fraction(volume)
        return self.least_count <= vol <= self.max_capacity

    def quantize(self, volume: Number) -> Fraction:
        """Round ``volume`` to the nearest integer multiple of least count.

        Ties round half up, matching the paper's "round to the closest
        integer multiple of the least-count" (Section 4.2).
        """
        vol = as_fraction(volume)
        steps = vol / self.least_count
        whole = steps.numerator // steps.denominator
        remainder = steps - whole
        if remainder * 2 >= 1:
            whole += 1
        return whole * self.least_count


#: The configuration used throughout the paper's evaluation (Section 4.2):
#: 100 nl default maximum, 100 pl (0.1 nl) least count.
PAPER_LIMITS = HardwareLimits(max_capacity=Fraction(100), least_count=Fraction(1, 10))
