"""Float fast path for DAGSolve: the run-time flavour.

The exact-rational DAGSolve in :mod:`repro.core.dagsolve` is the compile-time
reference: deterministic, testable against the paper's fractions.  At *run
time* the PLoC's electronic control would use plain machine arithmetic (the
paper reports "a few milliseconds on a 750-MHz processor" for glycomics),
and exact rationals are needlessly slow there — the enzyme10 assay's
1:(10^k - 1) ratios make Fraction denominators explode.

:func:`fast_dagsolve` runs the same two passes over floats.  It mirrors the
exact solver bit-for-bit in structure (same traversal, same constraint
logic) and is validated against it in ``tests/core/test_fastpath.py``; the
Table 2 runtime benchmark uses it as the "DAGSolve" column, and reports the
exact flavour separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from .dag import AssayDAG, NodeKind
from .errors import DagError, VolumeError
from .limits import HardwareLimits

__all__ = ["FastAssignment", "fast_vnorms", "fast_dagsolve"]

EdgeKey = Tuple[str, str]


@dataclass
class FastAssignment:
    """Float volume assignment (node production / input side, edges)."""

    node_volume: Dict[str, float]
    node_input_volume: Dict[str, float]
    edge_volume: Dict[EdgeKey, float]
    scale: float
    min_edge: Optional[Tuple[EdgeKey, float]] = None
    #: feasibility with a small relative epsilon for float error.
    feasible: bool = True
    violations: List[str] = field(default_factory=list)


def fast_vnorms(
    dag: AssayDAG,
    output_targets: Optional[Mapping[str, float]] = None,
) -> Tuple[Dict[str, float], Dict[str, float], Dict[EdgeKey, float]]:
    """Backward pass over floats; same semantics as
    :func:`repro.core.dagsolve.compute_vnorms`."""
    targets = {k: float(v) for k, v in (output_targets or {}).items()}
    output_ids = {node.id for node in dag.outputs()}
    node_vnorm: Dict[str, float] = {}
    node_input: Dict[str, float] = {}
    edge_vnorm: Dict[EdgeKey, float] = {}
    for node_id in dag.reverse_topological_order():
        node = dag.node(node_id)
        if node.kind is NodeKind.EXCESS:
            continue
        if node.unknown_volume and dag.out_degree(node_id) > 0:
            raise DagError(
                f"node {node_id!r} has unknown volume and uses; partition "
                "first"
            )
        used = 0.0
        for edge in dag.out_edges(node_id):
            if not edge.is_excess:
                used += edge_vnorm[edge.key]
        if node_id in output_ids:
            production = targets.get(node_id, 1.0)
        else:
            production = used / (1.0 - float(node.excess_fraction))
        node_vnorm[node_id] = production
        if node.excess_fraction > 0:
            excess = production * float(node.excess_fraction)
            for edge in dag.out_edges(node_id):
                if edge.is_excess:
                    edge_vnorm[edge.key] = excess
                    node_vnorm[edge.dst] = excess
                    node_input[edge.dst] = excess
        if node.kind in (NodeKind.INPUT, NodeKind.CONSTRAINED_INPUT):
            node_input[node_id] = production
            continue
        fraction_out = (
            1.0 if node.unknown_volume else float(node.output_fraction)
        )
        input_total = production / fraction_out
        node_input[node_id] = input_total
        for edge in dag.in_edges(node_id):
            edge_vnorm[edge.key] = float(edge.fraction) * input_total
    return node_vnorm, node_input, edge_vnorm


def fast_dagsolve(
    dag: AssayDAG,
    limits: HardwareLimits,
    output_targets: Optional[Mapping[str, float]] = None,
    *,
    epsilon: float = 1e-9,
) -> FastAssignment:
    """Both DAGSolve passes over floats."""
    node_vnorm, node_input, edge_vnorm = fast_vnorms(dag, output_targets)
    capacity_default = float(limits.max_capacity)
    least = float(limits.least_count)
    scale = float("inf")
    for node in dag.nodes():
        if node.kind is NodeKind.EXCESS:
            continue
        load = max(node_vnorm[node.id], node_input[node.id])
        if load <= 0:
            continue
        capacity = float(node.capacity) if node.capacity else capacity_default
        scale = min(scale, capacity / load)
        if node.kind is NodeKind.CONSTRAINED_INPUT:
            if node.available_volume is None:
                raise DagError(
                    f"constrained input {node.id!r} lacks a measured volume"
                )
            vnorm = node_vnorm[node.id]
            if vnorm > 0:
                scale = min(scale, float(node.available_volume) / vnorm)
    if scale == float("inf"):
        raise VolumeError("DAG has no positive Vnorm; nothing to dispense")

    node_volume = {k: v * scale for k, v in node_vnorm.items()}
    node_input_volume = {k: v * scale for k, v in node_input.items()}
    edge_volume = {k: v * scale for k, v in edge_vnorm.items()}

    violations: List[str] = []
    min_edge: Optional[Tuple[EdgeKey, float]] = None
    tolerance = least * epsilon + epsilon
    for edge in dag.edges():
        volume = edge_volume[edge.key]
        if edge.is_excess:
            continue
        if min_edge is None or volume < min_edge[1]:
            min_edge = (edge.key, volume)
        if volume < least - tolerance:
            violations.append(
                f"underflow {edge.src}->{edge.dst}: {volume:.6g} nl"
            )
    for node in dag.nodes():
        if node.kind is NodeKind.EXCESS:
            continue
        capacity = float(node.capacity) if node.capacity else capacity_default
        load = max(node_volume[node.id], node_input_volume[node.id])
        if load > capacity * (1 + epsilon):
            violations.append(f"overflow {node.id}: {load:.6g} nl")
    return FastAssignment(
        node_volume=node_volume,
        node_input_volume=node_input_volume,
        edge_volume=edge_volume,
        scale=scale,
        min_edge=min_edge,
        feasible=not violations,
        violations=violations,
    )
