"""Float fast path for DAGSolve: the run-time flavour.

The exact-rational DAGSolve in :mod:`repro.core.dagsolve` is the compile-time
reference: deterministic, testable against the paper's fractions.  At *run
time* the PLoC's electronic control would use plain machine arithmetic (the
paper reports "a few milliseconds on a 750-MHz processor" for glycomics),
and exact rationals are needlessly slow there — the enzyme10 assay's
1:(10^k - 1) ratios make Fraction denominators explode.

:func:`fast_dagsolve` runs the same two passes over floats.  It mirrors the
exact solver bit-for-bit in structure (same traversal, same constraint
logic) and is validated against it in ``tests/core/test_fastpath.py``; the
Table 2 runtime benchmark uses it as the "DAGSolve" column, and reports the
exact flavour separately.

The hot loop runs over a :class:`FastContext`: flat per-node tuples of
pre-resolved adjacency and ratio data, built once per DAG instead of going
through ``dag.node()`` / ``dag.in_edges()`` dict lookups and list
construction on every pass.  Callers that re-solve the same frozen DAG
(runtime re-dispensing, the scaling benchmark) should build the context
once via :func:`prepare_fast` and pass it in place of the DAG; passing a
bare :class:`AssayDAG` still works and builds a throwaway context.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

from .dag import AssayDAG, NodeKind
from .errors import DagError, VolumeError
from .limits import HardwareLimits

__all__ = [
    "FastAssignment",
    "FastContext",
    "prepare_fast",
    "fast_vnorms",
    "fast_dagsolve",
]

EdgeKey = tuple[str, str]


@dataclass
class FastAssignment:
    """Float volume assignment (node production / input side, edges)."""

    node_volume: dict[str, float]
    node_input_volume: dict[str, float]
    edge_volume: dict[EdgeKey, float]
    scale: float
    min_edge: tuple[EdgeKey, float] | None = None
    #: feasibility with a small relative epsilon for float error.
    feasible: bool = True
    violations: list[str] = field(default_factory=list)


class FastContext:
    """Precomputed per-DAG tables for the float solver.

    One row per non-excess node in reverse topological order:
    ``(node_id, is_output, inv_keep, in_edges, out_keys, excess_out,
    is_input, fraction_out, excess_share)`` where ``in_edges`` is a tuple
    of ``(edge_key, fraction)`` floats and ``excess_out`` a tuple of
    ``(edge_key, dst_id)``.  A second table drives the feasibility scan:
    ``(node_id, capacity, is_constrained, available, vnorm_key)``.

    The context snapshots the DAG's *structure*; it must be rebuilt after
    any structural mutation.  ``available_volume`` of constrained inputs is
    re-read at build time too, so runtime callers should rebuild after
    recording measurements (cheap: one linear scan).
    """

    __slots__ = ("dag", "rows", "checks", "check_edges", "output_ids")

    def __init__(self, dag: AssayDAG) -> None:
        self.dag = dag
        self.output_ids = frozenset(node.id for node in dag.outputs())
        rows = []
        for node_id in dag.reverse_topological_order():
            node = dag.node(node_id)
            if node.kind is NodeKind.EXCESS:
                continue
            if node.unknown_volume and dag.out_degree(node_id) > 0:
                raise DagError(
                    f"node {node_id!r} has unknown volume and uses; "
                    "partition first"
                )
            in_edges = tuple(
                (edge.key, float(edge.fraction))
                for edge in dag.in_edges(node_id)
            )
            out_keys = tuple(
                edge.key
                for edge in dag.out_edges(node_id)
                if not edge.is_excess
            )
            excess_out = tuple(
                (edge.key, edge.dst)
                for edge in dag.out_edges(node_id)
                if edge.is_excess
            )
            is_input = node.kind in (
                NodeKind.INPUT,
                NodeKind.CONSTRAINED_INPUT,
            )
            fraction_out = (
                1.0 if node.unknown_volume else float(node.output_fraction)
            )
            excess_share = float(node.excess_fraction)
            rows.append(
                (
                    node_id,
                    node_id in self.output_ids,
                    1.0 - excess_share,
                    in_edges,
                    out_keys,
                    excess_out,
                    is_input,
                    fraction_out,
                    excess_share,
                )
            )
        self.rows = tuple(rows)
        self.checks = tuple(
            (
                node.id,
                float(node.capacity) if node.capacity else None,
                node.kind is NodeKind.CONSTRAINED_INPUT,
                (
                    float(node.available_volume)
                    if node.available_volume is not None
                    else None
                ),
            )
            for node in dag.nodes()
            if node.kind is not NodeKind.EXCESS
        )
        self.check_edges = tuple(
            (edge.key, edge.src, edge.dst)
            for edge in dag.edges()
            if not edge.is_excess
        )


def prepare_fast(dag: AssayDAG) -> FastContext:
    """Build the reusable solver context for a frozen DAG."""
    return FastContext(dag)


def _context(dag_or_context: AssayDAG | FastContext) -> FastContext:
    if isinstance(dag_or_context, FastContext):
        return dag_or_context
    return FastContext(dag_or_context)


def fast_vnorms(
    dag: AssayDAG | FastContext,
    output_targets: Mapping[str, float] | None = None,
) -> tuple[dict[str, float], dict[str, float], dict[EdgeKey, float]]:
    """Backward pass over floats; same semantics as
    :func:`repro.core.dagsolve.compute_vnorms`."""
    context = _context(dag)
    targets = {k: float(v) for k, v in (output_targets or {}).items()}
    node_vnorm: dict[str, float] = {}
    node_input: dict[str, float] = {}
    edge_vnorm: dict[EdgeKey, float] = {}
    for (
        node_id,
        is_output,
        inv_keep,
        in_edges,
        out_keys,
        excess_out,
        is_input,
        fraction_out,
        excess_share,
    ) in context.rows:
        if is_output:
            production = targets.get(node_id, 1.0)
        else:
            used = 0.0
            for key in out_keys:
                used += edge_vnorm[key]
            production = used / inv_keep
        node_vnorm[node_id] = production
        if excess_share > 0.0:
            excess = production * excess_share
            for key, dst in excess_out:
                edge_vnorm[key] = excess
                node_vnorm[dst] = excess
                node_input[dst] = excess
        if is_input:
            node_input[node_id] = production
            continue
        input_total = production / fraction_out
        node_input[node_id] = input_total
        for key, fraction in in_edges:
            edge_vnorm[key] = fraction * input_total
    return node_vnorm, node_input, edge_vnorm


def fast_dagsolve(
    dag: AssayDAG | FastContext,
    limits: HardwareLimits,
    output_targets: Mapping[str, float] | None = None,
    *,
    epsilon: float = 1e-9,
) -> FastAssignment:
    """Both DAGSolve passes over floats."""
    context = _context(dag)
    node_vnorm, node_input, edge_vnorm = fast_vnorms(context, output_targets)
    capacity_default = float(limits.max_capacity)
    least = float(limits.least_count)
    scale = float("inf")
    for node_id, capacity, is_constrained, available in context.checks:
        load = max(node_vnorm[node_id], node_input[node_id])
        if load <= 0:
            continue
        scale = min(scale, (capacity or capacity_default) / load)
        if is_constrained:
            if available is None:
                raise DagError(
                    f"constrained input {node_id!r} lacks a measured volume"
                )
            vnorm = node_vnorm[node_id]
            if vnorm > 0:
                scale = min(scale, available / vnorm)
    if scale == float("inf"):
        raise VolumeError("DAG has no positive Vnorm; nothing to dispense")

    node_volume = {k: v * scale for k, v in node_vnorm.items()}
    node_input_volume = {k: v * scale for k, v in node_input.items()}
    edge_volume = {k: v * scale for k, v in edge_vnorm.items()}

    violations: list[str] = []
    min_edge: tuple[EdgeKey, float] | None = None
    tolerance = least * epsilon + epsilon
    for key, src, dst in context.check_edges:
        volume = edge_volume[key]
        if min_edge is None or volume < min_edge[1]:
            min_edge = (key, volume)
        if volume < least - tolerance:
            violations.append(f"underflow {src}->{dst}: {volume:.6g} nl")
    for node_id, capacity, __, __avail in context.checks:
        load = max(node_volume[node_id], node_input_volume[node_id])
        if load > (capacity or capacity_default) * (1 + epsilon):
            violations.append(f"overflow {node_id}: {load:.6g} nl")
    return FastAssignment(
        node_volume=node_volume,
        node_input_volume=node_input_volume,
        edge_volume=edge_volume,
        scale=scale,
        min_edge=min_edge,
        feasible=not violations,
        violations=violations,
    )
