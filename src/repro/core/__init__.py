"""Core volume-management algorithms (the paper's contribution).

Public surface:

* :class:`AssayDAG` / :class:`Node` / :class:`Edge` — the assay IR;
* :func:`dagsolve` — the linear-time solver (Section 3.3);
* :func:`lp_solve` / :func:`ilp_solve` — the LP/ILP formulations (3.2);
* :func:`round_assignment` — RVol -> IVol rounding (4.2);
* :func:`cascade_extreme_mixes` / :func:`iterative_replication` — the DAG
  transforms for extreme ratios and numerous uses (3.4);
* :class:`VolumeManager` — the Figure 6 hierarchy;
* :func:`partition_unknown_volumes` / :class:`RuntimePlanner` — the
  statically-unknown case (3.5).
"""

from .cascading import (
    CascadeReport,
    cascade_extreme_mixes,
    cascade_mix,
    find_extreme_mixes,
    is_extreme_mix,
    stage_factors,
)
from .dag import AssayDAG, Edge, Node, NodeKind, fractions_from_ratio
from .dagsolve import (
    VnormResult,
    Violation,
    VolumeAssignment,
    compute_vnorms,
    dagsolve,
    dispense,
    scale_for_required_outputs,
)
from .fastpath import FastAssignment, fast_dagsolve, fast_vnorms
from .errors import (
    CycleError,
    DagError,
    InfeasibleError,
    OverflowError_,
    PartitionError,
    RatioError,
    ResourceExhaustedError,
    SolverError,
    UnderflowError,
    VolumeError,
)
from .hierarchy import Attempt, VolumeManager, VolumePlan
from .ilp import ilp_solve
from .limits import PAPER_LIMITS, HardwareLimits, as_fraction
from .lp import lp_solve
from .lpmodel import LPModel, build_lp_model
from .partition import (
    ConstrainedInputSpec,
    Partition,
    PartitionedAssay,
    measurement_epochs,
    partition_unknown_volumes,
)
from .report import FluidRequirements, FluidUsage, fluid_requirements
from .replication import (
    ReplicationReport,
    iterative_replication,
    needed_copies,
    replicate_node,
)
from .rounding import (
    max_ratio_error,
    mean_ratio_error,
    ratio_errors,
    round_assignment,
    round_assignment_ratio_preserving,
)
from .runtime_assign import RuntimePlanner, RuntimeSession

__all__ = [
    # dag
    "AssayDAG",
    "Node",
    "Edge",
    "NodeKind",
    "fractions_from_ratio",
    # limits
    "HardwareLimits",
    "PAPER_LIMITS",
    "as_fraction",
    # dagsolve
    "VnormResult",
    "Violation",
    "VolumeAssignment",
    "compute_vnorms",
    "dispense",
    "dagsolve",
    "scale_for_required_outputs",
    "FastAssignment",
    "fast_dagsolve",
    "fast_vnorms",
    # lp / ilp
    "LPModel",
    "build_lp_model",
    "lp_solve",
    "ilp_solve",
    # rounding
    "round_assignment",
    "FluidRequirements",
    "FluidUsage",
    "fluid_requirements",
    "round_assignment_ratio_preserving",
    "ratio_errors",
    "max_ratio_error",
    "mean_ratio_error",
    # transforms
    "CascadeReport",
    "is_extreme_mix",
    "find_extreme_mixes",
    "stage_factors",
    "cascade_mix",
    "cascade_extreme_mixes",
    "ReplicationReport",
    "replicate_node",
    "needed_copies",
    "iterative_replication",
    # hierarchy
    "VolumeManager",
    "VolumePlan",
    "Attempt",
    # statically-unknown
    "ConstrainedInputSpec",
    "Partition",
    "PartitionedAssay",
    "measurement_epochs",
    "partition_unknown_volumes",
    "RuntimePlanner",
    "RuntimeSession",
    # errors
    "VolumeError",
    "DagError",
    "CycleError",
    "RatioError",
    "UnderflowError",
    "OverflowError_",
    "InfeasibleError",
    "ResourceExhaustedError",
    "PartitionError",
    "SolverError",
]
