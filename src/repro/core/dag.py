"""Assay DAG intermediate representation (paper Section 3.1).

An assay is represented as a directed acyclic graph.  Nodes are operations
(typically volume-aggregating operations such as mixes) plus the input fluids;
edges represent *true dependences* — fluid flowing from the producer to the
consumer — and are annotated with the fraction of the consumer's total input
that the producing fluid contributes.

For the paper's running example (Figure 2)::

    K = mix A:B in ratio 1:4      ->  edge A->K fraction 1/5, B->K fraction 4/5
    L = mix B:C in ratio 2:1      ->  edge B->L fraction 2/3, C->L fraction 1/3
    M = mix K:L in ratio 2:1      ->  edge K->M fraction 2/3, L->M fraction 1/3
    N = mix L:C in ratio 2:3      ->  edge L->N fraction 2/5, C->N fraction 3/5

Conventions used throughout the code base:

* An **input node** has no inbound edges (a source fluid loaded from a port).
* An **output node** has no outbound edges; DAGSolve normalises all output
  volumes to ``Vnorm = 1``.
* Each non-input node's inbound edge fractions sum to exactly 1; all ratio
  bookkeeping is done with :class:`fractions.Fraction` so this is checkable
  without tolerance.
* ``output_fraction`` captures the paper's constraint class 5 ("relative node
  output to input"): a separator that keeps 30% of its input has
  ``output_fraction = 3/10``.  Flow-conserving operations use 1.
* ``unknown_volume`` marks operations (separations, reactive mixes) whose
  output volume can only be measured at run time (paper Section 3.5); the
  partitioner cuts the DAG at these nodes.
* **Excess nodes** (:attr:`NodeKind.EXCESS`) model the statically computable
  discarded output introduced by cascading (paper Section 3.4.1, Figure 7).
  Their companion edge is flagged ``is_excess`` and the producing node
  records the discarded share in ``excess_fraction``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum, unique
from fractions import Fraction
from collections.abc import Iterable, Iterator, Mapping, Sequence

from .errors import CycleError, DagError, RatioError
from .limits import Number, as_fraction

__all__ = [
    "NodeKind",
    "Node",
    "Edge",
    "AssayDAG",
    "fractions_from_ratio",
]


@unique
class NodeKind(Enum):
    """Operation type of a DAG node."""

    INPUT = "input"
    #: run-time measured fluid entering a partition (Section 3.5).
    CONSTRAINED_INPUT = "constrained_input"
    MIX = "mix"
    HEAT = "heat"          # incubate / concentrate: flow-conserving unary ops
    SEPARATE = "separate"  # output volume is a fraction of input, often unknown
    SENSE = "sense"        # non-destructive read; kept for completeness
    OUTPUT = "output"      # explicit sink (rarely needed; leaves are outputs)
    EXCESS = "excess"      # statically computed discard from cascading

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NodeKind.{self.name}"


def fractions_from_ratio(ratio: Sequence[Number]) -> list[Fraction]:
    """Convert a mix ratio such as ``(1, 4)`` into fractions ``[1/5, 4/5]``.

    Raises:
        RatioError: if the ratio is empty or contains a non-positive part.
    """
    parts = [as_fraction(part) for part in ratio]
    if not parts:
        raise RatioError("mix ratio must have at least one part")
    if any(part <= 0 for part in parts):
        raise RatioError(f"mix ratio parts must be positive, got {ratio!r}")
    total = sum(parts)
    return [part / total for part in parts]


@dataclass
class Node:
    """A single operation (or input fluid) in the assay DAG.

    Attributes:
        id: unique identifier within the DAG.
        kind: operation type.
        ratio: declared mix ratio as integers, kept for provenance and for
            the cascading transform (which needs the original skew).
        output_fraction: output volume relative to total input volume
            (constraint class 5).  ``None`` only while ``unknown_volume``.
        unknown_volume: output volume must be measured at run time.
        excess_fraction: share of this node's production that is discarded
            through an excess edge (0 for ordinary nodes).
        min_volume: optional functional-unit minimum beyond the global least
            count (e.g. a separator's minimum loadable volume).
        capacity: optional per-node capacity overriding the machine maximum.
        no_excess: programmer-flagged fluid for which excess production is
            disallowed (safety/cost/regulation; Section 3.4.1).
        available_volume: for CONSTRAINED_INPUT nodes, the measured volume
            available at run time (``None`` until measured).
        label: human-readable name (fluid or operation name).
        meta: free-form annotations (source location, provenance of
            transforms, ...).
    """

    id: str
    kind: NodeKind
    ratio: tuple[int, ...] | None = None
    output_fraction: Fraction | None = Fraction(1)
    unknown_volume: bool = False
    excess_fraction: Fraction = Fraction(0)
    min_volume: Fraction | None = None
    capacity: Fraction | None = None
    no_excess: bool = False
    available_volume: Fraction | None = None
    label: str | None = None
    meta: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.output_fraction is not None:
            self.output_fraction = as_fraction(self.output_fraction)
        self.excess_fraction = as_fraction(self.excess_fraction)
        if not (0 <= self.excess_fraction < 1):
            raise RatioError(
                f"node {self.id!r}: excess_fraction must be in [0, 1), "
                f"got {self.excess_fraction}"
            )
        if self.min_volume is not None:
            self.min_volume = as_fraction(self.min_volume)
        if self.capacity is not None:
            self.capacity = as_fraction(self.capacity)
        if self.available_volume is not None:
            self.available_volume = as_fraction(self.available_volume)

    @property
    def display_name(self) -> str:
        return self.label or self.id

    def copy(self) -> "Node":
        return replace(self, meta=dict(self.meta))


@dataclass
class Edge:
    """Fluid flow from ``src`` to ``dst``.

    ``fraction`` is the share of ``dst``'s *total input volume* contributed
    by ``src``.  All inbound fractions of a node sum to 1 (validated by
    :meth:`AssayDAG.validate`).  Excess edges are exempt: their volume is a
    share of the *producer's* output instead, recorded on the producer as
    ``excess_fraction``.
    """

    src: str
    dst: str
    fraction: Fraction = Fraction(1)
    is_excess: bool = False

    def __post_init__(self) -> None:
        self.fraction = as_fraction(self.fraction)
        if self.fraction <= 0:
            raise RatioError(
                f"edge {self.src!r}->{self.dst!r}: fraction must be positive"
            )

    @property
    def key(self) -> tuple[str, str]:
        return (self.src, self.dst)

    def copy(self) -> "Edge":
        return replace(self)


class AssayDAG:
    """Mutable assay DAG with exact-rational edge annotations.

    The class enforces referential integrity eagerly (edges may only connect
    existing nodes; parallel edges are rejected) and structural invariants
    (acyclicity, fractions summing to one) on demand via :meth:`validate`.
    """

    def __init__(self, name: str = "assay") -> None:
        self.name = name
        self._nodes: dict[str, Node] = {}
        self._edges: dict[tuple[str, str], Edge] = {}
        self._out: dict[str, list[tuple[str, str]]] = {}
        self._in: dict[str, list[tuple[str, str]]] = {}
        #: memoized topological order; None until computed, dropped on any
        #: structural mutation.  DAGSolve/LP/certify all walk the same
        #: frozen DAG repeatedly, so the Kahn pass would otherwise rerun
        #: on every pass.
        self._topo_cache: list[str] | None = None
        #: structure-derived caches (e.g. the integer solver's flat
        #: :class:`repro.core.intsolve.ExactContext`), cleared together
        #: with the topological order on any structural mutation.  Entries
        #: must not bake in mutable node attributes such as ``capacity``
        #: or ``available_volume``.
        self._derived: dict[str, object] = {}

    def _invalidate_structure(self) -> None:
        self._topo_cache = None
        if self._derived:
            self._derived.clear()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        if node.id in self._nodes:
            raise DagError(f"duplicate node id {node.id!r}")
        self._invalidate_structure()
        self._nodes[node.id] = node
        self._out[node.id] = []
        self._in[node.id] = []
        return node

    def add_edge(self, edge: Edge) -> Edge:
        if edge.src not in self._nodes:
            raise DagError(f"edge source {edge.src!r} not in DAG")
        if edge.dst not in self._nodes:
            raise DagError(f"edge destination {edge.dst!r} not in DAG")
        if edge.src == edge.dst:
            raise DagError(f"self-loop on {edge.src!r}")
        if edge.key in self._edges:
            raise DagError(f"parallel edge {edge.src!r}->{edge.dst!r}")
        self._invalidate_structure()
        self._edges[edge.key] = edge
        self._out[edge.src].append(edge.key)
        self._in[edge.dst].append(edge.key)
        return edge

    # -- convenience constructors used by the assay library and tests -----
    def add_input(self, node_id: str, *, label: str | None = None, **kwargs) -> Node:
        """Add a source fluid (no inbound edges)."""
        return self.add_node(
            Node(node_id, NodeKind.INPUT, label=label or node_id, **kwargs)
        )

    def add_mix(
        self,
        node_id: str,
        parts: Mapping[str, Number] | Sequence[tuple[str, Number]],
        *,
        label: str | None = None,
        **kwargs,
    ) -> Node:
        """Add a mix of existing nodes in the given integer ratio.

        ``parts`` maps producing node id -> ratio part, e.g.
        ``dag.add_mix("K", {"A": 1, "B": 4})`` for "mix A:B in ratio 1:4".
        """
        items = list(parts.items()) if isinstance(parts, Mapping) else list(parts)
        if not items:
            raise RatioError(f"mix {node_id!r} needs at least one source")
        ratio = tuple(int(part) for __, part in items)
        fractions = fractions_from_ratio([part for __, part in items])
        node = self.add_node(
            Node(node_id, NodeKind.MIX, ratio=ratio, label=label or node_id, **kwargs)
        )
        for (src, __), fraction in zip(items, fractions):
            self.add_edge(Edge(src, node_id, fraction))
        return node

    def add_unary(
        self,
        node_id: str,
        src: str,
        *,
        kind: NodeKind = NodeKind.HEAT,
        output_fraction: Number = 1,
        unknown_volume: bool = False,
        label: str | None = None,
        **kwargs,
    ) -> Node:
        """Add a single-input operation (incubate, separate, sense, ...)."""
        node = self.add_node(
            Node(
                node_id,
                kind,
                output_fraction=None if unknown_volume else as_fraction(output_fraction),
                unknown_volume=unknown_volume,
                label=label or node_id,
                **kwargs,
            )
        )
        self.add_edge(Edge(src, node_id, Fraction(1)))
        return node

    def remove_edge(self, src: str, dst: str) -> Edge:
        key = (src, dst)
        if key not in self._edges:
            raise DagError(f"no edge {src!r}->{dst!r}")
        self._invalidate_structure()
        edge = self._edges.pop(key)
        self._out[src].remove(key)
        self._in[dst].remove(key)
        return edge

    def remove_node(self, node_id: str) -> Node:
        """Remove a node and all its incident edges."""
        if node_id not in self._nodes:
            raise DagError(f"no node {node_id!r}")
        for key in list(self._in[node_id]):
            self.remove_edge(*key)
        for key in list(self._out[node_id]):
            self.remove_edge(*key)
        self._invalidate_structure()
        del self._in[node_id]
        del self._out[node_id]
        return self._nodes.pop(node_id)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def node(self, node_id: str) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise DagError(f"no node {node_id!r}") from None

    def edge(self, src: str, dst: str) -> Edge:
        try:
            return self._edges[(src, dst)]
        except KeyError:
            raise DagError(f"no edge {src!r}->{dst!r}") from None

    def has_edge(self, src: str, dst: str) -> bool:
        return (src, dst) in self._edges

    def nodes(self) -> Iterator[Node]:
        return iter(list(self._nodes.values()))

    def node_ids(self) -> list[str]:
        return list(self._nodes)

    def edges(self) -> Iterator[Edge]:
        return iter(list(self._edges.values()))

    def in_edges(self, node_id: str) -> list[Edge]:
        return [self._edges[key] for key in self._in[node_id]]

    def out_edges(self, node_id: str) -> list[Edge]:
        return [self._edges[key] for key in self._out[node_id]]

    def predecessors(self, node_id: str) -> list[str]:
        return [src for (src, __) in self._in[node_id]]

    def successors(self, node_id: str) -> list[str]:
        return [dst for (__, dst) in self._out[node_id]]

    def in_degree(self, node_id: str) -> int:
        return len(self._in[node_id])

    def out_degree(self, node_id: str) -> int:
        return len(self._out[node_id])

    def inputs(self) -> list[Node]:
        """Source nodes: INPUT and CONSTRAINED_INPUT kinds plus any node
        without inbound edges."""
        return [
            node
            for node in self._nodes.values()
            if not self._in[node.id]
        ]

    def outputs(self) -> list[Node]:
        """Sink nodes (no outbound edges), excluding excess sinks.

        The paper's DAGSolve normalises these to ``Vnorm = 1``.  Excess
        nodes are sinks too, but their volume is derived, not normalised.
        """
        return [
            node
            for node in self._nodes.values()
            if not self._out[node.id] and node.kind is not NodeKind.EXCESS
        ]

    def excess_nodes(self) -> list[Node]:
        return [n for n in self._nodes.values() if n.kind is NodeKind.EXCESS]

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def topological_order(self) -> list[str]:
        """Kahn's algorithm; raises :class:`CycleError` on cycles.

        Ties are broken by insertion order so results are deterministic.
        The order is memoized until the next structural mutation; callers
        receive a fresh list each time, so mutating the result is safe.
        """
        if self._topo_cache is not None:
            return list(self._topo_cache)
        indegree = {node_id: len(self._in[node_id]) for node_id in self._nodes}
        ready = [node_id for node_id in self._nodes if indegree[node_id] == 0]
        order: list[str] = []
        cursor = 0
        while cursor < len(ready):
            node_id = ready[cursor]
            cursor += 1
            order.append(node_id)
            for (__, dst) in self._out[node_id]:
                indegree[dst] -= 1
                if indegree[dst] == 0:
                    ready.append(dst)
        if len(order) != len(self._nodes):
            stuck = sorted(set(self._nodes) - set(order))
            raise CycleError(f"assay graph has a cycle through {stuck}")
        self._topo_cache = order
        return list(order)

    def reverse_topological_order(self) -> list[str]:
        return list(reversed(self.topological_order()))

    def ancestors(self, node_id: str) -> list[str]:
        """All transitive predecessors of ``node_id`` (the DAG-level backward
        slice), in no particular order, excluding ``node_id`` itself."""
        self.node(node_id)
        seen: set[str] = set()
        stack = list(self.predecessors(node_id))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.predecessors(current))
        return list(seen)

    def descendants(self, node_id: str) -> list[str]:
        """All transitive successors of ``node_id``, excluding itself."""
        self.node(node_id)
        seen: set[str] = set()
        stack = list(self.successors(node_id))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.successors(current))
        return list(seen)

    def validate(self) -> None:
        """Check structural invariants; raises on the first violation.

        * graph is acyclic;
        * every non-source node's non-excess inbound fractions sum to 1;
        * excess edges originate from nodes with a matching
          ``excess_fraction`` and terminate in EXCESS nodes;
        * EXCESS nodes have exactly one inbound edge and no outbound edges;
        * unknown-volume nodes carry no static ``output_fraction``.
        """
        self.topological_order()
        for node in self._nodes.values():
            inbound = [e for e in self.in_edges(node.id) if not e.is_excess]
            if inbound:
                total = sum(edge.fraction for edge in inbound)
                if total != 1:
                    raise RatioError(
                        f"node {node.id!r}: inbound fractions sum to {total}, "
                        "expected 1"
                    )
            if node.kind is NodeKind.EXCESS:
                if self.out_degree(node.id) != 0:
                    raise DagError(f"excess node {node.id!r} must be a sink")
                if self.in_degree(node.id) != 1:
                    raise DagError(
                        f"excess node {node.id!r} must have exactly one "
                        "inbound edge"
                    )
                (edge,) = self.in_edges(node.id)
                if not edge.is_excess:
                    raise DagError(
                        f"edge into excess node {node.id!r} must be flagged "
                        "is_excess"
                    )
            if node.unknown_volume and node.output_fraction is not None:
                raise DagError(
                    f"node {node.id!r}: unknown_volume nodes must not have a "
                    "static output_fraction"
                )
            if not node.unknown_volume and node.output_fraction is None:
                raise DagError(
                    f"node {node.id!r}: known-volume node lacks an "
                    "output_fraction"
                )
        for edge in self._edges.values():
            if edge.is_excess:
                src = self._nodes[edge.src]
                dst = self._nodes[edge.dst]
                if dst.kind is not NodeKind.EXCESS:
                    raise DagError(
                        f"excess edge {edge.src!r}->{edge.dst!r} must end in "
                        "an EXCESS node"
                    )
                if src.excess_fraction == 0:
                    raise DagError(
                        f"excess edge from {edge.src!r} but the node's "
                        "excess_fraction is 0"
                    )

    # ------------------------------------------------------------------
    # copying / rendering
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "AssayDAG":
        clone = AssayDAG(name or self.name)
        for node in self._nodes.values():
            clone.add_node(node.copy())
        for edge in self._edges.values():
            clone.add_edge(edge.copy())
        return clone

    def subgraph(self, node_ids: Iterable[str], name: str | None = None) -> "AssayDAG":
        """Induced subgraph over ``node_ids`` (copies nodes and inner edges)."""
        keep = set(node_ids)
        missing = keep - set(self._nodes)
        if missing:
            raise DagError(f"subgraph refers to unknown nodes {sorted(missing)}")
        sub = AssayDAG(name or f"{self.name}.sub")
        for node_id in self._nodes:  # preserve insertion order
            if node_id in keep:
                sub.add_node(self._nodes[node_id].copy())
        for edge in self._edges.values():
            if edge.src in keep and edge.dst in keep:
                sub.add_edge(edge.copy())
        return sub

    def to_dot(self) -> str:
        """Graphviz rendering for documentation and debugging."""
        lines = [f'digraph "{self.name}" {{', "  rankdir=TB;"]
        for node in self._nodes.values():
            shape = {
                NodeKind.INPUT: "ellipse",
                NodeKind.CONSTRAINED_INPUT: "diamond",
                NodeKind.EXCESS: "octagon",
            }.get(node.kind, "box")
            lines.append(
                f'  "{node.id}" [label="{node.display_name}" shape={shape}];'
            )
        for edge in self._edges.values():
            style = " style=dashed" if edge.is_excess else ""
            lines.append(
                f'  "{edge.src}" -> "{edge.dst}" [label="{edge.fraction}"{style}];'
            )
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AssayDAG({self.name!r}, nodes={self.node_count}, "
            f"edges={self.edge_count})"
        )
