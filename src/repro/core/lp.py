"""LP solution of RVol via scipy's HiGHS ``linprog`` (paper Section 3.2).

The paper used Matlab's ``linprog`` (LIPSOL, an interior-point solver); we
substitute scipy's HiGHS backend — the same algorithmic class with the same
asymptotic behaviour, which is what the Table 2 runtime comparison is about.

The entry point :func:`lp_solve` accepts the same ``(dag, limits)`` pair as
:func:`repro.core.dagsolve.dagsolve` and returns the same
:class:`~repro.core.dagsolve.VolumeAssignment`, so the volume-management
hierarchy can fall back from one to the other transparently.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
from scipy.optimize import linprog

from .dag import AssayDAG, NodeKind
from .dagsolve import VolumeAssignment
from .errors import InfeasibleError, SolverError
from .limits import HardwareLimits
from .lpmodel import LPModel, build_lp_model

__all__ = ["lp_solve", "solve_model", "assignment_from_edge_volumes"]

EdgeKey = tuple[str, str]


def assignment_from_edge_volumes(
    dag: AssayDAG,
    limits: HardwareLimits,
    edge_volume: dict[EdgeKey, Fraction],
    *,
    method: str,
    meta: dict[str, object] | None = None,
    tolerance: Fraction = Fraction(0),
) -> VolumeAssignment:
    """Derive node volumes from edge volumes and package an assignment.

    Node production for a source is its total draw; for an internal node it
    is ``output_fraction`` times the inbound total.  Excess edges, if the DAG
    has them, receive the node's production surplus (LP treats discarding as
    slack, DAGSolve as an explicit edge — this keeps the two representations
    interchangeable).
    """
    node_volume: dict[str, Fraction] = {}
    node_input_volume: dict[str, Fraction] = {}
    volumes = dict(edge_volume)
    for node in dag.nodes():
        if node.kind is NodeKind.EXCESS:
            continue
        inbound = [e for e in dag.in_edges(node.id) if not e.is_excess]
        outbound = [e for e in dag.out_edges(node.id) if not e.is_excess]
        in_total = sum((volumes[e.key] for e in inbound), Fraction(0))
        out_total = sum((volumes[e.key] for e in outbound), Fraction(0))
        if node.kind in (NodeKind.INPUT, NodeKind.CONSTRAINED_INPUT):
            production = out_total
            node_input_volume[node.id] = production
        else:
            fraction_out = node.output_fraction or Fraction(1)
            production = fraction_out * in_total
            node_input_volume[node.id] = in_total
        node_volume[node.id] = production
        for excess_edge in dag.out_edges(node.id):
            if excess_edge.is_excess:
                surplus = max(Fraction(0), production - out_total)
                volumes[excess_edge.key] = surplus
                node_volume[excess_edge.dst] = surplus
                node_input_volume[excess_edge.dst] = surplus
    return VolumeAssignment(
        dag=dag,
        limits=limits,
        node_volume=node_volume,
        node_input_volume=node_input_volume,
        edge_volume=volumes,
        scale=None,
        method=method,
        tolerance=tolerance,
        meta=meta or {},
    )


def solve_model(
    model: LPModel,
    *,
    method: str = "highs",
    warm_start: "list[float] | None" = None,
) -> VolumeAssignment:
    """Solve a built :class:`LPModel` and package the result.

    ``warm_start`` is the previous attempt's solution in ``var_index``
    order (what the hierarchy retry loop has on hand).  scipy's HiGHS
    backends do not accept an ``x0`` guess, so today the vector is only
    recorded — honestly, as ``meta["warm_start"]["applied"] = False`` —
    but the plumbing means a basis-reusing backend (e.g. ``highspy``)
    can be dropped in without touching the callers.

    Raises:
        InfeasibleError: HiGHS proved the constraint system infeasible.
        SolverError: any other solver failure (unbounded, numerical, ...).
    """
    a_ub = model.a_ub if model.a_ub.shape[0] else None
    b_ub = model.b_ub if model.b_ub.size else None
    a_eq = model.a_eq if model.a_eq.shape[0] else None
    b_eq = model.b_eq if model.b_eq.size else None
    warm_meta: dict[str, object] | None = None
    if warm_start is not None:
        if len(warm_start) != len(model.var_index):
            warm_meta = {
                "provided": True,
                "applied": False,
                "reason": (
                    f"stale vector: {len(warm_start)} values for "
                    f"{len(model.var_index)} variables"
                ),
            }
        else:
            warm_meta = {
                "provided": True,
                "applied": False,
                "reason": "scipy's HiGHS interface ignores x0 guesses",
            }
    result = linprog(
        model.objective,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=model.bounds,
        method=method,
    )
    if result.status == 2:
        raise InfeasibleError(
            f"LP infeasible for DAG {model.dag.name!r}: {result.message}"
        )
    if not result.success:
        raise SolverError(
            f"LP solver failed for DAG {model.dag.name!r} "
            f"(status {result.status}): {result.message}"
        )
    edge_volume = {
        key: Fraction(str(float(result.x[i])))
        for key, i in model.var_index.items()
    }
    meta: dict[str, object] = {
        "objective": -float(result.fun),
        "n_constraints": model.n_constraints,
        "constraint_classes": model.counts_by_class(),
        "iterations": int(getattr(result, "nit", 0)),
        "dagsolve_constraints": model.meta.get("dagsolve_constraints", False),
    }
    planning_objective = model.meta.get("planning_objective")
    if planning_objective not in (None, "default"):
        meta["planning_objective"] = planning_objective
    if warm_meta is not None:
        meta["warm_start"] = warm_meta
    incremental = model.meta.get("incremental")
    if incremental is not None:
        meta["incremental"] = dict(incremental)
    return assignment_from_edge_volumes(
        model.dag,
        model.limits,
        edge_volume,
        method="lp",
        # HiGHS works in doubles: allow a relative 1e-7 feasibility slack so
        # exact-fraction checks do not flag float fuzz as violations.
        tolerance=model.limits.max_capacity * Fraction(1, 10_000_000),
        meta=meta,
    )


def lp_solve(
    dag: AssayDAG,
    limits: HardwareLimits,
    *,
    output_tolerance: float | None = 0.1,
    dagsolve_constraints: bool = False,
    objective=None,
) -> VolumeAssignment:
    """Build and solve the RVol LP for ``dag``.

    ``dagsolve_constraints=True`` reproduces the Section 4.3 ablation where
    DAGSolve's artificial constraints are added to the LP; ``objective``
    selects the planning objective building the cost vector
    (:mod:`repro.core.objectives`).
    """
    model = build_lp_model(
        dag,
        limits,
        output_tolerance=output_tolerance,
        dagsolve_constraints=dagsolve_constraints,
        objective=objective,
    )
    return solve_model(model)
