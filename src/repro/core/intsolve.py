"""Integer-scaled exact DAGSolve: the production hot path.

:mod:`repro.core.dagsolve` is the readable reference implementation — it
walks the DAG's dict-of-dicts adjacency and does every step in
:class:`fractions.Fraction`, which means a gcd normalization on each of
the O(E) multiplications and divisions of the backward pass.  Profiling a
cold compile shows those gcd calls *are* the DAGSolve pass.

This module keeps the arithmetic exact but does it in plain machine
integers under a lazily-grown common denominator:

* every Vnorm is stored as ``int_value == true_value * M`` for one shared
  scaling factor ``M`` (morally the running LCM of the ratio denominators
  — volumes become integers in units of ``1/M``);
* a division ``v * p / q`` that would be inexact first grows ``M`` by
  ``q // gcd(v * p, q)`` (multiplying every stored value by the same
  factor), after which the division is exact by construction;
* results materialize as ``Fraction(int_value, M)``, whose normalization
  makes them **bit-identical** to the reference solver's Fractions — the
  golden-equivalence and serde suites pin this.

The flat-adjacency layout mirrors :class:`repro.core.fastpath.FastContext`
(the float runtime assigner): an :class:`ExactContext` is built once per
DAG — reverse-topological row tuples with pre-resolved edge keys and
ratio numerators/denominators — and cached on the DAG itself, invalidated
by the same structural mutations that drop the memoized topological
order.  Hierarchy attempts, the Vnorm memo, and the runtime planner all
reuse the context instead of re-walking ``dag.node()``/``in_edges()``.

Mutable *non-structural* node attributes (``capacity``,
``available_volume`` — the runtime assigner sets the latter between
solves) are deliberately **not** baked into the rows: the dispensing pass
reads them from live :class:`~repro.core.dag.Node` references at solve
time, exactly like the reference forward pass.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from collections.abc import Mapping

from .dag import AssayDAG, NodeKind
from .dagsolve import VnormResult, VolumeAssignment, _check_solvable
from .errors import DagError, VolumeError
from .limits import HardwareLimits, Number, as_fraction

__all__ = [
    "ExactContext",
    "exact_context",
    "exact_vnorms",
    "exact_dagsolve",
]

EdgeKey = tuple[str, str]

_CONTEXT_KEY = "exact-context"


def _fraction(num: int, den: int, _new=object.__new__, _gcd=gcd) -> Fraction:
    """``Fraction(num, den)`` for a known-positive ``den``.

    Result materialization dominates the solve once the integer passes are
    this cheap, and ``Fraction.__new__``'s type dispatch is most of that
    cost.  Both arguments are plain ints here and ``den`` (a scale product)
    is always positive, so reduce by gcd and fill the slots directly — the
    canonical form is identical to the public constructor's.
    """
    g = _gcd(num, den)
    if g > 1:
        num //= g
        den //= g
    f = _new(Fraction)
    f._numerator = num
    f._denominator = den
    return f


class ExactContext:
    """Flat, reverse-topological view of one DAG for the integer solver.

    ``rows`` holds one tuple per non-EXCESS node, in the exact visit order
    of the reference backward pass::

        (node_id, is_output,
         keep_num, keep_den,          # 1 - excess_fraction
         in_edges,                    # ((edge_key, frac_num, frac_den), ...)
         out_keys,                    # non-excess out-edge keys (summed)
         excess_out,                  # ((edge_key, excess_node_id), ...)
         ex_num, ex_den,              # excess_fraction
         is_input, fo_num, fo_den)    # output_fraction (1 when unknown)

    ``checks`` holds ``(node_id, node_ref, is_constrained)`` per node (all
    kinds, EXCESS included) for the dispensing pass; capacity and
    available volume are read from ``node_ref`` at solve time.
    """

    __slots__ = (
        "dag",
        "rows",
        "checks",
        "output_ids",
        "nodes_visited",
        "edges_visited",
    )

    def __init__(self, dag: AssayDAG) -> None:
        dag.validate()
        _check_solvable(dag)
        self.dag = dag
        self.output_ids = frozenset(node.id for node in dag.outputs())
        rows = []
        nodes_visited = 0
        edges_visited = 0
        for node_id in dag.reverse_topological_order():
            node = dag.node(node_id)
            if node.kind is NodeKind.EXCESS:
                continue
            nodes_visited += 1
            out_keys = []
            excess_out = []
            for edge in dag.out_edges(node_id):
                if edge.is_excess:
                    excess_out.append((edge.key, edge.dst))
                else:
                    out_keys.append(edge.key)
                    edges_visited += 1
            edges_visited += len(excess_out)
            keep = 1 - node.excess_fraction
            is_input = node.kind in (NodeKind.INPUT, NodeKind.CONSTRAINED_INPUT)
            in_edges: tuple = ()
            fo_num = fo_den = 1
            if not is_input:
                if node.unknown_volume:
                    fraction_out = Fraction(1)
                else:
                    fraction_out = node.output_fraction
                    if fraction_out is None or fraction_out <= 0:
                        raise DagError(
                            f"node {node_id!r} lacks a positive output_fraction"
                        )
                fo_num = fraction_out.numerator
                fo_den = fraction_out.denominator
                in_edges = tuple(
                    (e.key, e.fraction.numerator, e.fraction.denominator)
                    for e in dag.in_edges(node_id)
                )
                edges_visited += len(in_edges)
            rows.append(
                (
                    node_id,
                    node_id in self.output_ids,
                    keep.numerator,
                    keep.denominator,
                    in_edges,
                    tuple(out_keys),
                    tuple(excess_out),
                    node.excess_fraction.numerator,
                    node.excess_fraction.denominator,
                    is_input,
                    fo_num,
                    fo_den,
                )
            )
        self.rows = tuple(rows)
        self.checks = tuple(
            (node.id, node, node.kind is NodeKind.CONSTRAINED_INPUT)
            for node in dag.nodes()
        )
        self.nodes_visited = nodes_visited
        self.edges_visited = edges_visited


def exact_context(dag: AssayDAG) -> ExactContext:
    """The DAG's cached :class:`ExactContext` (built on first use).

    The cache lives in ``dag._derived`` and is dropped by the same
    structural mutations that invalidate the memoized topological order,
    so hierarchy attempts and runtime sessions over a frozen DAG pay the
    adjacency walk exactly once.
    """
    context = dag._derived.get(_CONTEXT_KEY)
    if context is None:
        context = ExactContext(dag)
        dag._derived[_CONTEXT_KEY] = context
    return context


def _validated_targets(
    context: ExactContext,
    output_targets: Mapping[str, Number] | None,
) -> dict[str, Fraction]:
    targets: dict[str, Fraction] = {}
    if output_targets:
        targets = {n: as_fraction(v) for n, v in output_targets.items()}
        for node_id, value in targets.items():
            if value <= 0:
                raise VolumeError(
                    f"output target for {node_id!r} must be positive"
                )
        unknown_targets = set(targets) - set(context.output_ids)
        if unknown_targets:
            raise DagError(
                f"output targets given for non-output nodes "
                f"{sorted(unknown_targets)}"
            )
    return targets


def _solve_ints(
    context: ExactContext,
    targets: dict[str, Fraction],
) -> tuple[dict[str, int], dict[str, int], dict[EdgeKey, int], int]:
    """The backward pass over integers; returns (vn, vin, edge, M)."""
    node_vn: dict[str, int] = {}
    node_in: dict[str, int] = {}
    edge_vn: dict[EdgeKey, int] = {}
    scale = 1

    def rescale(grow: int) -> None:
        nonlocal scale
        scale *= grow
        for table in (node_vn, node_in, edge_vn):
            for key in table:
                table[key] *= grow

    # Every division below follows the same grow-then-redo pattern: when
    # ``product / den`` would be inexact, grow M so the dividend (re-read
    # from its table, which rescale() just multiplied) divides evenly.
    for (
        node_id,
        is_output,
        keep_num,
        keep_den,
        in_edges,
        out_keys,
        excess_out,
        ex_num,
        ex_den,
        is_input,
        fo_num,
        fo_den,
    ) in context.rows:
        if is_output:
            target = targets.get(node_id)
            if target is None:
                production = scale
            else:
                tn, td = target.numerator, target.denominator
                product = scale * tn
                if product % td:
                    rescale(td // gcd(product, td))
                    product = scale * tn
                production = product // td
        else:
            used = 0
            for key in out_keys:
                used += edge_vn[key]
            # production = used / keep  ==  used * keep_den / keep_num
            product = used * keep_den
            if product % keep_num:
                rescale(keep_num // gcd(product, keep_num))
                used = 0
                for key in out_keys:
                    used += edge_vn[key]
                product = used * keep_den
            production = product // keep_num
        node_vn[node_id] = production
        if ex_num:
            # excess_amount = production * excess_fraction
            product = production * ex_num
            if product % ex_den:
                rescale(ex_den // gcd(product, ex_den))
                production = node_vn[node_id]
                product = production * ex_num
            excess_amount = product // ex_den
            for key, excess_id in excess_out:
                edge_vn[key] = excess_amount
                node_vn[excess_id] = excess_amount
                node_in[excess_id] = excess_amount
        if is_input:
            node_in[node_id] = production
            continue
        # input_total = production / fraction_out
        product = production * fo_den
        if product % fo_num:
            rescale(fo_num // gcd(product, fo_num))
            production = node_vn[node_id]
            product = production * fo_den
        input_total = product // fo_num
        node_in[node_id] = input_total
        for key, frac_num, frac_den in in_edges:
            product = input_total * frac_num
            if product % frac_den:
                rescale(frac_den // gcd(product, frac_den))
                input_total = node_in[node_id]
                product = input_total * frac_num
            edge_vn[key] = product // frac_den

    return node_vn, node_in, edge_vn, scale


def exact_vnorms(
    dag: AssayDAG,
    output_targets: Mapping[str, Number] | None = None,
) -> VnormResult:
    """Backward pass of DAGSolve over scaled integers.

    Drop-in replacement for :func:`repro.core.dagsolve.compute_vnorms`:
    same validation errors, and a :class:`VnormResult` whose Fractions
    (and visit counters) are bit-identical to the reference pass.
    """
    context = exact_context(dag)
    targets = _validated_targets(context, output_targets)
    node_vn, node_in, edge_vn, scale = _solve_ints(context, targets)
    return VnormResult(
        node_vnorm={n: _fraction(v, scale) for n, v in node_vn.items()},
        node_input_vnorm={
            n: _fraction(v, scale) for n, v in node_in.items()
        },
        edge_vnorm={k: _fraction(v, scale) for k, v in edge_vn.items()},
        nodes_visited=context.nodes_visited,
        edges_visited=context.edges_visited,
    )


def _min_ratio(
    best: tuple[int, int] | None, num: int, den: int
) -> tuple[int, int]:
    """min over positive rationals held as (num, den) pairs."""
    if best is None or num * best[1] < best[0] * den:
        return (num, den)
    return best


def _max_ratio(
    best: tuple[int, int] | None, num: int, den: int
) -> tuple[int, int]:
    """max over positive rationals held as (num, den) pairs."""
    if best is None or num * best[1] > best[0] * den:
        return (num, den)
    return best


def exact_dagsolve(
    dag: AssayDAG,
    limits: HardwareLimits,
    output_targets: Mapping[str, Number] | None = None,
    *,
    strict: bool = False,
    objective=None,
) -> VolumeAssignment:
    """Both DAGSolve passes over scaled integers.

    Drop-in replacement for :func:`repro.core.dagsolve.dagsolve`; the
    returned :class:`VolumeAssignment` (volumes, scale, embedded Vnorms)
    is bit-identical to the reference implementation's — including under a
    scale-minimising ``objective``, whose floor selection mirrors
    :func:`repro.core.dagsolve._floor_scale` in the integer domain.
    """
    context = exact_context(dag)
    targets = _validated_targets(context, output_targets)
    node_vn, node_in, edge_vn, scale = _solve_ints(context, targets)

    max_load = 0
    for node_id in node_vn:
        load = node_vn[node_id]
        other = node_in[node_id]
        if other > load:
            load = other
        if load > max_load:
            max_load = load
    if max_load <= 0:
        raise VolumeError("DAG has no positive Vnorm; nothing to dispense")

    # forward pass: anchor the largest load at its capacity --------------
    max_capacity: Fraction = limits.max_capacity
    best: tuple[int, int] | None = None
    for node_id, node, __ in context.checks:
        capacity = node.capacity or max_capacity
        load = node_vn[node_id]
        other = node_in[node_id]
        if other > load:
            load = other
        if load == 0:
            continue
        # bound = capacity / (load / M) = (cap_num * M) / (cap_den * load)
        best = _min_ratio(
            best, capacity.numerator * scale, capacity.denominator * load
        )
    assert best is not None
    for node_id, node, is_constrained in context.checks:
        if not is_constrained:
            continue
        available = node.available_volume
        if available is None:
            raise DagError(
                f"constrained input {node_id!r} has no measured volume; "
                "set node.available_volume before dispensing"
            )
        vnorm = node_vn[node_id]
        if vnorm == 0:
            continue
        best = _min_ratio(
            best, available.numerator * scale, available.denominator * vnorm
        )
    if objective is not None:
        from .objectives import resolve_objective

        objective = resolve_objective(objective)
    if objective is not None and objective.minimize_scale:
        # the waste anchor: the largest lower bound over least-count and
        # FU-minimum constraints, taken only when it undercuts the cap
        floor: tuple[int, int] | None = None
        least_count: Fraction = limits.least_count
        lc_num = least_count.numerator * scale
        lc_den = least_count.denominator
        for edge in context.dag.edges():
            if edge.is_excess:
                continue
            vnorm = edge_vn[edge.key]
            if vnorm <= 0:
                continue
            floor = _max_ratio(floor, lc_num, lc_den * vnorm)
        for node_id, node, __ in context.checks:
            minimum = node.min_volume
            if minimum is None:
                continue
            held = node_in[node_id]
            if node.kind in (NodeKind.INPUT, NodeKind.CONSTRAINED_INPUT):
                held = node_vn[node_id]
            if held <= 0:
                continue
            floor = _max_ratio(
                floor, minimum.numerator * scale, minimum.denominator * held
            )
        if floor is not None and floor[0] * best[1] < best[0] * floor[1]:
            best = floor
    scale_num, scale_den = best
    scale_fraction = Fraction(scale_num, scale_den)

    denominator = scale * scale_den
    assignment = VolumeAssignment(
        dag=dag,
        limits=limits,
        node_volume={
            n: _fraction(v * scale_num, denominator)
            for n, v in node_vn.items()
        },
        node_input_volume={
            n: _fraction(v * scale_num, denominator)
            for n, v in node_in.items()
        },
        edge_volume={
            k: _fraction(v * scale_num, denominator)
            for k, v in edge_vn.items()
        },
        scale=scale_fraction,
        method="dagsolve",
        vnorms=VnormResult(
            node_vnorm={n: _fraction(v, scale) for n, v in node_vn.items()},
            node_input_vnorm={
                n: _fraction(v, scale) for n, v in node_in.items()
            },
            edge_vnorm={k: _fraction(v, scale) for k, v in edge_vn.items()},
            nodes_visited=context.nodes_visited,
            edges_visited=context.edges_visited,
        ),
    )
    if strict:
        assignment.require_feasible()
    return assignment
