"""DAGSolve: linear-time rational volume management (paper Section 3.3).

DAGSolve over-constrains the RVol problem with two artificial constraints:

1. all final output volumes are in a fixed relative proportion (by default
   equal — every output node gets ``Vnorm = 1``), and
2. flow conservation at intermediate nodes — each intermediate fluid's
   production equals the total volume of its uses (no excess), except for
   the statically-computed excess introduced by cascading.

With these constraints a single **backward pass** in reverse topological
order computes every node's and edge's ``Vnorm`` (volume normalised to the
outputs), and a single **forward (dispensing) pass** converts Vnorms to
absolute volumes by anchoring the largest Vnorm at the machine's maximum
capacity.  Each node and edge is visited a constant number of times, giving
the linear complexity the paper contrasts with LP's ``O(n^3 L)``.

Worked example (paper Figures 2 and 5): for the four-mix assay the backward
pass yields ``Vnorm(K) = 2/3``, ``Vnorm(L) = 11/15``, ``Vnorm(B) = 46/45``
(the maximum), and the dispensing pass with a 100 nl maximum yields 100 nl
for B, 13 nl for A, and 65/72/98 nl for K/L/M — matching Figure 5 after
rounding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from collections.abc import Mapping

from .dag import AssayDAG, Node, NodeKind
from .errors import (
    DagError,
    OverflowError_,
    UnderflowError,
    VolumeError,
)
from .limits import HardwareLimits, Number, as_fraction

__all__ = [
    "VnormResult",
    "Violation",
    "VolumeAssignment",
    "compute_vnorms",
    "dispense",
    "scale_for_required_outputs",
    "dagsolve",
]

EdgeKey = tuple[str, str]


@dataclass
class VnormResult:
    """Vnorms produced by the backward pass.

    ``node_vnorm`` is the paper's node Vnorm: the node's *production* volume
    relative to the (unit) outputs.  ``node_input_vnorm`` is the total volume
    entering the node; it differs from production only for nodes with
    ``output_fraction != 1`` (separators) and is the quantity bounded by the
    capacity constraint (paper Figure 3 bounds ``K = r + s``).
    """

    node_vnorm: dict[str, Fraction]
    node_input_vnorm: dict[str, Fraction]
    edge_vnorm: dict[EdgeKey, Fraction]
    #: number of node and edge visits; used by tests to certify linearity.
    nodes_visited: int = 0
    edges_visited: int = 0

    def max_vnorm(self) -> Fraction:
        """Largest volume Vnorm over all nodes (paper line 8, ``Max_V``).

        Uses the input-side Vnorm so separator loads are counted against
        capacity too; for flow-conserving DAGs this equals the paper's
        maximum node Vnorm exactly.
        """
        return max(
            max(self.node_vnorm[n], self.node_input_vnorm[n])
            for n in self.node_vnorm
        )


@dataclass(frozen=True)
class Violation:
    """One feasibility violation discovered in a volume assignment."""

    kind: str  # "underflow" | "overflow" | "min-volume"
    subject: str  # node id or "src->dst"
    volume: Fraction
    bound: Fraction

    def __str__(self) -> str:
        relation = "<" if self.kind in ("underflow", "min-volume") else ">"
        return (
            f"{self.kind} at {self.subject}: volume {float(self.volume):.6g} nl "
            f"{relation} bound {float(self.bound):.6g} nl"
        )


@dataclass
class VolumeAssignment:
    """Absolute volumes for every node and edge of an assay DAG.

    Produced by :func:`dispense` (DAGSolve), by the LP/ILP solvers, or by the
    run-time assigner; consumers (codegen, the simulator, the benchmarks)
    treat all sources uniformly.
    """

    dag: AssayDAG
    limits: HardwareLimits
    node_volume: dict[str, Fraction]
    node_input_volume: dict[str, Fraction]
    edge_volume: dict[EdgeKey, Fraction]
    scale: Fraction | None = None
    method: str = "dagsolve"
    vnorms: VnormResult | None = None
    #: feasibility slack for float-based solvers (LP/ILP); exact methods
    #: keep it at 0 so their checks stay strict.
    tolerance: Fraction = Fraction(0)
    meta: dict[str, object] = field(default_factory=dict)

    # -- inspection ----------------------------------------------------
    def min_edge_volume(self) -> Fraction:
        if not self.edge_volume:
            raise VolumeError("assignment has no edges")
        return min(self.edge_volume.values())

    def min_edge(self) -> tuple[EdgeKey, Fraction]:
        key = min(self.edge_volume, key=self.edge_volume.__getitem__)
        return key, self.edge_volume[key]

    def max_node_volume(self) -> Fraction:
        return max(
            max(self.node_volume[n], self.node_input_volume[n])
            for n in self.node_volume
        )

    def violations(self) -> list[Violation]:
        """All least-count, capacity and FU-minimum violations.

        Excess edges are exempt from the least-count check: the discarded
        share never needs to be metered separately — it simply stays behind
        in the functional unit.
        """
        found: list[Violation] = []
        slack = self.tolerance
        for edge in self.dag.edges():
            volume = self.edge_volume[edge.key]
            if not edge.is_excess and volume < self.limits.least_count - slack:
                found.append(
                    Violation(
                        "underflow",
                        f"{edge.src}->{edge.dst}",
                        volume,
                        self.limits.least_count,
                    )
                )
        for node in self.dag.nodes():
            capacity = node.capacity or self.limits.max_capacity
            load = max(
                self.node_volume[node.id], self.node_input_volume[node.id]
            )
            if load > capacity + slack:
                found.append(Violation("overflow", node.id, load, capacity))
            if node.min_volume is not None:
                held = self.node_input_volume[node.id]
                if node.kind in (NodeKind.INPUT, NodeKind.CONSTRAINED_INPUT):
                    held = self.node_volume[node.id]
                if held < node.min_volume - slack:
                    found.append(
                        Violation("min-volume", node.id, held, node.min_volume)
                    )
        return found

    @property
    def feasible(self) -> bool:
        return not self.violations()

    def require_feasible(self) -> "VolumeAssignment":
        """Raise the first violation as a typed error; return self if clean."""
        for violation in self.violations():
            if violation.kind == "overflow":
                raise OverflowError_(
                    str(violation),
                    node=violation.subject,
                    volume=violation.volume,
                    capacity=violation.bound,
                )
            raise UnderflowError(
                str(violation),
                edge=violation.subject if "->" in violation.subject else None,
                node=None if "->" in violation.subject else violation.subject,
                volume=violation.volume,
                least_count=violation.bound,
            )
        return self

    def as_floats(self) -> dict[str, dict[str, float]]:
        """Float view for reporting (nodes and edges, nl)."""
        return {
            "nodes": {n: float(v) for n, v in self.node_volume.items()},
            "edges": {
                f"{src}->{dst}": float(v)
                for (src, dst), v in self.edge_volume.items()
            },
        }


def _check_solvable(dag: AssayDAG) -> None:
    for node in dag.nodes():
        if node.unknown_volume and dag.out_degree(node.id) > 0:
            raise DagError(
                f"node {node.id!r} has a statically-unknown output volume "
                "and downstream uses; partition the DAG first "
                "(repro.core.partition) before running DAGSolve"
            )


def compute_vnorms(
    dag: AssayDAG,
    output_targets: Mapping[str, Number] | None = None,
) -> VnormResult:
    """Backward pass of DAGSolve (paper Figure 4, lines 2-7).

    Args:
        dag: a validated assay DAG with no reachable unknown-volume nodes.
        output_targets: optional relative proportions for the output nodes
            (the paper's first artificial constraint allows arbitrary
            proportions; the default normalises every output to 1).

    Returns:
        A :class:`VnormResult` with exact rational Vnorms.
    """
    dag.validate()
    _check_solvable(dag)
    targets: dict[str, Fraction] = {}
    if output_targets:
        targets = {n: as_fraction(v) for n, v in output_targets.items()}
        for node_id, value in targets.items():
            if value <= 0:
                raise VolumeError(
                    f"output target for {node_id!r} must be positive"
                )
    output_ids = {node.id for node in dag.outputs()}
    unknown_targets = set(targets) - output_ids
    if unknown_targets:
        raise DagError(
            f"output targets given for non-output nodes {sorted(unknown_targets)}"
        )

    node_vnorm: dict[str, Fraction] = {}
    node_input_vnorm: dict[str, Fraction] = {}
    edge_vnorm: dict[EdgeKey, Fraction] = {}
    nodes_visited = 0
    edges_visited = 0

    for node_id in dag.reverse_topological_order():
        node = dag.node(node_id)
        if node.kind is NodeKind.EXCESS:
            # Computed when the producing node is visited (paper 3.4.1:
            # "the Vnorms of the excess edge and excess node are computed
            # after their source node's Vnorm is known").
            continue
        nodes_visited += 1
        used = Fraction(0)
        for edge in dag.out_edges(node_id):
            if edge.is_excess:
                continue
            used += edge_vnorm[edge.key]
            edges_visited += 1
        if node_id in output_ids:
            production = targets.get(node_id, Fraction(1))
        else:
            # Second artificial constraint: flow conservation, modulo the
            # statically-known excess share from cascading.
            production = used / (1 - node.excess_fraction)
        node_vnorm[node_id] = production
        if node.excess_fraction > 0:
            excess_amount = production * node.excess_fraction
            for edge in dag.out_edges(node_id):
                if edge.is_excess:
                    edge_vnorm[edge.key] = excess_amount
                    node_vnorm[edge.dst] = excess_amount
                    node_input_vnorm[edge.dst] = excess_amount
                    edges_visited += 1
        if node.kind in (NodeKind.INPUT, NodeKind.CONSTRAINED_INPUT):
            node_input_vnorm[node_id] = production
            continue
        if node.unknown_volume:
            # A partition sink whose output is measured at run time: the
            # partition dispenses its *input*, so normalise that side.
            fraction_out = Fraction(1)
        else:
            fraction_out = node.output_fraction
            if fraction_out is None or fraction_out <= 0:
                raise DagError(
                    f"node {node_id!r} lacks a positive output_fraction"
                )
        input_total = production / fraction_out
        node_input_vnorm[node_id] = input_total
        for edge in dag.in_edges(node_id):
            edge_vnorm[edge.key] = edge.fraction * input_total
            edges_visited += 1

    return VnormResult(
        node_vnorm=node_vnorm,
        node_input_vnorm=node_input_vnorm,
        edge_vnorm=edge_vnorm,
        nodes_visited=nodes_visited,
        edges_visited=edges_visited,
    )


def _constrained_scale(dag: AssayDAG, vnorms: VnormResult) -> Fraction | None:
    """Scale cap imposed by measured constrained inputs (Section 3.5).

    Each CONSTRAINED_INPUT node with a measured ``available_volume`` caps the
    global scale at ``available / Vnorm``; the dispensing pass takes the
    minimum over all such caps and the capacity-derived default.
    """
    cap: Fraction | None = None
    for node in dag.nodes():
        if node.kind is not NodeKind.CONSTRAINED_INPUT:
            continue
        if node.available_volume is None:
            raise DagError(
                f"constrained input {node.id!r} has no measured volume; "
                "set node.available_volume before dispensing"
            )
        vnorm = vnorms.node_vnorm[node.id]
        if vnorm == 0:
            continue
        ratio = node.available_volume / vnorm
        cap = ratio if cap is None else min(cap, ratio)
    return cap


def _floor_scale(
    dag: AssayDAG, vnorms: VnormResult, limits: HardwareLimits
) -> Fraction | None:
    """The smallest feasible scale (waste objective's dispensing anchor).

    The scale below which *some* feasibility lower bound breaks: every
    non-excess edge must still clear the least count, and every FU minimum
    must still be met.  ``None`` when the DAG imposes no lower bound.
    """
    floor: Fraction | None = None
    least_count = limits.least_count
    for edge in dag.edges():
        if edge.is_excess:
            continue
        vnorm = vnorms.edge_vnorm[edge.key]
        if vnorm <= 0:
            continue
        bound = least_count / vnorm
        if floor is None or bound > floor:
            floor = bound
    for node in dag.nodes():
        if node.min_volume is None:
            continue
        held = vnorms.node_input_vnorm[node.id]
        if node.kind in (NodeKind.INPUT, NodeKind.CONSTRAINED_INPUT):
            held = vnorms.node_vnorm[node.id]
        if held <= 0:
            continue
        bound = node.min_volume / held
        if floor is None or bound > floor:
            floor = bound
    return floor


def dispense(
    dag: AssayDAG,
    vnorms: VnormResult,
    limits: HardwareLimits,
    *,
    objective=None,
) -> VolumeAssignment:
    """Forward (dispensing) pass of DAGSolve (paper Figure 4, lines 8-11).

    Anchors the node with the largest Vnorm at its capacity (the paper's
    ``max_default``) and scales every other node and edge proportionally,
    honouring per-node capacity overrides and measured constrained inputs.

    When ``objective`` (a :class:`~repro.core.objectives.PlanningObjective`)
    asks for scale minimisation (``--objective waste``), the pass instead
    settles at the smallest feasible scale — the capacity anchor stays an
    upper cap, but no node is filled to capacity just because capacity is
    there, so unused headroom is never loaded.  The feasibility window is
    unchanged: a DAG infeasible under the default anchor is dispensed at
    the anchor so its violations read identically.
    """
    max_vnorm = vnorms.max_vnorm()
    if max_vnorm <= 0:
        raise VolumeError("DAG has no positive Vnorm; nothing to dispense")
    scale = None
    for node in dag.nodes():
        capacity = node.capacity or limits.max_capacity
        load = max(
            vnorms.node_vnorm[node.id], vnorms.node_input_vnorm[node.id]
        )
        if load == 0:
            continue
        bound = capacity / load
        scale = bound if scale is None else min(scale, bound)
    assert scale is not None
    constrained_cap = _constrained_scale(dag, vnorms)
    if constrained_cap is not None:
        scale = min(scale, constrained_cap)
    if objective is not None:
        from .objectives import resolve_objective

        objective = resolve_objective(objective)
    if objective is not None and objective.minimize_scale:
        floor = _floor_scale(dag, vnorms, limits)
        if floor is not None and floor < scale:
            scale = floor

    node_volume = {n: v * scale for n, v in vnorms.node_vnorm.items()}
    node_input_volume = {
        n: v * scale for n, v in vnorms.node_input_vnorm.items()
    }
    edge_volume = {key: v * scale for key, v in vnorms.edge_vnorm.items()}
    return VolumeAssignment(
        dag=dag,
        limits=limits,
        node_volume=node_volume,
        node_input_volume=node_input_volume,
        edge_volume=edge_volume,
        scale=scale,
        method="dagsolve",
        vnorms=vnorms,
    )


def scale_for_required_outputs(
    dag: AssayDAG,
    vnorms: VnormResult,
    limits: HardwareLimits,
    required_outputs: Mapping[str, Number],
) -> VolumeAssignment:
    """Dispense for programmer-specified *minimum* output volumes.

    Implements the loop handling of Section 3.5 (option 2): instead of
    anchoring the largest Vnorm at capacity, pick the output with the
    smallest Vnorm-to-requirement slack and scale so every required output
    meets its specified volume.  The caller should afterwards check
    :meth:`VolumeAssignment.violations` — meeting the requirement may
    overflow, in which case static replication is needed upstream.
    """
    scale: Fraction | None = None
    output_ids = {node.id for node in dag.outputs()}
    for node_id, required in required_outputs.items():
        if node_id not in output_ids:
            raise DagError(f"{node_id!r} is not an output node")
        vnorm = vnorms.node_vnorm[node_id]
        if vnorm == 0:
            raise VolumeError(f"output {node_id!r} has zero Vnorm")
        needed = as_fraction(required) / vnorm
        scale = needed if scale is None else max(scale, needed)
    if scale is None:
        raise VolumeError("required_outputs must not be empty")
    node_volume = {n: v * scale for n, v in vnorms.node_vnorm.items()}
    node_input_volume = {
        n: v * scale for n, v in vnorms.node_input_vnorm.items()
    }
    edge_volume = {key: v * scale for key, v in vnorms.edge_vnorm.items()}
    return VolumeAssignment(
        dag=dag,
        limits=limits,
        node_volume=node_volume,
        node_input_volume=node_input_volume,
        edge_volume=edge_volume,
        scale=scale,
        method="dagsolve/required-outputs",
        vnorms=vnorms,
    )


def dagsolve(
    dag: AssayDAG,
    limits: HardwareLimits,
    output_targets: Mapping[str, Number] | None = None,
    *,
    strict: bool = False,
    objective=None,
) -> VolumeAssignment:
    """Run both DAGSolve passes and return the volume assignment.

    Args:
        dag: validated assay DAG.
        limits: hardware maximum capacity and least count.
        output_targets: optional relative output proportions.
        strict: when true, raise :class:`UnderflowError` /
            :class:`OverflowError_` on the first violation instead of
            returning an infeasible assignment for inspection.
        objective: optional :class:`~repro.core.objectives.
            PlanningObjective` steering the dispensing anchor (see
            :func:`dispense`).
    """
    vnorms = compute_vnorms(dag, output_targets)
    assignment = dispense(dag, vnorms, limits, objective=objective)
    if strict:
        assignment.require_feasible()
    return assignment
