"""Rounding RVol solutions to IVol and measuring the induced ratio error.

Paper Section 4.2: "we round the results of the rational volume assignment
to the closest integer multiple of the least-count.  Such rounding did not
cause any overflow/underflow for our assays.  However, because such rounding
can introduce errors in mix ratios, we evaluate its effect ... the error was
no more than 2%.  As such, we defer investigation of more sophisticated
rounding techniques to the future."

Two rounding strategies are provided:

* :func:`round_assignment` — the paper's baseline: quantise every edge
  volume independently to the nearest least-count multiple (plus a deficit
  repair so the rounded plan stays executable);
* :func:`round_assignment_ratio_preserving` — the deferred "more
  sophisticated" technique: per consumer, quantise the node's *total input*
  and apportion the integer steps across the inbound edges by largest
  remainder (Hamilton apportionment), which provably caps each edge's
  absolute error at one least count while keeping the total exact.

:func:`ratio_errors` reports the per-mix relative deviation between the
achieved and declared ratios; ``benchmarks/bench_rounding_error.py``
aggregates both strategies into the paper's <= 2% claim and the ablation
comparing them.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from .dag import AssayDAG, NodeKind
from .dagsolve import VolumeAssignment
from .limits import HardwareLimits
from .lp import assignment_from_edge_volumes

__all__ = [
    "RatioError",
    "round_assignment",
    "round_assignment_ratio_preserving",
    "ratio_errors",
    "max_ratio_error",
    "mean_ratio_error",
]

EdgeKey = tuple[str, str]


@dataclass(frozen=True)
class RatioError:
    """Deviation of one mix input from its declared share.

    ``relative_error`` is |achieved - declared| / declared, the quantity the
    paper reports (<= 2% across the glucose and enzyme assays).
    """

    node: str
    edge: EdgeKey
    declared: Fraction
    achieved: Fraction
    relative_error: Fraction

    def __str__(self) -> str:
        return (
            f"{self.edge[0]}->{self.edge[1]}: declared {self.declared}, "
            f"achieved {self.achieved} "
            f"({float(self.relative_error) * 100:.3f}% off)"
        )


def round_assignment(assignment: VolumeAssignment) -> VolumeAssignment:
    """Quantise every edge volume to the nearest least-count multiple.

    Node volumes are recomputed from the rounded edges so the result is
    internally consistent; the caller should re-check
    :meth:`VolumeAssignment.violations` because rounding down can in
    principle re-introduce underflow (the paper did not observe this and
    neither do our benchmarks, but the check is how one would find out).
    """
    limits = assignment.limits
    dag = assignment.dag
    rounded: dict[EdgeKey, Fraction] = {}
    for edge in dag.edges():
        if edge.is_excess:
            continue
        rounded[edge.key] = limits.quantize(assignment.edge_volume[edge.key])
    _repair_deficits(dag, rounded, limits, dict(assignment.edge_volume))
    result = assignment_from_edge_volumes(
        assignment.dag,
        limits,
        rounded,
        method=f"{assignment.method}+rounded",
        meta=dict(assignment.meta),
    )
    result.meta["rounded_from"] = assignment.method
    return result


def _repair_deficits(
    dag: AssayDAG,
    rounded: dict[EdgeKey, Fraction],
    limits: HardwareLimits,
    exact: dict[EdgeKey, Fraction],
) -> None:
    """Shave outbound edges until every node's uses fit its production.

    Independent rounding can leave a node's uses summing to slightly more
    than its (recomputed) production — half a least count per edge at
    worst.  Walk in topological order and decrement outbound edges until
    every node is executable, preferring the edge whose rounded volume
    currently sits highest *above* its exact value (a free correction) and
    breaking ties toward the largest edge (smallest relative harm).
    """
    least = limits.least_count

    def shave(edges, budget: Fraction) -> None:
        guard = 0
        while sum((rounded[e.key] for e in edges), Fraction(0)) > budget:
            victim = max(
                edges,
                key=lambda e: (
                    rounded[e.key] - exact.get(e.key, Fraction(0)),
                    rounded[e.key],
                ),
            )
            if rounded[victim.key] <= 0 or guard > 4 * len(edges) + 16:
                break  # cannot repair further; violations() will report it
            rounded[victim.key] -= least
            guard += 1

    for node_id in dag.topological_order():
        node = dag.node(node_id)
        inbound = [e for e in dag.in_edges(node_id) if not e.is_excess]
        outbound = [e for e in dag.out_edges(node_id) if not e.is_excess]
        capacity = node.capacity or limits.max_capacity
        if inbound:
            # a consumer cannot hold more than its unit's capacity
            shave(inbound, capacity)
        if not outbound:
            continue
        if not inbound:
            # a source cannot dispense more than one reservoir holds
            shave(outbound, capacity)
            continue
        fraction_out = node.output_fraction or Fraction(1)
        production = fraction_out * sum(
            (rounded[e.key] for e in inbound), Fraction(0)
        )
        shave(outbound, production)


def round_assignment_ratio_preserving(
    assignment: VolumeAssignment,
) -> VolumeAssignment:
    """Largest-remainder (Hamilton) rounding — the paper's deferred
    "more sophisticated rounding technique".

    Per consumer node, every inbound edge is either floored or ceiled to a
    least-count step; among all consistent totals the one whose
    greedy apportionment (leftover steps to the edges with the largest
    relative-error reduction) minimises the worst relative ratio deviation
    is chosen, with ties broken toward the exact total.  Guarantees:

    * every edge is within one least count of its exact volume;
    * a mix whose exact shares already realise the declared ratio at some
      reachable step total is rounded *without any* ratio error (simple
      rounding achieves this only when every edge independently rounds the
      same way);
    * skewed mixes may deliberately trade a little total volume for ratio
      fidelity — e.g. the enzyme assay's 1:99 shares round to 2:195 steps
      (1.5% off) rather than simple rounding's 2:194 (2.04% off).
    """
    limits = assignment.limits
    dag = assignment.dag
    least = limits.least_count
    rounded: dict[EdgeKey, Fraction] = {}
    for node in dag.nodes():
        inbound = [e for e in dag.in_edges(node.id) if not e.is_excess]
        if not inbound:
            continue
        exact = {e.key: assignment.edge_volume[e.key] for e in inbound}
        fractions = {e.key: e.fraction for e in inbound}
        exact_total_steps = sum(exact.values(), Fraction(0)) / least
        floors: dict[EdgeKey, int] = {}
        benefits: list[tuple[Fraction, EdgeKey]] = []
        for key, volume in exact.items():
            steps = volume / least
            whole = steps.numerator // steps.denominator
            floors[key] = whole
            remainder = steps - whole
            # relative-error reduction from rounding this edge up instead
            # of down: (down error - up error) / exact steps
            benefit = (
                (2 * remainder - 1) / steps if steps > 0 else Fraction(0)
            )
            benefits.append((benefit, key))
        benefits.sort(key=lambda item: (-item[0], item[1]))
        base_total = sum(floors.values())

        best_choice: dict[EdgeKey, int] = dict(floors)
        best_score = None
        for leftover in range(len(inbound) + 1):
            candidate = dict(floors)
            for __, key in benefits[:leftover]:
                candidate[key] += 1
            total = base_total + leftover
            if total == 0:
                continue
            worst = Fraction(0)
            for key, steps in candidate.items():
                declared = fractions[key]
                achieved = Fraction(steps, total)
                deviation = abs(achieved - declared) / declared
                worst = max(worst, deviation)
            distance = abs(Fraction(total) - exact_total_steps)
            score = (worst, distance)
            if best_score is None or score < best_score:
                best_score = score
                best_choice = candidate
        for key, steps in best_choice.items():
            rounded[key] = steps * least
    _repair_deficits(dag, rounded, limits, dict(assignment.edge_volume))
    result = assignment_from_edge_volumes(
        assignment.dag,
        limits,
        rounded,
        method=f"{assignment.method}+rounded-lr",
        meta=dict(assignment.meta),
    )
    result.meta["rounded_from"] = assignment.method
    return result


def ratio_errors(assignment: VolumeAssignment) -> list[RatioError]:
    """Relative mix-ratio deviations introduced by (rounded) volumes.

    For every multi-input node the achieved input shares are compared with
    the declared edge fractions.  Exact assignments (DAGSolve before
    rounding) produce an empty list.
    """
    errors: list[RatioError] = []
    for node in assignment.dag.nodes():
        if node.kind is NodeKind.EXCESS:
            continue
        inbound = [
            e for e in assignment.dag.in_edges(node.id) if not e.is_excess
        ]
        if len(inbound) < 2:
            continue
        total = sum(
            (assignment.edge_volume[e.key] for e in inbound), Fraction(0)
        )
        if total == 0:
            continue
        for edge in inbound:
            achieved = assignment.edge_volume[edge.key] / total
            declared = edge.fraction
            relative = abs(achieved - declared) / declared
            if relative != 0:
                errors.append(
                    RatioError(node.id, edge.key, declared, achieved, relative)
                )
    return errors


def max_ratio_error(assignment: VolumeAssignment) -> Fraction:
    """Largest relative ratio deviation (0 when the ratios are exact)."""
    errors = ratio_errors(assignment)
    if not errors:
        return Fraction(0)
    return max(error.relative_error for error in errors)


def mean_ratio_error(assignment: VolumeAssignment) -> Fraction:
    """Mean relative ratio deviation over all multi-input edges."""
    errors = ratio_errors(assignment)
    if not errors:
        return Fraction(0)
    return sum(
        (error.relative_error for error in errors), Fraction(0)
    ) / len(errors)
