"""Pluggable planning objectives: what the volume hierarchy optimises for.

The paper's Figure 6 hierarchy bakes a single goal into every layer —
DAGSolve anchors the largest Vnorm at full capacity, the LP objective
maximises total output production, and cascade intermediates discard their
statically-known surplus.  That is the right goal for reproducing the
paper, but it is not the only one real chips care about: reagent *waste*
(discarded excess plus input volume loaded and never delivered) is the
metric the waste-efficient sample-preparation literature optimises
(arXiv 1908.09618, arXiv 1307.1251).

A :class:`PlanningObjective` makes the goal a first-class strategy that
each layer consults instead of hard-coding arithmetic:

* ``dagsolve``/``intsolve`` — the dispensing pass asks
  :attr:`~PlanningObjective.minimize_scale` whether to settle at the
  smallest feasible scale (every edge still clears the least count and
  every FU minimum holds) instead of the capacity anchor;
* ``lpmodel``/``lpdelta`` — :meth:`~PlanningObjective.lp_objective_pairs`
  builds the LP cost vector, and
  :meth:`~PlanningObjective.lp_signature_extra` contributes to the
  incremental builder's tail-cache key so cached bundles never
  cross-contaminate between objectives;
* ``cascading`` — :attr:`~PlanningObjective.waste_aware_cascades` selects
  front-loaded stage splits and excess reuse at shared cascade stages;
* ``hierarchy``/``fingerprint``/``service`` — the objective's
  :attr:`~PlanningObjective.name` travels in
  :meth:`VolumeManager.options_dict`, so compile fingerprints, cached
  plans, batch worker payloads, and wire requests are all keyed per
  objective.

Two objectives ship: ``default`` (paper-faithful max-output — every layer
behaves bit-identically to the pre-refactor code) and ``waste``
(minimise discarded + excess input volume).
"""

from __future__ import annotations

from fractions import Fraction
from collections.abc import Iterator, Sequence

from .dag import AssayDAG, Node, NodeKind
from .errors import VolumeError

__all__ = [
    "PlanningObjective",
    "MaxOutputObjective",
    "MinWasteObjective",
    "DEFAULT_OBJECTIVE",
    "WASTE_OBJECTIVE",
    "OBJECTIVES",
    "resolve_objective",
]

EdgeKey = tuple[str, str]


class PlanningObjective:
    """Strategy interface consulted by every planning layer.

    Subclasses override the class attributes and the LP hooks; instances
    are stateless and shared (the registry holds one singleton per name).
    """

    #: registry key; also what ``--objective`` and the wire schema accept.
    name: str = "abstract"
    #: one-line human description (surfaced by the objective pass).
    description: str = ""
    #: dispensing pass: settle at the smallest feasible scale instead of
    #: anchoring the largest Vnorm at capacity.
    minimize_scale: bool = False
    #: cascading: front-loaded stage splits + excess reuse at shared stages.
    waste_aware_cascades: bool = False

    def lp_objective_pairs(
        self, dag: AssayDAG, output_nodes: Sequence[Node]
    ) -> list[tuple[EdgeKey, float]]:
        """(edge key, weight) pairs defining the LP cost vector.

        Weights are *maximisation* coefficients: the model builders apply
        them as ``cost[var] -= weight`` because ``linprog`` minimises.
        """
        raise NotImplementedError

    def lp_signature_extra(self, dag: AssayDAG) -> tuple:
        """Extra cache-signature material for the incremental LP builder.

        Must cover everything :meth:`lp_objective_pairs` reads beyond the
        output set (which the builder's tail signature already covers).
        """
        return ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


def _delivery_pairs(
    dag: AssayDAG, output_nodes: Sequence[Node]
) -> list[tuple[EdgeKey, float]]:
    """Weight ``fraction_out`` on every inbound edge of a real output."""
    pairs: list[tuple[EdgeKey, float]] = []
    for node in output_nodes:
        fraction_out = node.output_fraction or Fraction(1)
        if node.kind in (NodeKind.INPUT, NodeKind.CONSTRAINED_INPUT):
            continue  # degenerate: an unused input is not a product
        for edge in dag.in_edges(node.id):
            if not edge.is_excess:
                pairs.append((edge.key, float(fraction_out)))
    return pairs


def _input_draw_keys(dag: AssayDAG) -> Iterator[EdgeKey]:
    """Every non-excess edge leaving a source node (the loaded volume)."""
    for node in dag.nodes():
        if node.kind in (NodeKind.INPUT, NodeKind.CONSTRAINED_INPUT):
            for edge in dag.out_edges(node.id):
                if not edge.is_excess:
                    yield edge.key


class MaxOutputObjective(PlanningObjective):
    """Paper-faithful goal: maximise total output production (Section 3.2).

    Every layer takes its legacy path — the compiled listings are
    byte-identical to the pre-objective compiler (pinned by the golden
    suites and ``tools/waste_corpus.py``).
    """

    name = "default"
    description = "maximise total output production (paper Section 3.2)"

    def lp_objective_pairs(
        self, dag: AssayDAG, output_nodes: Sequence[Node]
    ) -> list[tuple[EdgeKey, float]]:
        return _delivery_pairs(dag, output_nodes)


class MinWasteObjective(PlanningObjective):
    """Minimise discarded + excess input volume.

    * DAGSolve dispenses at the smallest feasible scale, so no node is
      filled to capacity just because capacity is there;
    * the LP minimises ``loaded - delivered`` (total source draw minus
      total product volume) instead of maximising delivery alone;
    * cascades use front-loaded stage splits (the discard of a cascade is
      set by every factor *after* the first) and share identical dilution
      stages between rewrites, consuming would-be excess instead of
      flushing it.
    """

    name = "waste"
    description = "minimise discarded + excess input volume"
    minimize_scale = True
    waste_aware_cascades = True

    def lp_objective_pairs(
        self, dag: AssayDAG, output_nodes: Sequence[Node]
    ) -> list[tuple[EdgeKey, float]]:
        # maximise(delivered - loaded) == minimise(loaded - delivered)
        pairs = _delivery_pairs(dag, output_nodes)
        pairs.extend((key, -1.0) for key in _input_draw_keys(dag))
        return pairs

    def lp_signature_extra(self, dag: AssayDAG) -> tuple:
        return tuple(_input_draw_keys(dag))


DEFAULT_OBJECTIVE = MaxOutputObjective()
WASTE_OBJECTIVE = MinWasteObjective()

#: name -> singleton; what the CLI, wire schema, and fingerprints accept.
OBJECTIVES: dict[str, PlanningObjective] = {
    objective.name: objective
    for objective in (DEFAULT_OBJECTIVE, WASTE_OBJECTIVE)
}


def resolve_objective(
    value: "str | PlanningObjective | None",
) -> PlanningObjective:
    """Resolve a name (or pass through an instance) to an objective.

    ``None`` resolves to the paper-faithful default.
    """
    if value is None:
        return DEFAULT_OBJECTIVE
    if isinstance(value, PlanningObjective):
        return value
    try:
        return OBJECTIVES[value]
    except (KeyError, TypeError):
        known = ", ".join(sorted(OBJECTIVES))
        raise VolumeError(
            f"unknown planning objective {value!r} (known: {known})"
        ) from None
