"""Canonical content fingerprints for DAGs, specs, and compile requests.

The plan cache is **content-addressed**: a compiled plan is stored under a
stable hash of everything that determines it.  Two fingerprints exist at
different altitudes:

* :func:`compile_fingerprint` — the full key for a compiled plan: the
  canonical DAG (structure, ratios, output fractions, labels, metadata)
  plus :class:`~repro.core.limits.HardwareLimits`, the
  :class:`~repro.machine.spec.MachineSpec`, and the pipeline options
  (volume-manager knobs, auxiliary fluids).  Any delta in any of these
  produces a different fingerprint — a cache miss — while DAGs that are
  identical in content but were *built in a different node order* collide
  deliberately (the canonical form sorts nodes and edges).
* :func:`structural_fingerprint` — the narrower key for Vnorm memoization:
  only what the DAGSolve backward pass reads (kinds, edge fractions,
  output fractions, excess shares).  Labels, metadata, capacities, and
  measured volumes are excluded, so partitioned sub-DAGs and transformed
  slices hit across enclosing assays and across runtime re-dispensing.

Fingerprints are hex SHA-256 digests over the canonical JSON text and
embed :data:`~repro.core.serde.SERDE_VERSION`, so a serde format bump
invalidates every previously stored entry instead of mis-decoding it.
"""

from __future__ import annotations

import hashlib
from fractions import Fraction
from typing import Any
from collections.abc import Mapping

from .dag import AssayDAG
from .limits import HardwareLimits, Number, as_fraction
from .serde import (
    SERDE_VERSION,
    _node_to_dict,
    dumps_canonical,
    fraction_to_str,
    limits_to_dict,
)

__all__ = [
    "canonical_dag_form",
    "fingerprint_dag",
    "structural_fingerprint",
    "spec_form",
    "options_form",
    "compile_fingerprint",
    "source_fingerprint",
    "vnorm_key",
    "plan_key",
    "source_key",
]


def _digest(payload: Any) -> str:
    text = dumps_canonical(payload)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _fingerprint_meta(meta: Mapping[str, object]) -> Any:
    """Meta for hashing only: lossless where possible, ``repr`` fallback.

    Unlike serde (which must round-trip), hashing only needs *stability*,
    so opaque objects (guard AST nodes, ...) hash by their repr.
    """
    from .serde import SerdeError, encode_value

    try:
        return encode_value(dict(meta))
    except SerdeError:
        out: dict[str, Any] = {}
        for key, value in meta.items():
            try:
                out[str(key)] = encode_value(value)
            except SerdeError:
                out[str(key)] = {"$repr": repr(value)}
        return out


def canonical_dag_form(dag: AssayDAG) -> dict[str, Any]:
    """Order-independent content form: nodes sorted by id, edges by key.

    The DAG's *name* is excluded — ``enzyme.p0`` and a structurally equal
    standalone DAG must collide.  Everything else that can influence the
    compiled plan or listing (labels, metadata, capacities) is included.
    """
    nodes = []
    for node in sorted(dag.nodes(), key=lambda n: n.id):
        form = _node_to_dict(node)
        form["meta"] = _fingerprint_meta(node.meta)
        nodes.append(form)
    edges = [
        {
            "src": edge.src,
            "dst": edge.dst,
            "fraction": fraction_to_str(edge.fraction),
            "is_excess": edge.is_excess,
        }
        for edge in sorted(dag.edges(), key=lambda e: e.key)
    ]
    return {"nodes": nodes, "edges": edges}


def fingerprint_dag(dag: AssayDAG) -> str:
    """Content hash of a DAG alone (no limits/spec/options)."""
    return _digest({"v": SERDE_VERSION, "dag": canonical_dag_form(dag)})


def structural_fingerprint(dag: AssayDAG) -> str:
    """Hash of exactly what the Vnorm backward pass reads.

    Excludes labels, metadata, per-node capacities, minimum volumes, and
    measured ``available_volume`` (the dispensing pass reads those, the
    backward pass does not), so runtime re-dispensing with fresh
    measurements still hits the memoized Vnorms.
    """
    nodes = [
        {
            "id": node.id,
            "kind": node.kind.value,
            "output_fraction": (
                fraction_to_str(node.output_fraction)
                if node.output_fraction is not None
                else None
            ),
            "unknown_volume": node.unknown_volume,
            "excess_fraction": fraction_to_str(node.excess_fraction),
        }
        for node in sorted(dag.nodes(), key=lambda n: n.id)
    ]
    edges = [
        [edge.src, edge.dst, fraction_to_str(edge.fraction), edge.is_excess]
        for edge in sorted(dag.edges(), key=lambda e: e.key)
    ]
    return _digest({"v": SERDE_VERSION, "nodes": nodes, "edges": edges})


def spec_form(spec) -> dict[str, Any]:
    """Canonical form of a :class:`~repro.machine.spec.MachineSpec`."""
    return {
        "name": spec.name,
        "limits": limits_to_dict(spec.limits),
        "n_reservoirs": spec.n_reservoirs,
        "n_input_ports": spec.n_input_ports,
        "n_output_ports": spec.n_output_ports,
        "functional_units": [
            {
                "name": unit.name,
                "kind": unit.kind,
                "capacity": (
                    fraction_to_str(unit.capacity)
                    if unit.capacity is not None
                    else None
                ),
                "min_volume": (
                    fraction_to_str(unit.min_volume)
                    if unit.min_volume is not None
                    else None
                ),
                "modes": list(unit.modes),
                "senses": list(unit.senses),
            }
            for unit in spec.functional_units
        ],
        "extinction_coefficients": {
            species: fraction_to_str(as_fraction(value))
            for species, value in sorted(spec.extinction_coefficients.items())
        },
        "transfer_seconds": fraction_to_str(spec.transfer_seconds),
        "sense_seconds": fraction_to_str(spec.sense_seconds),
    }


def options_form(options: Mapping[str, object] | None) -> dict[str, Any]:
    """Canonical form of an options mapping (bools, numbers, strings)."""
    out: dict[str, Any] = {}
    for key, value in (options or {}).items():
        if isinstance(value, Fraction):
            out[str(key)] = fraction_to_str(value)
        elif isinstance(value, float):
            out[str(key)] = repr(value)
        elif isinstance(value, (list, tuple)):
            out[str(key)] = [str(item) for item in value]
        elif value is None or isinstance(value, (str, int, bool)):
            out[str(key)] = value
        else:
            out[str(key)] = repr(value)
    return out


def compile_fingerprint(
    dag: AssayDAG,
    limits: HardwareLimits,
    spec=None,
    options: Mapping[str, object] | None = None,
) -> str:
    """The full content address of one compile request."""
    return _digest(
        {
            "v": SERDE_VERSION,
            "dag": canonical_dag_form(dag),
            "limits": limits_to_dict(limits),
            "spec": spec_form(spec) if spec is not None else None,
            "options": options_form(options),
        }
    )


def source_fingerprint(
    source: str,
    spec=None,
    options: Mapping[str, object] | None = None,
) -> str:
    """Content address of raw assay *source text* plus spec and options.

    This is the batch driver's frontend-skipping fast key: a warm hit on
    the source fingerprint resolves straight to the compiled plan without
    parsing, unrolling, or DAG building.
    """
    return _digest(
        {
            "v": SERDE_VERSION,
            "source": source,
            "spec": spec_form(spec) if spec is not None else None,
            "options": options_form(options),
        }
    )


def _targets_form(
    output_targets: Mapping[str, Number] | None,
) -> dict[str, str]:
    return {
        str(node_id): fraction_to_str(as_fraction(value))
        for node_id, value in sorted((output_targets or {}).items())
    }


# ---------------------------------------------------------------------------
# namespaced cache keys
# ---------------------------------------------------------------------------
def vnorm_key(
    dag: AssayDAG,
    output_targets: Mapping[str, Number] | None = None,
) -> str:
    """Cache key for a memoized Vnorm backward pass."""
    digest = _digest(
        {
            "structure": structural_fingerprint(dag),
            "targets": _targets_form(output_targets),
        }
    )
    return f"vnorms-{digest}"


def plan_key(fingerprint: str) -> str:
    """Cache key for a full compiled plan entry."""
    return f"plan-{fingerprint}"


def source_key(fingerprint: str) -> str:
    """Cache key for a source-text -> compile-fingerprint mapping."""
    return f"src-{fingerprint}"
