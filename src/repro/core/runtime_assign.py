"""Run-time volume assignment for partitioned assays (paper Section 3.5).

The division of labour the paper prescribes: *Vnorm calculation stays at
compile time* (it only needs the graph), while the final *dispensing* step
is deferred to run time for partitions whose constrained inputs depend on
measured volumes.  At run time, the assigner computes, for every constrained
input, the ratio of its available volume to its Vnorm, and scales the whole
partition by the minimum of those ratios and the capacity-derived default —
exactly the "minimum ratio" rule of the paper.

The run-time computation is a handful of multiplications per node, which is
why it is cheap enough for the PLoC's electronic control ("a few
milliseconds on a 750-MHz processor" for glycomics in the paper), in
contrast to re-running an LP.

Two classes:

* :class:`RuntimePlanner` — compile-time object: partitions the DAG and
  precomputes Vnorms for every partition.
* :class:`RuntimeSession` — per-execution object: receives measurements,
  hands out partition assignments in dependency order, and records the
  productions of cross-partition exporters automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from collections.abc import Mapping

from .dag import AssayDAG, NodeKind
from .dagsolve import VnormResult, VolumeAssignment, dispense
from .errors import PartitionError
from .intsolve import exact_vnorms
from .limits import HardwareLimits, Number, as_fraction
from .partition import Partition, PartitionedAssay, partition_unknown_volumes

__all__ = ["RuntimePlanner", "RuntimeSession"]


class RuntimePlanner:
    """Compile-time half of the statically-unknown pipeline.

    Partitions the DAG and precomputes each partition's Vnorms once; every
    :meth:`session` then reuses them (the paper's point is precisely that
    the expensive graph pass happens offline).
    """

    def __init__(
        self, dag: AssayDAG, limits: HardwareLimits, *, cache=None
    ) -> None:
        self.limits = limits
        self.partitioned: PartitionedAssay = partition_unknown_volumes(
            dag, limits
        )
        # With a cache (``repro.compiler.cache.PlanCache`` or anything with
        # a ``memo_vnorms`` method), each partition's backward pass is
        # memoized by structural fingerprint — a sub-DAG shared with
        # another assay (or a previous compile of this one) hits
        # independently of the enclosing assay.
        self.vnorms: dict[int, VnormResult] = {
            partition.index: (
                cache.memo_vnorms(partition.dag)
                if cache is not None
                else exact_vnorms(partition.dag)
            )
            for partition in self.partitioned.partitions
        }

    @property
    def partitions(self) -> list[Partition]:
        return self.partitioned.partitions

    @property
    def n_partitions(self) -> int:
        return self.partitioned.n_partitions

    def session(self) -> "RuntimeSession":
        return RuntimeSession(self)


@dataclass
class RuntimeSession:
    """Stateful walk over the partitions of one assay execution."""

    planner: RuntimePlanner
    #: measured or derived production volumes by original node id.
    productions: dict[str, Fraction] = field(default_factory=dict)
    assignments: dict[int, VolumeAssignment] = field(default_factory=dict)

    def record_measurement(self, node_id: str, volume: Number) -> None:
        """Record the run-time measured output of an unknown-volume node."""
        if node_id not in self.planner.partitioned.measured_sources:
            raise PartitionError(
                f"{node_id!r} is not a measured source of this assay"
            )
        value = as_fraction(volume)
        if value < 0:
            raise PartitionError(f"measured volume must be >= 0, got {volume}")
        self.productions[node_id] = value

    def ready(self, index: int) -> bool:
        """True when every measurement partition ``index`` needs exists."""
        partition = self._partition(index)
        return all(
            (not spec.needs_measurement) or spec.source in self.productions
            for spec in partition.constrained
        )

    def missing_measurements(self, index: int) -> list[str]:
        partition = self._partition(index)
        return [
            spec.source
            for spec in partition.constrained
            if spec.needs_measurement and spec.source not in self.productions
        ]

    def assign(self, index: int) -> VolumeAssignment:
        """Dispense partition ``index`` (the run-time step).

        Fills every constrained input's available volume from the recorded
        measurements (scaled by its conservative share), runs the dispensing
        pass against the precomputed Vnorms, and records the productions of
        any node a later partition imports.
        """
        partition = self._partition(index)
        missing = self.missing_measurements(index)
        if missing:
            raise PartitionError(
                f"partition {index} needs measurements for {missing}"
            )
        dag = partition.dag.copy()
        for spec in partition.constrained:
            node = dag.node(spec.node_id)
            if spec.needs_measurement:
                node.available_volume = (
                    self.productions[spec.source] * spec.share
                )
            else:
                node.available_volume = spec.static_available
        assignment = dispense(
            dag, self.planner.vnorms[partition.index], self.limits
        )
        self.assignments[index] = assignment
        self._record_exports(partition, assignment)
        return assignment

    def assign_all(
        self, measurements: Mapping[str, Number] | None = None
    ) -> dict[int, VolumeAssignment]:
        """Assign every partition in order, given all measurements upfront.

        Convenient for tests and for simulators that model separators with
        known split fractions; real executions interleave
        :meth:`record_measurement` and :meth:`assign` instead.
        """
        for node_id, volume in (measurements or {}).items():
            self.record_measurement(node_id, volume)
        for partition in self.planner.partitions:
            self.assign(partition.index)
        return dict(self.assignments)

    # ------------------------------------------------------------------
    @property
    def limits(self) -> HardwareLimits:
        return self.planner.limits

    def _partition(self, index: int) -> Partition:
        try:
            return self.planner.partitions[index]
        except IndexError:
            raise PartitionError(f"no partition {index}") from None

    def _record_exports(
        self, partition: Partition, assignment: VolumeAssignment
    ) -> None:
        """Exporters with *known* volumes (Figure 8's node X) are derived
        from the partition's own assignment; unknown-volume sinks still wait
        for an explicit measurement."""
        original = self.planner.partitioned.original
        for member in partition.members:
            if member not in self.planner.partitioned.measured_sources:
                continue
            node = original.node(member)
            if node.unknown_volume:
                continue  # a real measurement must be recorded by the caller
            if member in assignment.node_volume:
                self.productions.setdefault(
                    member, assignment.node_volume[member]
                )
