"""Incremental LP model construction for hierarchy retries.

Profiling the Figure 6 loop shows the LP stage's cost is dominated by
*model construction*, not the HiGHS solve: :func:`~repro.core.lpmodel.
build_lp_model` re-derives every constraint row — Fraction arithmetic,
label strings, float conversion — from scratch on every attempt, even
though a cascade or replication rewrite touches only a small neighborhood
of the DAG.

:class:`IncrementalLPBuilder` splits the model into **per-node row
bundles** cached by a structural signature of the node (kind, capacity,
minimum, output fraction, exact in/out edge keys and ratios).  A retry
build walks the DAG once: nodes whose signature is unchanged reuse their
bundle verbatim — coefficients already resolved to floats, keyed by edge
key rather than column index, so they survive variable renumbering — and
only rewritten neighborhoods pay row construction.  The global pieces
(variable order, class-1 bounds, validation) are memoized per DAG object
in ``AssayDAG._derived`` (cleared by the same structural-mutation hooks
as the topo cache), and the objective plus the class-6 output-to-output
band are cached on the builder keyed by a signature of the output set.

The assembled :class:`~repro.core.lpmodel.LPModel` is **identical** to
what :func:`build_lp_model` produces — same row order, same sparse
matrices, same labels — so the solver sees the same problem and the
compiled plan stays byte-identical (pinned by ``tests/core/
test_lpdelta.py`` and the golden-equivalence suite).  Reuse counts are
exposed via :attr:`IncrementalLPBuilder.last_stats` and surface in the
hierarchy's attempt log and pass events.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any

import numpy as np
from scipy import sparse

from .dag import AssayDAG, NodeKind
from .errors import DagError
from .limits import HardwareLimits
from .lpmodel import (
    CLASS_CAPACITY,
    CLASS_FLOW_CONSERVATION,
    CLASS_MIN_VOLUME,
    CLASS_NON_DEFICIT,
    CLASS_OUTPUT_EQUAL,
    CLASS_OUTPUT_TO_OUTPUT,
    CLASS_RATIO,
    ConstraintRow,
    LPModel,
)
from .objectives import resolve_objective

__all__ = ["IncrementalLPBuilder"]

EdgeKey = tuple[str, str]

#: one cached row: float coefficients keyed by edge, float rhs, label.
_Row = tuple[tuple[tuple[EdgeKey, float], ...], float, ConstraintRow]


class _FloatAssembler:
    """Rebuilds :class:`~repro.core.lpmodel._MatrixBuilder` output from
    pre-floated rows (same COO construction order, so identical CSR)."""

    def __init__(self, n_vars: int) -> None:
        self.n_vars = n_vars
        self.data: list[float] = []
        self.rows: list[int] = []
        self.cols: list[int] = []
        self.rhs: list[float] = []
        self.labels: list[ConstraintRow] = []

    def add(self, row: _Row, var_index: dict[EdgeKey, int]) -> None:
        coefficients, rhs, label = row
        row_index = len(self.rhs)
        for key, value in coefficients:
            self.rows.append(row_index)
            self.cols.append(var_index[key])
            self.data.append(value)
        self.rhs.append(rhs)
        self.labels.append(label)

    def matrices(self) -> tuple[sparse.csr_matrix, np.ndarray]:
        matrix = sparse.coo_matrix(
            (self.data, (self.rows, self.cols)),
            shape=(len(self.rhs), self.n_vars),
        ).tocsr()
        return matrix, np.asarray(self.rhs, dtype=float)


def _row(
    coefficients: list[tuple[EdgeKey, Fraction]],
    rhs: Fraction,
    cls: str,
    description: str,
    *,
    equality: bool,
) -> _Row:
    return (
        tuple(
            (key, float(value)) for key, value in coefficients if value != 0
        ),
        float(rhs),
        ConstraintRow(cls, description, equality),
    )


class IncrementalLPBuilder:
    """Build RVol LP models with per-node row-bundle caching.

    One builder is threaded through one hierarchy run (it assumes the
    same ``limits`` and options for every build); :meth:`build` may be
    called with any DAG — typically the loop's current graph, which
    differs from the previous round's only where a transform rewrote it.
    """

    def __init__(
        self,
        limits: HardwareLimits,
        *,
        output_tolerance: float | None = 0.1,
        dagsolve_constraints: bool = False,
        min_volume_bounds: bool = True,
        objective=None,
    ) -> None:
        self.limits = limits
        self.output_tolerance = output_tolerance
        self.dagsolve_constraints = dagsolve_constraints
        self.min_volume_bounds = min_volume_bounds
        self.objective = resolve_objective(objective)
        #: node id -> (signature, ub rows, eq rows)
        self._bundles: dict[str, tuple[Any, list[_Row], list[_Row]]] = {}
        #: (tail signature, objective pairs, class-6 ub rows, eq rows)
        self._tail: tuple[Any, list, list[_Row], list[_Row]] | None = None
        #: reuse counters of the most recent :meth:`build`.
        self.last_stats: dict[str, int] = {"nodes": 0, "reused": 0}

    # ------------------------------------------------------------------
    @staticmethod
    def _structure(dag: AssayDAG) -> dict[str, tuple]:
        """Per-node adjacency snapshot, memoized per DAG object.

        For each non-EXCESS node id: ``(inbound edges, outbound edges,
        inbound (key, fraction) signature, outbound key signature,
        is_sink)`` with excess edges filtered out.  Lives in
        ``dag._derived`` so structural mutators invalidate it; edge
        ratios are baked in, exactly like the exact-solver context.
        """
        table = dag._derived.get("lp-structure")
        if table is None:
            table = {}
            for node in dag.nodes():
                if node.kind is NodeKind.EXCESS:
                    continue
                inbound = tuple(
                    e for e in dag.in_edges(node.id) if not e.is_excess
                )
                outbound = tuple(
                    e for e in dag.out_edges(node.id) if not e.is_excess
                )
                table[node.id] = (
                    inbound,
                    outbound,
                    tuple((e.key, e.fraction) for e in inbound),
                    tuple(e.key for e in outbound),
                    dag.out_degree(node.id) == 0,
                )
            dag._derived["lp-structure"] = table
        return table

    def _signature(self, node, entry: tuple) -> Any:
        """Everything the node's rows depend on (beyond builder config)."""
        available = (
            node.available_volume
            if node.kind is NodeKind.CONSTRAINED_INPUT
            else None
        )
        return (
            node.kind,
            node.capacity,
            node.min_volume,
            available,
            node.output_fraction,
            entry[4],
            entry[2],
            entry[3],
        )

    def _node_bundle(
        self, node, entry: tuple, output_ids: set[str]
    ) -> tuple[list[_Row], list[_Row]]:
        """The node's ub/eq rows, mirroring ``build_lp_model`` exactly."""
        limits = self.limits
        inbound, outbound = entry[0], entry[1]
        is_source = node.kind in (NodeKind.INPUT, NodeKind.CONSTRAINED_INPUT)
        ub: list[_Row] = []
        eq: list[_Row] = []

        capacity = node.capacity or limits.max_capacity
        if is_source:
            if node.kind is NodeKind.CONSTRAINED_INPUT:
                if node.available_volume is not None:
                    capacity = min(capacity, node.available_volume)
            if outbound:
                ub.append(
                    _row(
                        [(e.key, Fraction(1)) for e in outbound],
                        Fraction(capacity),
                        CLASS_CAPACITY,
                        f"{node.id}: total draw <= {capacity}",
                        equality=False,
                    )
                )
        elif inbound:
            ub.append(
                _row(
                    [(e.key, Fraction(1)) for e in inbound],
                    Fraction(capacity),
                    CLASS_CAPACITY,
                    f"{node.id}: total input <= {capacity}",
                    equality=False,
                )
            )
            if node.min_volume is not None and len(inbound) > 1:
                ub.append(
                    _row(
                        [(e.key, Fraction(-1)) for e in inbound],
                        -Fraction(node.min_volume),
                        CLASS_MIN_VOLUME,
                        f"{node.id}: total input >= {node.min_volume}",
                        equality=False,
                    )
                )

        if not is_source and node.id not in output_ids and outbound:
            fraction_out = node.output_fraction or Fraction(1)
            coefficients = [(e.key, Fraction(1)) for e in outbound]
            coefficients += [(e.key, -fraction_out) for e in inbound]
            ub.append(
                _row(
                    coefficients,
                    Fraction(0),
                    CLASS_NON_DEFICIT,
                    f"{node.id}: use <= {fraction_out} * input",
                    equality=False,
                )
            )
            if self.dagsolve_constraints:
                eq.append(
                    _row(
                        coefficients,
                        Fraction(0),
                        CLASS_FLOW_CONSERVATION,
                        f"{node.id}: use == {fraction_out} * input",
                        equality=True,
                    )
                )

        if len(inbound) > 1:
            anchor_edge = inbound[0]
            for other_edge in inbound[1:]:
                eq.append(
                    _row(
                        [
                            (anchor_edge.key, other_edge.fraction),
                            (other_edge.key, -anchor_edge.fraction),
                        ],
                        Fraction(0),
                        CLASS_RATIO,
                        (
                            f"{node.id}: {anchor_edge.src} vs "
                            f"{other_edge.src} in ratio "
                            f"{anchor_edge.fraction}:{other_edge.fraction}"
                        ),
                        equality=True,
                    )
                )
        return ub, eq

    def _tail_rows(
        self, dag: AssayDAG, structure: dict[str, tuple], output_nodes: list
    ) -> tuple[list, list[_Row], list[_Row]]:
        """Objective pairs plus the class-6 band, cached by output set."""

        def in_signature(node_id: str) -> tuple:
            entry = structure.get(node_id)
            if entry is not None:
                return entry[2]
            return tuple(
                (e.key, e.fraction)
                for e in dag.in_edges(node_id)
                if not e.is_excess
            )

        # keyed per-objective: bundles built for one cost vector must never
        # serve another, and the objective may read structure (e.g. input
        # draws) the output-set signature alone would not cover
        signature = (
            self.objective.name,
            self.objective.lp_signature_extra(dag),
            tuple(
                (
                    n.id,
                    n.kind,
                    n.output_fraction,
                    in_signature(n.id),
                    dag.in_degree(n.id),
                )
                for n in output_nodes
            ),
        )
        cached = self._tail
        if cached is not None and cached[0] == signature:
            return cached[1], cached[2], cached[3]

        objective_pairs = self.objective.lp_objective_pairs(
            dag, output_nodes
        )

        def output_volume_coefficients(
            node_id: str,
        ) -> list[tuple[EdgeKey, Fraction]]:
            node = dag.node(node_id)
            fraction_out = node.output_fraction or Fraction(1)
            return [
                (e.key, fraction_out)
                for e in dag.in_edges(node_id)
                if not e.is_excess
            ]

        ub_rows: list[_Row] = []
        eq_rows: list[_Row] = []
        real_outputs = [
            n.id
            for n in output_nodes
            if n.kind not in (NodeKind.INPUT, NodeKind.CONSTRAINED_INPUT)
            and dag.in_degree(n.id) > 0
        ]
        if len(real_outputs) > 1:
            anchor = real_outputs[0]
            anchor_coefficients = output_volume_coefficients(anchor)
            for other in real_outputs[1:]:
                other_coefficients = output_volume_coefficients(other)
                if self.output_tolerance is not None:
                    low = Fraction(str(1 - self.output_tolerance))
                    high = Fraction(str(1 + self.output_tolerance))
                    ub_rows.append(
                        _row(
                            [(k, low * c) for k, c in other_coefficients]
                            + [(k, -c) for k, c in anchor_coefficients],
                            Fraction(0),
                            CLASS_OUTPUT_TO_OUTPUT,
                            f"{low} * V({other}) <= V({anchor})",
                            equality=False,
                        )
                    )
                    ub_rows.append(
                        _row(
                            [(k, c) for k, c in anchor_coefficients]
                            + [
                                (k, -high * c)
                                for k, c in other_coefficients
                            ],
                            Fraction(0),
                            CLASS_OUTPUT_TO_OUTPUT,
                            f"V({anchor}) <= {high} * V({other})",
                            equality=False,
                        )
                    )
                if self.dagsolve_constraints:
                    eq_rows.append(
                        _row(
                            [(k, c) for k, c in anchor_coefficients]
                            + [(k, -c) for k, c in other_coefficients],
                            Fraction(0),
                            CLASS_OUTPUT_EQUAL,
                            f"V({anchor}) == V({other})",
                            equality=True,
                        )
                    )
        self._tail = (signature, objective_pairs, ub_rows, eq_rows)
        return objective_pairs, ub_rows, eq_rows

    # ------------------------------------------------------------------
    def build(self, dag: AssayDAG) -> LPModel:
        """Assemble the model, reusing cached bundles where possible."""
        derived = dag._derived
        if "lp-valid" not in derived:
            dag.validate()
            for node in dag.nodes():
                if node.unknown_volume and dag.out_degree(node.id) > 0:
                    raise DagError(
                        f"node {node.id!r} has unknown output volume and "
                        "downstream uses; partition the DAG before building "
                        "the LP"
                    )
            derived["lp-valid"] = True

        limits = self.limits
        cached_vars = derived.get("lp-varindex")
        if cached_vars is None:
            edges = tuple(e for e in dag.edges() if not e.is_excess)
            cached_vars = (
                edges,
                {edge.key: i for i, edge in enumerate(edges)},
            )
            derived["lp-varindex"] = cached_vars
        edges, base_index = cached_vars
        var_index: dict[EdgeKey, int] = dict(base_index)
        n_vars = len(var_index)

        bounds_key = (
            "lp-bounds",
            limits.least_count,
            limits.max_capacity,
            self.min_volume_bounds,
        )
        cached_bounds = derived.get(bounds_key)
        if cached_bounds is None:
            cached_bounds = []
            max_capacity_f = float(limits.max_capacity)
            least_count = limits.least_count
            for edge in edges:
                if not self.min_volume_bounds:
                    cached_bounds.append((0.0, max_capacity_f))
                    continue
                lo = least_count
                dst = dag.node(edge.dst)
                if (
                    dst.min_volume is not None
                    and dag.in_degree(edge.dst) == 1
                ):
                    lo = max(lo, dst.min_volume)
                cached_bounds.append((float(lo), max_capacity_f))
            derived[bounds_key] = cached_bounds
        bounds: list[tuple[float, float | None]] = list(cached_bounds)

        structure = self._structure(dag)
        output_nodes = list(dag.outputs())
        output_ids = {n.id for n in output_nodes}

        ub = _FloatAssembler(n_vars)
        eq = _FloatAssembler(n_vars)
        nodes_seen = 0
        reused = 0
        live: set[str] = set()
        bundles = self._bundles
        for node in dag.nodes():
            entry = structure.get(node.id)
            if entry is None:  # EXCESS
                continue
            nodes_seen += 1
            live.add(node.id)
            signature = self._signature(node, entry)
            cached = bundles.get(node.id)
            if cached is not None and cached[0] == signature:
                __, ub_rows, eq_rows = cached
                reused += 1
            else:
                ub_rows, eq_rows = self._node_bundle(node, entry, output_ids)
                bundles[node.id] = (signature, ub_rows, eq_rows)
            for row in ub_rows:
                ub.add(row, var_index)
            for row in eq_rows:
                eq.add(row, var_index)
        for stale in set(bundles) - live:
            del bundles[stale]
        self.last_stats = {"nodes": nodes_seen, "reused": reused}

        # objective + class 6 depend on the global output set; cached by
        # a signature of the outputs' ratios and inbound edges.
        tail_rows = self._tail_rows(dag, structure, output_nodes)
        objective = np.zeros(n_vars)
        for key, value in tail_rows[0]:
            objective[var_index[key]] -= value
        for row in tail_rows[1]:
            ub.add(row, var_index)
        for row in tail_rows[2]:
            eq.add(row, var_index)

        a_ub, b_ub = ub.matrices()
        a_eq, b_eq = eq.matrices()
        return LPModel(
            dag=dag,
            limits=limits,
            var_index=var_index,
            objective=objective,
            a_ub=a_ub,
            b_ub=b_ub,
            a_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
            rows_ub=ub.labels,
            rows_eq=eq.labels,
            meta={
                "output_tolerance": self.output_tolerance,
                "dagsolve_constraints": self.dagsolve_constraints,
                "planning_objective": self.objective.name,
                "incremental": dict(self.last_stats),
            },
        )
