"""DAG partitioning for statically-unknown volumes (paper Section 3.5).

Some operations — separations above all — produce output volumes that can
only be *measured at run time*.  DAGSolve's backward pass cannot flow Vnorms
through such a node, so the DAG is cut:

* every outbound edge of an unknown-volume node is severed; the consumer
  side receives a fresh :class:`~repro.core.dag.NodeKind.CONSTRAINED_INPUT`
  whose available volume is filled in once the hardware measures it;
* a known-volume node whose uses span *measurement epochs* (one use needed
  before an unknown volume is measured, another after) cannot wait either —
  all of its uses are cut and its run-time output is divided conservatively
  into equal portions, one per use (paper Figure 8), with the refinement
  that ``m`` uses landing in the same partition share a single constrained
  input of ``m/N``;
* a natural input used by several partitions is split the same way with a
  *statically* known share of capacity — glycomics' buffer3a becomes two
  50 nl constrained inputs (paper Figure 13).

We formalise "epochs" as the measurement depth of a node: the maximum
number of unknown-volume nodes on any path from an input to it (counting a
barrier once crossed).  Nodes of the same epoch that remain connected after
cutting form a partition; partitions are solvable in epoch order, each as
soon as the measurements its constrained inputs depend on exist.  Vnorm
computation per partition happens at compile time; only the final
dispensing step is deferred to run time (:mod:`repro.core.runtime_assign`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from .dag import AssayDAG, Edge, Node, NodeKind
from .errors import PartitionError
from .limits import HardwareLimits

__all__ = [
    "ConstrainedInputSpec",
    "Partition",
    "PartitionedAssay",
    "measurement_epochs",
    "partition_unknown_volumes",
]


@dataclass(frozen=True)
class ConstrainedInputSpec:
    """One constrained input created by the partitioner.

    ``share`` is the fraction of the source's production this partition may
    draw (the conservative ``m/N`` split).  ``static_available`` is set when
    the share is known at compile time (splits of natural inputs, whose
    "production" is a full reservoir); otherwise the run-time assigner
    multiplies ``share`` by the measured production of ``source``.
    """

    node_id: str
    partition: int
    source: str
    share: Fraction
    static_available: Fraction | None = None

    @property
    def needs_measurement(self) -> bool:
        return self.static_available is None


@dataclass
class Partition:
    """One solvable region of the original assay DAG."""

    index: int
    epoch: int
    dag: AssayDAG
    constrained: list[ConstrainedInputSpec] = field(default_factory=list)
    #: original node ids contained in this partition (constrained inputs
    #: excluded — they are synthetic).
    members: tuple[str, ...] = ()

    @property
    def is_static(self) -> bool:
        """True when every constrained input has a static share (so the
        partition can be fully dispensed at compile time)."""
        return all(not spec.needs_measurement for spec in self.constrained)


@dataclass
class PartitionedAssay:
    """The partitioning result: ordered partitions plus bookkeeping."""

    original: AssayDAG
    partitions: list[Partition]
    epoch_of: dict[str, int]
    #: producers whose run-time production must be recorded/measured for
    #: later partitions: unknown-volume nodes and cross-epoch exporters.
    measured_sources: tuple[str, ...] = ()

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    def partition_of(self, node_id: str) -> Partition:
        for partition in self.partitions:
            if node_id in partition.members:
                return partition
        raise PartitionError(f"node {node_id!r} not in any partition")


def measurement_epochs(dag: AssayDAG) -> dict[str, int]:
    """Measurement depth of every node.

    Inputs start at epoch 0; crossing an unknown-volume node increments the
    epoch.  A node's epoch is the maximum over its inbound paths, because it
    cannot be dispensed before *all* the measurements it depends on exist.
    """
    epochs: dict[str, int] = {}
    for node_id in dag.topological_order():
        node = dag.node(node_id)
        best = 0
        for edge in dag.in_edges(node_id):
            src = dag.node(edge.src)
            bump = 1 if src.unknown_volume else 0
            best = max(best, epochs[edge.src] + bump)
        epochs[node_id] = best
    return epochs


def _consumer_epochs(
    dag: AssayDAG, epochs: dict[str, int], node_id: str
) -> list[int]:
    return [
        epochs[edge.dst]
        for edge in dag.out_edges(node_id)
        if not edge.is_excess
    ]


def partition_unknown_volumes(
    dag: AssayDAG,
    limits: HardwareLimits,
) -> PartitionedAssay:
    """Cut the DAG at measurement barriers and return ordered partitions.

    A DAG without unknown-volume nodes comes back as a single static
    partition, so callers can treat the static and dynamic cases uniformly.
    """
    dag.validate()
    epochs = measurement_epochs(dag)

    # ------------------------------------------------------------------
    # Decide which producers must be cut.
    # ------------------------------------------------------------------
    cut_producers: dict[str, str] = {}  # producer id -> reason
    for node in dag.nodes():
        if node.kind is NodeKind.EXCESS:
            continue
        uses = _consumer_epochs(dag, epochs, node.id)
        if not uses:
            continue
        if node.unknown_volume:
            cut_producers[node.id] = "unknown-volume"
        elif node.kind in (NodeKind.INPUT, NodeKind.CONSTRAINED_INPUT):
            if len(set(uses)) > 1:
                cut_producers[node.id] = "input-split"
        elif any(epoch > epochs[node.id] for epoch in uses):
            # Figure 8: a known-volume node exporting across a barrier has
            # ALL of its uses conservatively split.
            cut_producers[node.id] = "cross-epoch-export"

    if not cut_producers:
        single = Partition(
            index=0,
            epoch=0,
            dag=dag.copy(f"{dag.name}.p0"),
            constrained=[],
            members=tuple(dag.node_ids()),
        )
        return PartitionedAssay(dag, [single], epochs, ())

    # ------------------------------------------------------------------
    # Build the cut graph: remove severed edges, add constrained inputs.
    # ------------------------------------------------------------------
    work = dag.copy(f"{dag.name}.partitioned")
    specs: list[ConstrainedInputSpec] = []
    for producer_id, reason in cut_producers.items():
        uses = [
            edge
            for edge in dag.out_edges(producer_id)
            if not edge.is_excess
        ]
        total_uses = len(uses)
        # Group the uses per consumer epoch (the m/N refinement merges all
        # of a partition's uses into one constrained input; epochs are a
        # conservative stand-in for partitions at this point — the final
        # per-component grouping happens below).
        by_epoch: dict[int, list[Edge]] = {}
        for edge in uses:
            by_epoch.setdefault(epochs[edge.dst], []).append(edge)
        for epoch, edges in sorted(by_epoch.items()):
            share = Fraction(len(edges), total_uses)
            stub_id = f"{producer_id}.in@e{epoch}"
            is_input_split = reason == "input-split"
            static = None
            if is_input_split:
                source_node = dag.node(producer_id)
                capacity = source_node.capacity or limits.max_capacity
                static = capacity * share
            work.add_node(
                Node(
                    stub_id,
                    NodeKind.CONSTRAINED_INPUT,
                    label=f"{dag.node(producer_id).display_name} (constrained)",
                    available_volume=static,
                    meta={
                        "source": producer_id,
                        "share": share,
                        "reason": reason,
                    },
                )
            )
            for edge in edges:
                work.remove_edge(producer_id, edge.dst)
                work.add_edge(Edge(stub_id, edge.dst, edge.fraction))
            specs.append(
                ConstrainedInputSpec(
                    node_id=stub_id,
                    partition=-1,  # resolved below
                    source=producer_id,
                    share=share,
                    static_available=static,
                )
            )
        if reason == "input-split" and work.out_degree(producer_id) == 0:
            # The natural input was fully replaced by its splits.
            work.remove_node(producer_id)

    # ------------------------------------------------------------------
    # Weakly-connected components of the cut graph are the partitions.
    # ------------------------------------------------------------------
    parent: dict[str, str] = {n: n for n in work.node_ids()}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for edge in work.edges():
        union(edge.src, edge.dst)

    groups: dict[str, list[str]] = {}
    for node_id in work.node_ids():
        groups.setdefault(find(node_id), []).append(node_id)

    spec_by_stub = {spec.node_id: spec for spec in specs}
    partitions: list[Partition] = []
    ordered_groups = sorted(
        groups.values(),
        key=lambda members: (
            min(
                (
                    epochs.get(m, 0)
                    for m in members
                    if m in epochs
                ),
                default=0,
            ),
            members[0],
        ),
    )
    for index, members in enumerate(ordered_groups):
        sub = work.subgraph(members, name=f"{dag.name}.p{index}")
        constrained = []
        for member in members:
            if member in spec_by_stub:
                spec = spec_by_stub[member]
                constrained.append(
                    ConstrainedInputSpec(
                        node_id=spec.node_id,
                        partition=index,
                        source=spec.source,
                        share=spec.share,
                        static_available=spec.static_available,
                    )
                )
        epoch = max(
            (epochs[m] for m in members if m in epochs), default=0
        )
        partitions.append(
            Partition(
                index=index,
                epoch=epoch,
                dag=sub,
                constrained=constrained,
                members=tuple(m for m in members if m in epochs),
            )
        )

    measured = tuple(
        sorted(
            {
                spec.source
                for spec in specs
                if spec.static_available is None
            }
        )
    )
    return PartitionedAssay(dag, partitions, epochs, measured)
