"""The ``repro serve`` daemon: a resident, multi-tenant compile service.

One asyncio event loop accepts HTTP/JSON jobs and runs them through the
same pass manager as the CLI:

* **warm compiles** are served in-process from the shared
  :class:`~repro.compiler.cache.PlanCache` (per-tenant namespaces); the
  job's PassEvents prove the hierarchy prefix was skipped;
* **cold compiles** fan out to the persistent worker pool
  (:mod:`repro.compiler.pool`) when the service runs with more than one
  worker, falling back to an in-process thread otherwise (and on pool
  breakage);
* **identical concurrent submissions coalesce**: the first becomes the
  leader, every other job (any tenant) awaits the same result and each
  deposits the entry into its *own* tenant namespace;
* **lint / certify / stress** jobs run in worker threads and return the
  exact v1 JSON reports the CLI emits.

Endpoints (wire schema v1, see ``docs/SERVICE.md``)::

    GET    /v1/healthz
    GET    /v1/metrics
    POST   /v1/jobs
    GET    /v1/jobs
    GET    /v1/jobs/<id>
    GET    /v1/jobs/<id>/result
    GET    /v1/jobs/<id>/artifact
    DELETE /v1/jobs/<id>
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any

from ..compiler import pool as pool_module
from ..compiler.cache import PlanCache, TenantCache, _TENANT_RE, entry_from_plan
from ..compiler.diagnostics import severity_counts
from ..compiler.passes import PassEventBus, events_payload, run_compile
from ..compiler.passes.stages import front_end_dag
from ..core.errors import VolumeError
from ..core.fingerprint import compile_fingerprint, plan_key
from ..core.hierarchy import VolumeManager
from ..core.serde import SerdeError, dag_from_dict, dag_to_dict
from ..lang.errors import FrontendError
from ..machine.spec import AQUACORE_SPEC, AQUACORE_XL_SPEC, MachineSpec
from .httpio import HttpError, HttpRequest, read_request, response_bytes
from .jobs import Job, JobState, JobStore
from .metrics import MetricsRegistry
from .schema import (
    DEFAULT_MAX_SOURCE_BYTES,
    WIRE_SCHEMA_VERSION,
    JobRequest,
    SchemaError,
    parse_job_request,
)

__all__ = [
    "JobFailure",
    "ReproService",
    "ServiceConfig",
    "ServiceHandle",
    "start_in_thread",
]

MACHINES: dict[str, MachineSpec] = {
    "aquacore": AQUACORE_SPEC,
    "aquacore-xl": AQUACORE_XL_SPEC,
}


class JobFailure(Exception):
    """A job that failed for a reportable, non-fatal reason."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


@dataclass
class ServiceConfig:
    """Everything one daemon instance is allowed to do."""

    host: str = "127.0.0.1"
    port: int = 0
    #: concurrent jobs; >1 additionally enables process-pool fan-out
    #: for cold compiles.  0 = auto (CPU affinity mask).
    workers: int = 1
    cache_entries: int = 512
    cache_dir: str | None = None
    #: plan-cache TTL in seconds (None = entries never expire).
    ttl_seconds: float | None = None
    #: token -> tenant; empty = open mode (tenant from X-Repro-Tenant).
    tokens: dict[str, str] = field(default_factory=dict)
    default_tenant: str = "public"
    max_source_bytes: int = DEFAULT_MAX_SOURCE_BYTES
    #: use the persistent process pool for cold compiles (workers > 1).
    use_process_pool: bool = True

    def __post_init__(self) -> None:
        if self.workers == 0:
            self.workers = pool_module.default_workers()
        if self.workers < 1:
            raise ValueError("workers must be >= 1 (or 0 for auto)")


def _error_payload(code: str, message: str) -> dict[str, Any]:
    return {
        "version": WIRE_SCHEMA_VERSION,
        "error": {"code": code, "message": message},
    }


# ---------------------------------------------------------------------------
# job execution (thread / pool side)
# ---------------------------------------------------------------------------
def _options_for(spec: MachineSpec, raw: dict[str, bool | str]) -> dict[str, Any]:
    """Normalize request options to the full fingerprint knob set."""
    return VolumeManager(spec.limits, **raw).options_dict()


def _prepare_compile(
    request: JobRequest, spec: MachineSpec, options: dict[str, Any]
):
    """Frontend + fingerprint; raises JobFailure on bad programs."""
    try:
        dag, aux_fluids = front_end_dag(request.source, None, ())
    except (FrontendError, VolumeError) as error:
        raise JobFailure("frontend-error", str(error)) from error
    fingerprint = compile_fingerprint(dag, spec.limits, spec, options)
    return dag, aux_fluids, fingerprint


def _compile_summary(ctx, bus: PassEventBus, fingerprint: str) -> dict[str, Any]:
    """The JSON-able outcome of one in-process compile context."""
    compiled = ctx.compiled
    entry = None
    if compiled.plan is not None:
        try:
            entry = entry_from_plan(
                compiled.plan, compiled.assignment, fingerprint
            )
        except SerdeError:
            entry = None
    counts = severity_counts(compiled.diagnostics.items)
    return {
        "ok": True,
        "listing": compiled.listing(),
        "plan_status": (
            compiled.plan.status if compiled.plan is not None else "runtime"
        ),
        "errors": counts["error"],
        "warnings": counts["warning"],
        "entry": entry,
        "events": events_payload(
            bus,
            program=compiled.name,
            machine=ctx.spec.name,
            fingerprint=fingerprint,
        ),
    }


def _compile_cold(payload: dict[str, Any]) -> dict[str, Any]:
    """Compile one serialized cold job; runs in a pool worker or thread.

    Mirrors :func:`repro.compiler.batch._compile_payload`: the DAG
    arrives in serde form (no re-parse), the plan entry travels back for
    the parent to deposit into the submitting tenants' namespaces.
    """
    spec: MachineSpec = payload["spec"]
    dag = dag_from_dict(payload["dag"])
    bus = PassEventBus()
    manager = VolumeManager(spec.limits, **payload["options"])
    try:
        ctx = run_compile(
            dag=dag,
            aux_fluids=tuple(payload["aux_fluids"]),
            spec=spec,
            manager=manager,
            bus=bus,
            cache=pool_module.worker_cache(),
        )
    except (FrontendError, VolumeError) as error:
        return {"ok": False, "code": "compile-error", "detail": str(error)}
    return _compile_summary(ctx, bus, payload["fingerprint"])


def _compile_warm(
    request: JobRequest,
    spec: MachineSpec,
    options: dict[str, Any],
    dag,
    aux_fluids,
    fingerprint: str,
    cache: TenantCache,
) -> dict[str, Any]:
    """Serve one warm job in-process through the tenant cache view."""
    bus = PassEventBus()
    manager = VolumeManager(spec.limits, **options)
    try:
        ctx = run_compile(
            dag=dag,
            aux_fluids=tuple(aux_fluids),
            spec=spec,
            manager=manager,
            cache=cache,
            bus=bus,
        )
    except (FrontendError, VolumeError) as error:
        raise JobFailure("compile-error", str(error)) from error
    return _compile_summary(ctx, bus, fingerprint)


def _run_lint(request: JobRequest, spec: MachineSpec, options) -> dict[str, Any]:
    from ..analysis import lint_program, lint_text
    from ..ir.parse import AISParseError

    if request.params.get("assay"):
        compiled = _compile_for_analysis(request, spec, options)
        report = lint_program(compiled.program, spec)
    else:
        try:
            report = lint_text(request.source, spec, name=request.name)
        except AISParseError as error:
            raise JobFailure("parse-error", str(error)) from error
    return {
        "report": report.to_dict(),
        "artifact": report.render_json() + "\n",
        "exit_code": report.exit_code,
    }


def _run_certify(request: JobRequest, spec: MachineSpec, options) -> dict[str, Any]:
    from ..analysis.certify import certify, certify_program
    from ..ir.parse import AISParseError, parse_ais
    from ..machine.topology import bus_topology, ring_topology

    builder = {"bus": bus_topology, "ring": ring_topology}[
        request.params.get("topology", "bus")
    ]
    topology = builder(spec)
    if request.params.get("assay"):
        compiled = _compile_for_analysis(request, spec, options)
        report = certify(compiled, topology=topology)
    else:
        try:
            program = parse_ais(request.source, name=request.name)
        except AISParseError as error:
            raise JobFailure("parse-error", str(error)) from error
        report = certify_program(program, spec, topology=topology)
    return {
        "report": report.to_dict(),
        "artifact": report.render_json() + "\n",
        "exit_code": report.exit_code,
    }


def _run_stress(
    request: JobRequest, spec: MachineSpec, options, cache
) -> dict[str, Any]:
    from ..core.limits import as_fraction
    from ..machine.faults import parse_kinds
    from ..machine.interpreter import Machine
    from ..runtime.stress import stress_compiled

    params = request.params
    try:
        kinds = (
            parse_kinds(params["kinds"]) if params.get("kinds") else None
        )
    except ValueError as error:
        raise JobFailure("bad-params", str(error)) from error
    try:
        budget = (
            as_fraction(params["budget"]) if params.get("budget") else None
        )
    except ValueError as error:
        raise JobFailure("bad-params", str(error)) from error
    compiled = _compile_for_analysis(request, spec, options, cache=cache)
    report = stress_compiled(
        compiled,
        seeds=params.get("seeds", 10),
        fault_rate=params.get("fault_rate", 0.05),
        **({"kinds": kinds} if kinds is not None else {}),
        budget=budget,
        machine_factory=lambda: Machine(spec),
    )
    survived_all = report.survived == len(report.scenarios)
    return {
        "report": report.to_dict(),
        "artifact": report.render_json() + "\n",
        "exit_code": 0 if survived_all else 1,
    }


def _compile_for_analysis(
    request: JobRequest, spec: MachineSpec, options, cache=None
):
    """Assay source -> CompiledAssay for the analyzer/stress job kinds."""
    manager = VolumeManager(spec.limits, **options)
    try:
        ctx = run_compile(
            source=request.source, spec=spec, manager=manager, cache=cache
        )
    except (FrontendError, VolumeError) as error:
        raise JobFailure("frontend-error", str(error)) from error
    return ctx.compiled


# ---------------------------------------------------------------------------
# the daemon
# ---------------------------------------------------------------------------
class ReproService:
    """One resident compile service; see the module docstring."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.cache = PlanCache(
            max_entries=self.config.cache_entries,
            directory=self.config.cache_dir,
            ttl_seconds=self.config.ttl_seconds,
        )
        self.jobs = JobStore()
        self.metrics = MetricsRegistry()
        self._tenant_caches: dict[str, TenantCache] = {}
        #: compile fingerprint -> future of the leader's summary
        #: (("ok", summary) | ("error", exc)); coalesces duplicates.
        self._inflight: dict[str, asyncio.Future] = {}
        self._sem: asyncio.Semaphore | None = None
        self._threads = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-job"
        )
        self._server: asyncio.AbstractServer | None = None
        self._tasks: set[asyncio.Task] = set()
        self._queue_depth = 0
        self._running = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the actual (host, port)."""
        self._sem = asyncio.Semaphore(self.config.workers)
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting, cancel outstanding jobs, release executors."""
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._threads.shutdown(wait=False, cancel_futures=True)
        # non-blocking inside the event loop (see pool.shutdown_pool)
        pool_module.shutdown_pool()

    # ------------------------------------------------------------------
    # tenancy
    # ------------------------------------------------------------------
    def tenant_cache(self, tenant: str) -> TenantCache:
        view = self._tenant_caches.get(tenant)
        if view is None:
            view = self.cache.for_tenant(tenant)
            self._tenant_caches[tenant] = view
        return view

    def _authenticate(self, request: HttpRequest) -> str:
        if self.config.tokens:
            header = request.headers.get("authorization", "")
            scheme, _, token = header.partition(" ")
            tenant = (
                self.config.tokens.get(token.strip())
                if scheme.lower() == "bearer"
                else None
            )
            if tenant is None:
                raise HttpError(
                    401, "unauthorized", "valid bearer token required"
                )
            return tenant
        tenant = request.headers.get("x-repro-tenant", self.config.default_tenant)
        if not _TENANT_RE.match(tenant):
            raise HttpError(400, "bad-request", f"invalid tenant {tenant!r}")
        return tenant

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_conn(self, reader, writer) -> None:
        response: bytes | None = None
        try:
            request = await read_request(
                reader, max_body=self.config.max_source_bytes + 8192
            )
            if request is not None:
                response = await self._dispatch(request)
        except HttpError as error:
            if error.status in (400, 401, 413):
                self.metrics.request_rejected()
            response = response_bytes(
                error.status, _error_payload(error.code, str(error))
            )
        except ConnectionError:
            response = None  # client vanished mid-request: nothing to say
        except Exception as error:  # pragma: no cover - defensive
            response = response_bytes(
                500,
                _error_payload(
                    "internal-error", f"{type(error).__name__}: {error}"
                ),
            )
        try:
            if response is not None:
                writer.write(response)
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            with contextlib.suppress(ConnectionError, OSError):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(self, request: HttpRequest) -> bytes:
        parts = [part for part in request.path.split("/") if part]
        if parts[:1] != ["v1"]:
            raise HttpError(404, "not-found", f"no route {request.path}")
        route = parts[1:]
        if route == ["healthz"] and request.method == "GET":
            return response_bytes(
                200, {"version": WIRE_SCHEMA_VERSION, "ok": True}
            )
        if route == ["metrics"] and request.method == "GET":
            return response_bytes(200, self.metrics_snapshot())
        if route == ["jobs"]:
            tenant = self._authenticate(request)
            if request.method == "POST":
                return self._submit(tenant, request)
            if request.method == "GET":
                jobs = sorted(
                    self.jobs.list_for(tenant), key=lambda j: j.id
                )
                return response_bytes(
                    200,
                    {
                        "version": WIRE_SCHEMA_VERSION,
                        "jobs": [job.status_payload() for job in jobs],
                    },
                )
            raise HttpError(405, "method-not-allowed", request.method)
        if len(route) in (2, 3) and route[0] == "jobs":
            tenant = self._authenticate(request)
            job = self.jobs.get(tenant, route[1])
            if job is None:
                raise HttpError(404, "not-found", f"no job {route[1]}")
            if len(route) == 2:
                if request.method == "GET":
                    return response_bytes(
                        200,
                        {
                            "version": WIRE_SCHEMA_VERSION,
                            "job": job.status_payload(),
                        },
                    )
                if request.method == "DELETE":
                    return self._cancel(job)
                raise HttpError(405, "method-not-allowed", request.method)
            if request.method != "GET":
                raise HttpError(405, "method-not-allowed", request.method)
            if route[2] == "result":
                return self._result(job)
            if route[2] == "artifact":
                return self._artifact(job)
        raise HttpError(404, "not-found", f"no route {request.path}")

    # ------------------------------------------------------------------
    # endpoint bodies
    # ------------------------------------------------------------------
    def _submit(self, tenant: str, request: HttpRequest) -> bytes:
        body = request.json()
        try:
            job_request = parse_job_request(
                body,
                machines=tuple(sorted(MACHINES)),
                max_source_bytes=self.config.max_source_bytes,
            )
        except SchemaError as error:
            self.metrics.request_rejected()
            return response_bytes(error.status, error.payload())
        job = self.jobs.create(tenant, job_request)
        self.metrics.job_submitted(job_request.kind)
        job.task = asyncio.get_running_loop().create_task(self._run_job(job))
        self._tasks.add(job.task)
        job.task.add_done_callback(self._tasks.discard)
        return response_bytes(
            202, {"version": WIRE_SCHEMA_VERSION, "job": job.status_payload()}
        )

    def _cancel(self, job: Job) -> bytes:
        if job.state is not JobState.QUEUED or job.task is None:
            raise HttpError(
                409,
                "not-cancellable",
                f"job {job.id} is {job.state.value}; only queued jobs "
                "can be cancelled",
            )
        job.task.cancel()
        return response_bytes(
            202, {"version": WIRE_SCHEMA_VERSION, "job": job.status_payload()}
        )

    def _result(self, job: Job) -> bytes:
        if job.state is JobState.DONE and job.result is not None:
            return response_bytes(
                200,
                {
                    "version": WIRE_SCHEMA_VERSION,
                    "job": job.status_payload(),
                    "result": job.result,
                },
            )
        payload = _error_payload(
            "not-finished", f"job {job.id} is {job.state.value}"
        )
        payload["job"] = job.status_payload()
        return response_bytes(409, payload)

    def _artifact(self, job: Job) -> bytes:
        if job.artifact is None:
            payload = _error_payload(
                "not-finished", f"job {job.id} is {job.state.value}"
            )
            payload["job"] = job.status_payload()
            return response_bytes(409, payload)
        return response_bytes(
            200, raw=job.artifact, content_type=job.artifact_type
        )

    def metrics_snapshot(self) -> dict[str, Any]:
        return self.metrics.snapshot(
            queue_depth=self._queue_depth,
            workers_busy=self._running,
            workers_total=self.config.workers,
            cache=self.cache.stats.to_dict(),
            cache_by_tenant={
                tenant: view.tenant_stats.to_dict()
                for tenant, view in sorted(self._tenant_caches.items())
            },
            pool=pool_module.pool_stats(),
        )

    # ------------------------------------------------------------------
    # job execution (event-loop side)
    # ------------------------------------------------------------------
    async def _run_job(self, job: Job) -> None:
        outcome = "failed"
        acquired = False
        assert self._sem is not None
        self._queue_depth += 1
        try:
            await self._sem.acquire()
            acquired = True
            self._queue_depth -= 1
            self._running += 1
            job.state = JobState.RUNNING
            job.started_s = time.time()
            await self._execute(job)
            job.state = JobState.DONE
            outcome = "done"
        except asyncio.CancelledError:
            if not acquired:
                self._queue_depth -= 1
            job.state = JobState.CANCELLED
            job.error = {"code": "cancelled", "message": "job cancelled"}
            outcome = "cancelled"
        except JobFailure as failure:
            job.state = JobState.FAILED
            job.error = {"code": failure.code, "message": str(failure)}
        except Exception as error:  # unexpected: fail the job, not the loop
            job.state = JobState.FAILED
            job.error = {
                "code": "internal-error",
                "message": f"{type(error).__name__}: {error}",
            }
        finally:
            if acquired:
                self._running -= 1
                self._sem.release()
            job.finished_s = time.time()
            self.metrics.job_finished(
                job.request.kind, outcome, job.finished_s - job.created_s
            )

    async def _execute(self, job: Job) -> None:
        spec = MACHINES[job.request.machine]
        options = _options_for(spec, job.request.options)
        loop = asyncio.get_running_loop()
        if job.request.kind == "compile":
            await self._execute_compile(job, spec, options, loop)
            return
        tcache = self.tenant_cache(job.tenant)
        if job.request.kind == "lint":
            summary = await loop.run_in_executor(
                self._threads, _run_lint, job.request, spec, options
            )
        elif job.request.kind == "certify":
            summary = await loop.run_in_executor(
                self._threads, _run_certify, job.request, spec, options
            )
        else:  # stress
            summary = await loop.run_in_executor(
                self._threads, _run_stress, job.request, spec, options, tcache
            )
        job.artifact = summary["artifact"].encode("utf-8")
        job.artifact_type = "application/json; charset=utf-8"
        job.result = {
            "version": WIRE_SCHEMA_VERSION,
            "kind": job.request.kind,
            "name": job.request.name,
            "machine": spec.name,
            "report": summary["report"],
            "exit_code": summary["exit_code"],
        }

    async def _execute_compile(self, job, spec, options, loop) -> None:
        dag, aux_fluids, fingerprint = await loop.run_in_executor(
            self._threads, _prepare_compile, job.request, spec, options
        )
        job.fingerprint = fingerprint
        tcache = self.tenant_cache(job.tenant)
        deposit = False
        if tcache.contains(plan_key(fingerprint)):
            job.cache = "hit"
            summary = await loop.run_in_executor(
                self._threads,
                _compile_warm,
                job.request,
                spec,
                options,
                dag,
                aux_fluids,
                fingerprint,
                tcache,
            )
        else:
            future = self._inflight.get(fingerprint)
            if future is not None:
                job.cache = "coalesced"
                job.coalesced = True
                self.metrics.job_coalesced()
                status, value = await future
                if status == "error":
                    raise value
                summary = value
                deposit = True
            else:
                job.cache = "miss"
                future = loop.create_future()
                self._inflight[fingerprint] = future
                try:
                    summary = await self._cold_compile(
                        job, spec, options, dag, aux_fluids, fingerprint, loop
                    )
                except BaseException as error:
                    if not future.done():
                        future.set_result(("error", error))
                    raise
                else:
                    if not future.done():
                        future.set_result(("ok", summary))
                finally:
                    self._inflight.pop(fingerprint, None)
                deposit = True
        if deposit and summary.get("entry") is not None:
            tcache.put(plan_key(fingerprint), summary["entry"])
        if summary["events"] is not None and not job.coalesced:
            # a coalesced follower shares the leader's events; folding
            # them in twice would double-count the pass histograms
            self.metrics.observe_pass_events(
                summary["events"].get("passes", [])
            )
        job.artifact = (summary["listing"] + "\n").encode("utf-8")
        job.artifact_type = "text/plain; charset=utf-8"
        job.result = {
            "version": WIRE_SCHEMA_VERSION,
            "kind": "compile",
            "name": job.request.name,
            "machine": spec.name,
            "fingerprint": fingerprint,
            "cache": job.cache,
            "coalesced": job.coalesced,
            "listing": summary["listing"],
            "plan_status": summary["plan_status"],
            "diagnostics": {
                "errors": summary["errors"],
                "warnings": summary["warnings"],
            },
            "exit_code": 1 if summary["errors"] else 0,
            "stats": {"events": summary["events"]},
        }

    async def _cold_compile(
        self, job, spec, options, dag, aux_fluids, fingerprint, loop
    ) -> dict[str, Any]:
        payload = {
            "dag": dag_to_dict(dag),
            "aux_fluids": list(aux_fluids),
            "spec": spec,
            "options": options,
            "fingerprint": fingerprint,
        }
        summary = None
        if self.config.use_process_pool and self.config.workers > 1:
            try:
                summary = await asyncio.wrap_future(
                    pool_module.submit(
                        _compile_cold,
                        payload,
                        max_workers=self.config.workers,
                        cache_dir=self.cache.directory,
                    )
                )
            except (BrokenProcessPool, SerdeError):
                # worker died (or the DAG cannot travel): recover inline
                pool_module.shutdown_pool()
                summary = None
        if summary is None:
            summary = await loop.run_in_executor(
                self._threads, _compile_cold, payload
            )
        if not summary["ok"]:
            raise JobFailure(summary["code"], summary["detail"])
        return summary


# ---------------------------------------------------------------------------
# embedding helper (tests, tools, benchmarks)
# ---------------------------------------------------------------------------
class ServiceHandle:
    """A service running on a daemon thread with its own event loop."""

    def __init__(self, url, service, loop, thread):
        self.url = url
        self.service = service
        self._loop = loop
        self._thread = thread

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_thread(
    config: ServiceConfig | None = None, **overrides: Any
) -> ServiceHandle:
    """Boot a :class:`ReproService` on a background thread.

    The embedding pattern the in-process test harness, the corpus smoke
    tool, and the service benchmark all share.
    """
    resolved = config or ServiceConfig(**overrides)
    started = threading.Event()
    box: dict[str, Any] = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        service = ReproService(resolved)
        try:
            host, port = loop.run_until_complete(service.start())
        except Exception as error:  # bind failure etc.
            box["error"] = error
            started.set()
            loop.close()
            return
        box.update(
            service=service,
            loop=loop,
            url=f"http://{host}:{port}",
        )
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(service.aclose())
            loop.close()

    thread = threading.Thread(target=runner, daemon=True, name="repro-serve")
    thread.start()
    if not started.wait(timeout=60):
        raise RuntimeError("service failed to start within 60s")
    if "error" in box:
        raise box["error"]
    return ServiceHandle(box["url"], box["service"], box["loop"], thread)
