"""Compile-as-a-service: the ``repro serve`` daemon and its client.

The CLI compiles one assay per process; every invocation pays
interpreter start, imports, and a cold plan cache.  This package keeps
one resident compiler:

* :class:`~repro.service.server.ReproService` — an asyncio HTTP/JSON
  server (stdlib only) accepting compile / lint / certify / stress jobs,
  multiplexing cold compiles onto the persistent worker pool
  (:mod:`repro.compiler.pool`) and serving warm compiles from one shared
  content-addressed :class:`~repro.compiler.cache.PlanCache` with
  per-tenant namespaces, TTL + LRU eviction, and in-flight fingerprint
  coalescing;
* :class:`~repro.service.client.ServiceClient` — a small stdlib HTTP
  client for scripting and CI (``repro client``);
* :mod:`~repro.service.metrics` — live observability built on the
  PassEvent bus: per-pass latency histograms, cache hit rates, queue
  depth, and worker utilization behind ``GET /v1/metrics``.

Wire schema v1 is documented in ``docs/SERVICE.md``.
"""

from .client import ServiceClient, ServiceError
from .jobs import Job, JobState, JobStore
from .metrics import MetricsRegistry
from .schema import (
    JOB_KINDS,
    WIRE_SCHEMA_VERSION,
    JobRequest,
    SchemaError,
    parse_job_request,
)
from .server import ReproService, ServiceConfig

__all__ = [
    "JOB_KINDS",
    "WIRE_SCHEMA_VERSION",
    "Job",
    "JobRequest",
    "JobState",
    "JobStore",
    "MetricsRegistry",
    "ReproService",
    "SchemaError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "parse_job_request",
]
