"""Job model and store for the service daemon.

A :class:`Job` is one accepted submission: queued, picked up by the
runner, and finished as done / failed / cancelled.  The
:class:`JobStore` keys jobs by id, scopes every lookup by tenant (a
tenant can only observe its own jobs), and hands out monotonically
increasing ids so the soak harness can prove no submission was lost or
duplicated.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from .schema import WIRE_SCHEMA_VERSION, JobRequest

__all__ = ["Job", "JobState", "JobStore"]


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def finished(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass
class Job:
    """One accepted submission and everything it produced."""

    id: str
    tenant: str
    request: JobRequest
    state: JobState = JobState.QUEUED
    created_s: float = field(default_factory=time.time)
    started_s: float | None = None
    finished_s: float | None = None
    #: compile fingerprint once the front end ran (compile/stress jobs).
    fingerprint: str | None = None
    #: "hit" / "miss" / "coalesced" for compile jobs; None elsewhere.
    cache: str | None = None
    coalesced: bool = False
    #: the JSON result payload (reports, stats, pass events).
    result: dict[str, Any] | None = None
    #: raw artifact bytes: byte-identical to the CLI's stdout for the
    #: same invocation (AIS listing, or a v1 JSON report).
    artifact: bytes | None = None
    artifact_type: str = "text/plain; charset=utf-8"
    error: dict[str, str] | None = None
    #: the asyncio task executing this job (for cancellation).
    task: Any = None

    def status_payload(self) -> dict[str, Any]:
        """The wire shape of ``GET /v1/jobs/<id>``."""
        payload: dict[str, Any] = {
            "version": WIRE_SCHEMA_VERSION,
            "id": self.id,
            "tenant": self.tenant,
            "kind": self.request.kind,
            "name": self.request.name,
            "state": self.state.value,
            "created_s": round(self.created_s, 6),
            "fingerprint": self.fingerprint,
            "cache": self.cache,
            "coalesced": self.coalesced,
            "result_ready": self.result is not None,
            "error": self.error,
        }
        if self.started_s is not None:
            payload["started_s"] = round(self.started_s, 6)
        if self.finished_s is not None:
            payload["finished_s"] = round(self.finished_s, 6)
            payload["elapsed_ms"] = round(
                (self.finished_s - self.created_s) * 1000, 3
            )
        return payload


class JobStore:
    """Tenant-scoped job registry; every mutation under one lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._counter = itertools.count(1)

    def create(self, tenant: str, request: JobRequest) -> Job:
        with self._lock:
            job_id = f"job-{next(self._counter):08d}"
            job = Job(id=job_id, tenant=tenant, request=request)
            self._jobs[job_id] = job
            return job

    def get(self, tenant: str, job_id: str) -> Job | None:
        """The job, or None when absent *or owned by another tenant*."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.tenant != tenant:
                return None
            return job

    def list_for(self, tenant: str) -> list[Job]:
        with self._lock:
            return [j for j in self._jobs.values() if j.tenant == tenant]

    def all_jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def count_by_state(self) -> dict[str, int]:
        counts = {state.value: 0 for state in JobState}
        with self._lock:
            for job in self._jobs.values():
                counts[job.state.value] += 1
        return counts

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)
