"""A tiny blocking client for the ``repro serve`` wire schema.

Built on :mod:`http.client` (stdlib only) so tests, the corpus smoke
tool, and the service benchmark all talk to the daemon the same way a
user script would.  One :class:`ServiceClient` is cheap — every call
opens a fresh connection, matching the server's connection-per-request
model — and is safe to share across threads.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any
from urllib.parse import urlsplit

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """A non-2xx answer from the daemon, carrying the wire error code."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(f"[{status}/{code}] {message}")
        self.status = status
        self.code = code


class ServiceClient:
    """Blocking convenience wrapper over the v1 job endpoints."""

    def __init__(
        self,
        url: str,
        *,
        token: str | None = None,
        tenant: str | None = None,
        timeout: float = 60.0,
    ):
        split = urlsplit(url if "//" in url else f"http://{url}")
        if split.scheme not in ("", "http"):
            raise ValueError(f"unsupported scheme {split.scheme!r}")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.token = token
        self.tenant = tenant
        self.timeout = timeout

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _headers(self) -> dict[str, str]:
        headers = {"Accept": "application/json"}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        if self.tenant is not None:
            headers["X-Repro-Tenant"] = self.tenant
        return headers

    def request(
        self, method: str, path: str, body: Any = None
    ) -> tuple[int, dict[str, str], bytes]:
        """One raw round trip; returns (status, headers, body bytes)."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = self._headers()
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = response.read()
            return (
                response.status,
                {k.lower(): v for k, v in response.getheaders()},
                data,
            )
        finally:
            conn.close()

    def request_json(self, method: str, path: str, body: Any = None) -> Any:
        """A round trip that decodes JSON and raises on wire errors."""
        status, _headers, data = self.request(method, path, body)
        try:
            decoded = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise ServiceError(
                status, "bad-response", "daemon returned non-JSON"
            ) from None
        if status >= 400:
            error = decoded.get("error", {})
            raise ServiceError(
                status,
                error.get("code", "error"),
                error.get("message", f"HTTP {status}"),
            )
        return decoded

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> dict[str, Any]:
        return self.request_json("GET", "/v1/healthz")

    def metrics(self) -> dict[str, Any]:
        return self.request_json("GET", "/v1/metrics")

    def submit(
        self,
        kind: str,
        source: str,
        *,
        name: str | None = None,
        machine: str | None = None,
        options: dict[str, bool | str] | None = None,
        params: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """POST one job; returns the queued job status payload."""
        body: dict[str, Any] = {"kind": kind, "source": source}
        if name is not None:
            body["name"] = name
        if machine is not None:
            body["machine"] = machine
        if options:
            body["options"] = options
        if params:
            body["params"] = params
        return self.request_json("POST", "/v1/jobs", body)["job"]

    def status(self, job_id: str) -> dict[str, Any]:
        return self.request_json("GET", f"/v1/jobs/{job_id}")["job"]

    def list_jobs(self) -> list[dict[str, Any]]:
        return self.request_json("GET", "/v1/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self.request_json("DELETE", f"/v1/jobs/{job_id}")["job"]

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 120.0,
        poll_s: float = 0.01,
    ) -> dict[str, Any]:
        """Poll until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.status(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} after {timeout}s"
                )
            time.sleep(poll_s)

    def result(self, job_id: str) -> dict[str, Any]:
        return self.request_json("GET", f"/v1/jobs/{job_id}/result")

    def artifact(self, job_id: str) -> bytes:
        status, _headers, data = self.request(
            "GET", f"/v1/jobs/{job_id}/artifact"
        )
        if status != 200:
            decoded = json.loads(data.decode("utf-8"))
            error = decoded.get("error", {})
            raise ServiceError(
                status,
                error.get("code", "error"),
                error.get("message", f"HTTP {status}"),
            )
        return data

    def run(
        self,
        kind: str,
        source: str,
        *,
        timeout: float = 120.0,
        **submit_kwargs: Any,
    ) -> dict[str, Any]:
        """Submit, wait, and fetch the result in one call."""
        job = self.submit(kind, source, **submit_kwargs)
        final = self.wait(job["id"], timeout=timeout)
        if final["state"] != "done":
            error = final.get("error") or {}
            raise ServiceError(
                409,
                error.get("code", final["state"]),
                error.get("message", f"job ended {final['state']}"),
            )
        return self.result(job["id"])
