"""A minimal HTTP/1.1 layer over asyncio streams (stdlib only).

``repro serve`` needs exactly enough HTTP to speak JSON with scripting
clients: request line, headers, a Content-Length body, one response,
connection close.  No chunked encoding, no keep-alive, no TLS — the
daemon fronts trusted lab/CI networks; anything heavier belongs in a
reverse proxy.

Robustness contract (exercised by ``tests/service/test_lifecycle.py``):

* malformed request lines / headers raise :class:`HttpError` (400),
  which the server answers and closes — it never kills the accept loop;
* a declared body larger than the configured cap is refused with 413
  before reading it;
* a client that disconnects mid-body surfaces ``ConnectionError``; the
  connection handler drops it without creating a job.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = ["HttpError", "HttpRequest", "read_request", "response_bytes"]

_MAX_LINE = 8192
_MAX_HEADERS = 64

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """A protocol-level refusal: status + stable error code."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise HttpError(
                400, "bad-request", "body is not valid JSON"
            ) from None


async def read_request(
    reader: asyncio.StreamReader, *, max_body: int
) -> HttpRequest | None:
    """Parse one request; None on a clean EOF before any bytes.

    Raises:
        HttpError: malformed request line/headers or oversized body.
        ConnectionError: the client vanished mid-request.
    """
    try:
        line = await reader.readline()
    except (ValueError, asyncio.LimitOverrunError):
        raise HttpError(400, "bad-request", "request line too long") from None
    if not line:
        return None
    if len(line) > _MAX_LINE:
        raise HttpError(400, "bad-request", "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "bad-request", "malformed request line")
    method, target, _version = parts
    split = urlsplit(target)
    path = unquote(split.path)
    query = dict(parse_qsl(split.query))

    headers: dict[str, str] = {}
    for _ in range(_MAX_HEADERS + 1):
        try:
            line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            raise HttpError(400, "bad-request", "header line too long") from None
        if not line:
            raise ConnectionError("client closed during headers")
        if line in (b"\r\n", b"\n"):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, "bad-request", "malformed header line")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(400, "bad-request", "too many headers")

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
            if length < 0:
                raise ValueError
        except ValueError:
            raise HttpError(
                400, "bad-request", "invalid Content-Length"
            ) from None
        if length > max_body:
            raise HttpError(
                413,
                "oversized-program",
                f"request body exceeds {max_body} bytes",
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise ConnectionError("client closed mid-body") from None
    elif headers.get("transfer-encoding"):
        raise HttpError(
            400, "bad-request", "chunked transfer encoding is not supported"
        )
    return HttpRequest(
        method=method.upper(),
        path=path,
        query=query,
        headers=headers,
        body=body,
    )


def response_bytes(
    status: int,
    payload: Any = None,
    *,
    raw: bytes | None = None,
    content_type: str = "application/json; charset=utf-8",
) -> bytes:
    """Serialize one response; ``payload`` is JSON unless ``raw`` given."""
    if raw is not None:
        body = raw
    else:
        body = (
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        ).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("latin-1")
    return head + body
