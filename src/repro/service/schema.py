"""Wire schema v1: request validation for the job endpoints.

One submit body shape covers all four job kinds::

    {
      "kind":    "compile" | "lint" | "certify" | "stress",
      "source":  "<assay source or AIS listing text>",
      "name":    "glucose",            # optional; default derives "job"
      "machine": "aquacore",           # optional machine spec name
      "options": {"use_lp": true, "allow_cascading": true,
                  "allow_replication": true,
                  "objective": "default"},             # optional knobs
      "params":  { ... kind-specific, see below ... }  # optional
    }

Kind-specific ``params``:

* ``compile`` — none.
* ``lint`` — ``{"assay": bool}``: treat ``source`` as assay source and
  compile before linting (default: ``source`` is an AIS listing).
* ``certify`` — ``{"assay": bool, "topology": "bus"|"ring"}``.
* ``stress`` — ``{"seeds": int, "fault_rate": float,
  "kinds": ["metering-drift", ...], "budget": "<nl>"}``.

Validation is strict: unknown top-level or ``params`` keys, wrong
types, and unsupported kinds are rejected with a structured
:class:`SchemaError` carrying the HTTP status and a stable error code.
Oversized programs are rejected with 413 / ``oversized-program``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "DEFAULT_MAX_SOURCE_BYTES",
    "JOB_KINDS",
    "WIRE_SCHEMA_VERSION",
    "JobRequest",
    "SchemaError",
    "parse_job_request",
]

#: bumped only on breaking changes to request/response payload shapes.
WIRE_SCHEMA_VERSION = 1

JOB_KINDS = ("compile", "lint", "certify", "stress")

#: default cap on the submitted source text (bytes, UTF-8).
DEFAULT_MAX_SOURCE_BYTES = 262_144

_TOP_KEYS = {"kind", "source", "name", "machine", "options", "params"}
_OPTION_KEYS = {"use_lp", "allow_cascading", "allow_replication", "objective"}
_OBJECTIVES = ("default", "waste")
_PARAM_KEYS = {
    "compile": set(),
    "lint": {"assay"},
    "certify": {"assay", "topology"},
    "stress": {"seeds", "fault_rate", "kinds", "budget"},
}
_TOPOLOGIES = ("bus", "ring")


class SchemaError(Exception):
    """A request the wire schema rejects; maps onto one HTTP response."""

    def __init__(self, code: str, message: str, *, status: int = 400):
        super().__init__(message)
        self.code = code
        self.status = status

    def payload(self) -> dict[str, Any]:
        return {
            "version": WIRE_SCHEMA_VERSION,
            "error": {"code": self.code, "message": str(self)},
        }


@dataclass
class JobRequest:
    """One validated job submission."""

    kind: str
    source: str
    name: str = "job"
    machine: str = "aquacore"
    options: dict[str, bool | str] = field(default_factory=dict)
    params: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "source": self.source,
            "name": self.name,
            "machine": self.machine,
            "options": dict(self.options),
            "params": dict(self.params),
        }


def _expect(condition: bool, code: str, message: str, status: int = 400):
    if not condition:
        raise SchemaError(code, message, status=status)


def _validate_params(kind: str, params: dict[str, Any]) -> dict[str, Any]:
    allowed = _PARAM_KEYS[kind]
    unknown = set(params) - allowed
    _expect(
        not unknown,
        "bad-request",
        f"unknown params for kind {kind!r}: {sorted(unknown)}",
    )
    if "assay" in params:
        _expect(
            isinstance(params["assay"], bool),
            "bad-request",
            "params.assay must be a boolean",
        )
    if "topology" in params:
        _expect(
            params["topology"] in _TOPOLOGIES,
            "bad-request",
            f"params.topology must be one of {_TOPOLOGIES}",
        )
    if "seeds" in params:
        _expect(
            isinstance(params["seeds"], int)
            and not isinstance(params["seeds"], bool)
            and 1 <= params["seeds"] <= 10_000,
            "bad-request",
            "params.seeds must be an integer in [1, 10000]",
        )
    if "fault_rate" in params:
        rate = params["fault_rate"]
        _expect(
            isinstance(rate, (int, float))
            and not isinstance(rate, bool)
            and 0.0 <= float(rate) <= 1.0,
            "bad-request",
            "params.fault_rate must be a number in [0, 1]",
        )
    if "kinds" in params:
        kinds = params["kinds"]
        _expect(
            isinstance(kinds, list)
            and kinds
            and all(isinstance(item, str) for item in kinds),
            "bad-request",
            "params.kinds must be a non-empty list of fault-kind names",
        )
    if "budget" in params:
        _expect(
            isinstance(params["budget"], str) and params["budget"],
            "bad-request",
            "params.budget must be a volume string in nl",
        )
    return dict(params)


def parse_job_request(
    body: Any,
    *,
    machines: tuple[str, ...] = ("aquacore", "aquacore-xl"),
    max_source_bytes: int = DEFAULT_MAX_SOURCE_BYTES,
) -> JobRequest:
    """Validate a decoded submit body into a :class:`JobRequest`.

    Raises :class:`SchemaError` with a stable code on any violation.
    """
    _expect(isinstance(body, dict), "bad-request", "body must be a JSON object")
    unknown = set(body) - _TOP_KEYS
    _expect(
        not unknown, "bad-request", f"unknown fields: {sorted(unknown)}"
    )
    kind = body.get("kind")
    _expect(
        isinstance(kind, str), "bad-request", 'missing required field "kind"'
    )
    _expect(
        kind in JOB_KINDS,
        "unsupported-kind",
        f"kind must be one of {JOB_KINDS}, got {kind!r}",
    )
    source = body.get("source")
    _expect(
        isinstance(source, str) and source.strip(),
        "bad-request",
        'missing required field "source" (non-empty text)',
    )
    _expect(
        len(source.encode("utf-8")) <= max_source_bytes,
        "oversized-program",
        f"source exceeds {max_source_bytes} bytes",
        status=413,
    )
    name = body.get("name", "job")
    _expect(
        isinstance(name, str) and 0 < len(name) <= 128,
        "bad-request",
        "name must be a string of at most 128 chars",
    )
    machine = body.get("machine", machines[0])
    _expect(
        machine in machines,
        "bad-request",
        f"machine must be one of {machines}, got {machine!r}",
    )
    options = body.get("options", {})
    _expect(
        isinstance(options, dict), "bad-request", "options must be an object"
    )
    unknown = set(options) - _OPTION_KEYS
    _expect(
        not unknown,
        "bad-request",
        f"unknown options: {sorted(unknown)}",
    )
    _expect(
        all(
            isinstance(value, bool)
            for key, value in options.items()
            if key != "objective"
        ),
        "bad-request",
        "options values must be booleans",
    )
    if "objective" in options:
        _expect(
            options["objective"] in _OBJECTIVES,
            "bad-request",
            f"options.objective must be one of {_OBJECTIVES}, "
            f"got {options['objective']!r}",
        )
    params = body.get("params", {})
    _expect(
        isinstance(params, dict), "bad-request", "params must be an object"
    )
    return JobRequest(
        kind=kind,
        source=source,
        name=name,
        machine=machine,
        options={
            key: (value if key == "objective" else bool(value))
            for key, value in options.items()
        },
        params=_validate_params(kind, params),
    )
