"""Service observability: the PassEvent bus turned into live metrics.

Every finished job feeds its instrumented compile events into one
:class:`MetricsRegistry`; ``GET /v1/metrics`` snapshots it together
with cache hit rates, queue depth, and worker utilization.  Counters
are exact (one increment per observed job event, all under one lock),
so the soak harness can reconcile them against per-client results.
"""

from __future__ import annotations

import threading
import time
from typing import Any

__all__ = ["Histogram", "MetricsRegistry", "HISTOGRAM_BOUNDS_MS"]

#: upper bucket bounds in milliseconds; the last bucket is +inf.
HISTOGRAM_BOUNDS_MS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0,
)


class Histogram:
    """A fixed-bucket latency histogram (Prometheus-style, in ms)."""

    __slots__ = ("counts", "total", "sum_ms", "max_ms")

    def __init__(self) -> None:
        self.counts = [0] * (len(HISTOGRAM_BOUNDS_MS) + 1)
        self.total = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def observe(self, value_ms: float) -> None:
        index = len(HISTOGRAM_BOUNDS_MS)
        for i, bound in enumerate(HISTOGRAM_BOUNDS_MS):
            if value_ms <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += 1
        self.sum_ms += value_ms
        self.max_ms = max(self.max_ms, value_ms)

    def to_dict(self) -> dict[str, Any]:
        buckets = {
            f"le_{bound:g}": count
            for bound, count in zip(HISTOGRAM_BOUNDS_MS, self.counts)
        }
        buckets["le_inf"] = self.counts[-1]
        return {
            "count": self.total,
            "sum_ms": round(self.sum_ms, 4),
            "mean_ms": round(self.sum_ms / self.total, 4) if self.total else 0.0,
            "max_ms": round(self.max_ms, 4),
            "buckets": buckets,
        }


class MetricsRegistry:
    """Exact service counters plus per-pass/per-kind latency histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started_s = time.time()
        #: kind -> outcome -> count; outcomes mirror JobState terminals
        #: plus "submitted" and "rejected" (schema/auth refusals).
        self._jobs: dict[str, dict[str, int]] = {}
        self._coalesced = 0
        self._rejected = 0
        self._pass_hist: dict[str, Histogram] = {}
        self._job_hist: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def _kind(self, kind: str) -> dict[str, int]:
        return self._jobs.setdefault(
            kind,
            {"submitted": 0, "done": 0, "failed": 0, "cancelled": 0},
        )

    def job_submitted(self, kind: str) -> None:
        with self._lock:
            self._kind(kind)["submitted"] += 1

    def job_finished(self, kind: str, outcome: str, elapsed_s: float) -> None:
        with self._lock:
            self._kind(kind)[outcome] += 1
            self._job_hist.setdefault(kind, Histogram()).observe(
                elapsed_s * 1000
            )

    def job_coalesced(self) -> None:
        with self._lock:
            self._coalesced += 1

    def request_rejected(self) -> None:
        with self._lock:
            self._rejected += 1

    def observe_pass_events(self, events: list[dict[str, Any]]) -> None:
        """Fold one compile's ``events_payload`` pass list into the
        per-pass latency histograms (only passes that actually ran)."""
        with self._lock:
            for event in events:
                if event.get("status") not in ("ok", "failed"):
                    continue
                hist = self._pass_hist.setdefault(event["name"], Histogram())
                hist.observe(float(event.get("wall_ms", 0.0)))

    # ------------------------------------------------------------------
    def snapshot(
        self,
        *,
        queue_depth: int,
        workers_busy: int,
        workers_total: int,
        cache: dict[str, Any] | None = None,
        cache_by_tenant: dict[str, dict[str, Any]] | None = None,
        pool: dict[str, int] | None = None,
    ) -> dict[str, Any]:
        with self._lock:
            jobs = {
                kind: dict(counts)
                for kind, counts in sorted(self._jobs.items())
            }
            totals = {"submitted": 0, "done": 0, "failed": 0, "cancelled": 0}
            for counts in jobs.values():
                for outcome, count in counts.items():
                    totals[outcome] += count
            payload: dict[str, Any] = {
                "version": 1,
                "uptime_s": round(time.time() - self._started_s, 3),
                "queue_depth": queue_depth,
                "workers": {
                    "total": workers_total,
                    "busy": workers_busy,
                    "utilization": (
                        round(workers_busy / workers_total, 4)
                        if workers_total
                        else 0.0
                    ),
                },
                "jobs": jobs,
                "jobs_total": totals,
                "coalesced": self._coalesced,
                "rejected": self._rejected,
                "job_latency_ms": {
                    kind: hist.to_dict()
                    for kind, hist in sorted(self._job_hist.items())
                },
                "passes": {
                    name: hist.to_dict()
                    for name, hist in sorted(self._pass_hist.items())
                },
            }
        if cache is not None:
            payload["cache"] = cache
        if cache_by_tenant is not None:
            payload["cache_by_tenant"] = cache_by_tenant
        if pool is not None:
            payload["pool"] = pool
        return payload
