"""AIS program container.

An :class:`AISProgram` is a straight-line instruction list (loops are fully
unrolled by the front end, Section 3.5) plus the bindings that make it
executable: which input port supplies which fluid, which machine spec it
was compiled for, and the provenance map from instructions back to assay
DAG nodes/edges (used by the volume-plan resolver and by regeneration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator, Sequence

from .instructions import Instruction, Opcode

__all__ = ["AISProgram"]


@dataclass
class AISProgram:
    """A compiled assay."""

    name: str
    instructions: list[Instruction] = field(default_factory=list)
    #: fluid name -> input port id (e.g. {"Glucose": "ip1"}).
    input_ports: dict[str, str] = field(default_factory=dict)
    #: machine spec name the reservoir allocation assumed.
    machine: str | None = None
    #: declared result variables (flattened array cells included).
    results: tuple[str, ...] = ()
    meta: dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def append(self, instruction: Instruction) -> Instruction:
        instruction.validate()
        self.instructions.append(instruction)
        return instruction

    def extend(self, instructions: Sequence[Instruction]) -> None:
        for instruction in instructions:
            self.append(instruction)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    # ------------------------------------------------------------------
    def wet_instructions(self) -> list[Instruction]:
        return [i for i in self.instructions if i.is_wet]

    def count(self, opcode: Opcode) -> int:
        return sum(1 for i in self.instructions if i.opcode is opcode)

    def moves_for_edge(self, edge: tuple[str, str]) -> list[int]:
        """Indices of instructions dispensing the given DAG edge."""
        return [
            index
            for index, instruction in enumerate(self.instructions)
            if instruction.edge == edge
        ]

    # ------------------------------------------------------------------
    def render(self, *, indent: str = "  ") -> str:
        """Paper-style listing: ``name{ ... }``."""
        lines = [f"{self.name}{{"]
        lines += [f"{indent}{instruction.render()}" for instruction in self.instructions]
        lines.append("}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
