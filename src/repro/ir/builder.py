"""Lowering: unrolled flat assay -> volume DAG.

Node identity is the canonical fluid key from the unroller; primary inputs
become INPUT nodes.  Operations map as:

====================  ==========================================
flat statement        DAG effect
====================  ==========================================
mix                   MIX node; inbound edges in the declared ratio
                      (equal parts when no RATIOS clause was given)
incubate              HEAT node, flow-conserving
concentrate           HEAT node with ``output_fraction = keep``
separate              SEPARATE node; ``unknown_volume`` unless a YIELD
                      hint made the output fraction static
sense                 no node — a non-destructive read recorded in the
                      sensed node's ``meta["senses"]``
output                ``meta["outputs"]`` mark on the shipped node
====================  ==========================================

Every node's ``meta`` carries what codegen needs: ``seq`` (program order),
``duration``, ``temperature``, ``mode``, ``matrix``/``pusher`` fluids,
``guard`` for conservatively-included branches.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.dag import AssayDAG, Edge, Node, NodeKind, fractions_from_ratio
from ..lang.errors import SemanticError
from ..lang.unroll import FlatAssay, FlatStatement

__all__ = ["build_dag_from_flat"]


def build_dag_from_flat(flat: FlatAssay) -> AssayDAG:
    """Build the volume-management DAG for an unrolled assay."""
    dag = AssayDAG(flat.name)
    #: fluid key -> current node id (versioned under dynamic guards)
    version: dict[str, str] = {}

    for key in flat.input_fluids:
        dag.add_input(key, label=key, meta={"seq": -1})
        version[key] = key

    def resolve(key: str, line: int) -> str:
        node_id = version.get(key)
        if node_id is None:
            raise SemanticError(f"fluid {key!r} has no definition", line)
        return node_id

    def fresh_id(key: str) -> str:
        if key not in dag:
            return key
        suffix = 2
        while f"{key}#{suffix}" in dag:
            suffix += 1
        return f"{key}#{suffix}"

    for statement in flat.statements:
        meta = {
            "seq": statement.seq,
            "line": statement.line,
            "op": statement.kind,
        }
        if statement.guard is not None:
            meta["guard"] = statement.guard
        if statement.duration is not None:
            meta["duration"] = statement.duration
        if statement.temperature is not None:
            meta["temperature"] = statement.temperature

        if statement.kind == "mix":
            sources = [resolve(key, statement.line) for key in statement.operands]
            ratios = statement.ratios or (1,) * len(sources)
            node_id = fresh_id(statement.target)
            node = dag.add_node(
                Node(
                    node_id,
                    NodeKind.MIX,
                    ratio=tuple(ratios),
                    label=statement.target,
                    no_excess=statement.no_excess,
                    meta=meta,
                )
            )
            for source, fraction in zip(sources, fractions_from_ratio(ratios)):
                dag.add_edge(Edge(source, node_id, fraction))
            version[statement.target] = node_id

        elif statement.kind in ("incubate", "concentrate"):
            source = resolve(statement.operands[0], statement.line)
            node_id = fresh_id(statement.target)
            output_fraction = (
                statement.keep_fraction
                if statement.kind == "concentrate"
                else Fraction(1)
            )
            dag.add_node(
                Node(
                    node_id,
                    NodeKind.HEAT,
                    output_fraction=output_fraction,
                    label=statement.target,
                    meta=meta,
                )
            )
            dag.add_edge(Edge(source, node_id, Fraction(1)))
            version[statement.target] = node_id

        elif statement.kind == "separate":
            source = resolve(statement.operands[0], statement.line)
            node_id = fresh_id(statement.target)
            meta["mode"] = statement.mode
            meta["matrix"] = statement.matrix
            meta["pusher"] = statement.pusher
            meta["waste"] = statement.waste
            unknown = statement.yield_fraction is None
            dag.add_node(
                Node(
                    node_id,
                    NodeKind.SEPARATE,
                    output_fraction=None if unknown else statement.yield_fraction,
                    unknown_volume=unknown,
                    label=statement.target,
                    meta=meta,
                )
            )
            dag.add_edge(Edge(source, node_id, Fraction(1)))
            version[statement.target] = node_id

        elif statement.kind == "sense":
            node_id = resolve(statement.operands[0], statement.line)
            senses: list[dict] = dag.node(node_id).meta.setdefault("senses", [])
            senses.append(
                {
                    "mode": statement.mode,
                    "result": statement.result,
                    "seq": statement.seq,
                    "guard": statement.guard,
                }
            )

        elif statement.kind == "output":
            node_id = resolve(statement.operands[0], statement.line)
            outputs: list[dict] = dag.node(node_id).meta.setdefault("outputs", [])
            outputs.append({"seq": statement.seq, "guard": statement.guard})

        else:  # pragma: no cover - unroller emits no other kinds
            raise SemanticError(f"unknown flat statement kind {statement.kind!r}")

    dag.validate()
    return dag
