"""The AquaCore Instruction Set (paper Table 1).

Wet instructions (executed by the fluidic datapath)::

    input  id2, id1          load from input port id1 into id2
    output id2, id1          send id1's contents to output port id2
    move   id1, id2, <rel>   move (relative volume) from id2 into id1
    move-abs id1, id2, vol   move an absolute volume
    mix    id1, time         homogenise the mixer
    incubate id, temp, time  heat
    concentrate id, temp, time
    separate.{CE,SIZE,AF,LC} id1, args..., time
    sense.{OD,FL} id1, senseval

Dry instructions (electronic control)::

    dry-mov r, x   dry-add r, x   dry-sub r, x   dry-mul r, x

Operand ids name reservoirs (``s1``), ports (``ip1``/``op1``), functional
units (``mixer1``) and functional-unit sub-ports (``separator2.out1``,
``separator1.matrix``) — the *storage-less operand* feature: one
instruction can feed another without a reservoir in between.

``move`` volumes are **relative** (translated to absolute volumes by the
volume-management plan at run time, Section 2.1); instructions carry a
provenance ``edge`` linking them to the DAG edge whose assigned volume they
dispense.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum, unique
from fractions import Fraction

from ..core.limits import Number, as_fraction

__all__ = [
    "Opcode",
    "Operand",
    "Instruction",
    "input_",
    "output",
    "move",
    "move_abs",
    "mix",
    "incubate",
    "concentrate",
    "separate",
    "sense",
    "dry_mov",
    "dry_add",
    "dry_sub",
    "dry_mul",
]


@unique
class Opcode(Enum):
    INPUT = "input"
    OUTPUT = "output"
    MOVE = "move"
    MOVE_ABS = "move-abs"
    MIX = "mix"
    INCUBATE = "incubate"
    CONCENTRATE = "concentrate"
    SEPARATE = "separate"
    SENSE = "sense"
    DRY_MOV = "dry-mov"
    DRY_ADD = "dry-add"
    DRY_SUB = "dry-sub"
    DRY_MUL = "dry-mul"

    @property
    def is_wet(self) -> bool:
        return not self.value.startswith("dry-")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Opcode.{self.name}"


SEPARATE_MODES = ("CE", "SIZE", "AF", "LC")
SENSE_MODES = ("OD", "FL")


@dataclass(frozen=True)
class Operand:
    """A location: component id plus optional sub-port."""

    base: str
    sub: str | None = None

    @classmethod
    def parse(cls, text: str) -> "Operand":
        base, dot, sub = text.partition(".")
        if not base:
            raise ValueError(f"empty operand in {text!r}")
        return cls(base, sub if dot else None)

    def __str__(self) -> str:
        return self.base if self.sub is None else f"{self.base}.{self.sub}"


def _operand(value: str | Operand) -> Operand:
    return value if isinstance(value, Operand) else Operand.parse(value)


@dataclass
class Instruction:
    """One AIS instruction.

    Only the fields relevant to the opcode are set; :meth:`validate` checks
    the combination.  ``edge`` ties a ``move``/``input`` to the DAG edge (or
    node, for inputs) whose planned volume it dispenses; ``comment`` carries
    the fluid name the paper prints after ``;`` in its listings.
    """

    opcode: Opcode
    dst: Operand | None = None
    src: Operand | None = None
    rel_volume: Fraction | None = None
    abs_volume: Fraction | None = None
    temperature: Fraction | None = None
    duration: Fraction | None = None
    mode: str | None = None       # separate/sense flavour
    result: str | None = None     # sense destination variable
    reg: str | None = None        # dry ops: target register
    value: int | str | None = None  # dry ops: immediate or register
    comment: str | None = None
    edge: tuple[str, str] | None = None
    meta: dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        op = self.opcode
        if op in (Opcode.INPUT, Opcode.OUTPUT):
            if self.dst is None or self.src is None:
                raise ValueError(f"{op.value} needs dst and src")
        elif op in (Opcode.MOVE, Opcode.MOVE_ABS):
            if self.dst is None or self.src is None:
                raise ValueError(f"{op.value} needs dst and src")
            if op is Opcode.MOVE_ABS and self.abs_volume is None:
                raise ValueError("move-abs needs an absolute volume")
        elif op is Opcode.MIX:
            if self.dst is None or self.duration is None:
                raise ValueError("mix needs a unit and a duration")
        elif op in (Opcode.INCUBATE, Opcode.CONCENTRATE):
            if self.dst is None or self.temperature is None or self.duration is None:
                raise ValueError(f"{op.value} needs unit, temperature, time")
        elif op is Opcode.SEPARATE:
            if self.dst is None or self.mode not in SEPARATE_MODES:
                raise ValueError(
                    f"separate needs a unit and a mode in {SEPARATE_MODES}"
                )
            if self.duration is None:
                raise ValueError("separate needs a duration")
        elif op is Opcode.SENSE:
            if self.dst is None or self.mode not in SENSE_MODES:
                raise ValueError(f"sense needs a unit and a mode in {SENSE_MODES}")
            if self.result is None:
                raise ValueError("sense needs a result variable")
        else:  # dry ops
            if self.reg is None or self.value is None:
                raise ValueError(f"{op.value} needs a register and a value")

    @property
    def is_wet(self) -> bool:
        return self.opcode.is_wet

    def with_volume(self, volume: Number) -> "Instruction":
        """Copy with a resolved absolute volume (plan application)."""
        return replace(
            self,
            abs_volume=as_fraction(volume),
            meta=dict(self.meta),
        )

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Paper-style text form (Figures 9(b)-11(b))."""
        op = self.opcode
        if op is Opcode.INPUT:
            body = f"input {self.dst}, {self.src}"
        elif op is Opcode.OUTPUT:
            body = f"output {self.dst}, {self.src}"
        elif op is Opcode.MOVE:
            if self.rel_volume is not None:
                rel = (
                    str(self.rel_volume)
                    if self.rel_volume.denominator != 1
                    else str(self.rel_volume.numerator)
                )
                body = f"move {self.dst}, {self.src}, {rel}"
            else:
                body = f"move {self.dst}, {self.src}"
        elif op is Opcode.MOVE_ABS:
            body = f"move-abs {self.dst}, {self.src}, {float(self.abs_volume):g}"
        elif op is Opcode.MIX:
            body = f"mix {self.dst}, {_num(self.duration)}"
        elif op in (Opcode.INCUBATE, Opcode.CONCENTRATE):
            body = (
                f"{op.value} {self.dst}, {_num(self.temperature)}, "
                f"{_num(self.duration)}"
            )
        elif op is Opcode.SEPARATE:
            body = f"separate.{self.mode} {self.dst}, {_num(self.duration)}"
        elif op is Opcode.SENSE:
            body = f"sense.{self.mode} {self.dst}, {self.result}"
        else:
            body = f"{op.value} {self.reg}, {self.value}"
        if self.comment:
            body = f"{body} ;{self.comment}"
        return body

    def __str__(self) -> str:
        return self.render()


def _num(value: Fraction | None) -> str:
    if value is None:
        return "?"
    return str(value.numerator) if value.denominator == 1 else str(value)


# ----------------------------------------------------------------------
# factory helpers
# ----------------------------------------------------------------------
def input_(dst: str | Operand, port: str | Operand, **kwargs) -> Instruction:
    instr = Instruction(Opcode.INPUT, dst=_operand(dst), src=_operand(port), **kwargs)
    instr.validate()
    return instr


def output(port: str | Operand, src: str | Operand, **kwargs) -> Instruction:
    instr = Instruction(Opcode.OUTPUT, dst=_operand(port), src=_operand(src), **kwargs)
    instr.validate()
    return instr


def move(
    dst: str | Operand,
    src: str | Operand,
    rel_volume: Number | None = None,
    **kwargs,
) -> Instruction:
    instr = Instruction(
        Opcode.MOVE,
        dst=_operand(dst),
        src=_operand(src),
        rel_volume=None if rel_volume is None else as_fraction(rel_volume),
        **kwargs,
    )
    instr.validate()
    return instr


def move_abs(
    dst: str | Operand,
    src: str | Operand,
    volume: Number,
    **kwargs,
) -> Instruction:
    instr = Instruction(
        Opcode.MOVE_ABS,
        dst=_operand(dst),
        src=_operand(src),
        abs_volume=as_fraction(volume),
        **kwargs,
    )
    instr.validate()
    return instr


def mix(unit: str | Operand, duration: Number, **kwargs) -> Instruction:
    instr = Instruction(
        Opcode.MIX, dst=_operand(unit), duration=as_fraction(duration), **kwargs
    )
    instr.validate()
    return instr


def incubate(
    unit: str | Operand, temperature: Number, duration: Number, **kwargs
) -> Instruction:
    instr = Instruction(
        Opcode.INCUBATE,
        dst=_operand(unit),
        temperature=as_fraction(temperature),
        duration=as_fraction(duration),
        **kwargs,
    )
    instr.validate()
    return instr


def concentrate(
    unit: str | Operand, temperature: Number, duration: Number, **kwargs
) -> Instruction:
    instr = Instruction(
        Opcode.CONCENTRATE,
        dst=_operand(unit),
        temperature=as_fraction(temperature),
        duration=as_fraction(duration),
        **kwargs,
    )
    instr.validate()
    return instr


def separate(
    unit: str | Operand, mode: str, duration: Number, **kwargs
) -> Instruction:
    instr = Instruction(
        Opcode.SEPARATE,
        dst=_operand(unit),
        mode=mode,
        duration=as_fraction(duration),
        **kwargs,
    )
    instr.validate()
    return instr


def sense(
    unit: str | Operand, mode: str, result: str, **kwargs
) -> Instruction:
    instr = Instruction(
        Opcode.SENSE, dst=_operand(unit), mode=mode, result=result, **kwargs
    )
    instr.validate()
    return instr


def _dry(opcode: Opcode, reg: str, value: int | str) -> Instruction:
    instr = Instruction(opcode, reg=reg, value=value)
    instr.validate()
    return instr


def dry_mov(reg: str, value: int | str) -> Instruction:
    return _dry(Opcode.DRY_MOV, reg, value)


def dry_add(reg: str, value: int | str) -> Instruction:
    return _dry(Opcode.DRY_ADD, reg, value)


def dry_sub(reg: str, value: int | str) -> Instruction:
    return _dry(Opcode.DRY_SUB, reg, value)


def dry_mul(reg: str, value: int | str) -> Instruction:
    return _dry(Opcode.DRY_MUL, reg, value)
