"""AquaCore Instruction Set (AIS) program form and compiler middle end.

* :mod:`repro.ir.instructions` — the instruction set of paper Table 1;
* :mod:`repro.ir.program` — program container and pretty printer;
* :mod:`repro.ir.builder` — assay AST -> volume DAG lowering;
* :mod:`repro.ir.regalloc` — reservoir (register) allocation;
* :mod:`repro.ir.parse` — textual AIS listings back into programs;
* :mod:`repro.ir.slicing` — backward slices over AIS programs (used by
  regeneration and by static replication).
"""

from .builder import build_dag_from_flat
from .parse import AISParseError, parse_ais
from .instructions import (
    Instruction,
    Opcode,
    Operand,
    concentrate,
    dry_add,
    dry_mov,
    dry_mul,
    dry_sub,
    incubate,
    input_,
    mix,
    move,
    move_abs,
    output,
    sense,
    separate,
)
from .program import AISProgram
from .regalloc import AllocationError, ReservoirAllocator, ReservoirAssignment
from .slicing import backward_slice, def_use_chains

__all__ = [
    "build_dag_from_flat",
    "Opcode",
    "Operand",
    "Instruction",
    "AISProgram",
    "input_",
    "output",
    "move",
    "move_abs",
    "mix",
    "incubate",
    "concentrate",
    "separate",
    "sense",
    "dry_mov",
    "dry_add",
    "dry_sub",
    "dry_mul",
    "ReservoirAllocator",
    "ReservoirAssignment",
    "AllocationError",
    "AISParseError",
    "parse_ais",
    "backward_slice",
    "def_use_chains",
]
