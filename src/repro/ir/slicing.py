"""Backward slicing over straight-line AIS programs.

Regeneration (paper Section 1, quoting Biostream) re-executes "the code
fragments that produce the fluid — the backward slice"; static replication
(Section 3.4.2) replicates part of the same slice.  For straight-line wet
code the slice is a plain reaching-definitions closure over *locations*
(reservoirs, ports, functional units and their sub-ports).

The location effects of each opcode:

===========  =======================================  =====================
opcode       reads                                    writes
===========  =======================================  =====================
input        src port                                 dst
output       src                                      (src drained)
move         src                                      dst (src maybe drained)
move-abs     src                                      dst
mix          unit                                     unit
incubate     unit                                     unit
concentrate  unit                                     unit
separate     unit, unit.matrix, unit.pusher           unit.out1, unit.out2
sense        unit                                     (reading only)
dry-*        registers                                registers (ignored)
===========  =======================================  =====================

A ``move`` without a relative volume drains its source; a metered move
leaves fluid behind, so the source's previous definition stays live — the
def-use chains model both.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from .instructions import Instruction, Opcode, Operand

__all__ = ["def_use_chains", "backward_slice", "slice_for_location"]

Location = str


def _loc(operand: Operand) -> Location:
    return str(operand)


def _reads_writes(
    instruction: Instruction,
) -> tuple[list[Location], list[Location], list[Location]]:
    """(reads, writes, kills) of one instruction.

    ``kills`` are locations fully drained (their previous definition dies);
    partially-drained sources are read but not killed.
    """
    op = instruction.opcode
    if op is Opcode.INPUT:
        # depositing accumulates: the destination's previous contents are
        # part of the new state, so the old definition is read, not killed.
        return (
            [_loc(instruction.src), _loc(instruction.dst)],
            [_loc(instruction.dst)],
            [],
        )
    if op is Opcode.OUTPUT:
        src = _loc(instruction.src)
        return [src], [], [src]
    if op in (Opcode.MOVE, Opcode.MOVE_ABS):
        src = _loc(instruction.src)
        dst = _loc(instruction.dst)
        drains = (
            op is Opcode.MOVE
            and instruction.rel_volume is None
            and instruction.abs_volume is None
        )
        return [src, dst], [dst], [src] if drains else []
    if op in (Opcode.MIX, Opcode.INCUBATE, Opcode.CONCENTRATE):
        unit = _loc(instruction.dst)
        return [unit], [unit], []
    if op is Opcode.SEPARATE:
        unit = _loc(instruction.dst)
        base = instruction.dst.base
        return (
            [unit, f"{base}.matrix", f"{base}.pusher"],
            [f"{base}.out1", f"{base}.out2"],
            [unit, f"{base}.pusher"],
        )
    if op is Opcode.SENSE:
        return [_loc(instruction.dst)], [], []
    return [], [], []  # dry ops do not touch fluid state


def def_use_chains(program: Sequence[Instruction]) -> list[list[int]]:
    """For each instruction, the indices of the instructions that produced
    the fluid it reads (its direct dependences)."""
    last_writer: dict[Location, int] = {}
    chains: list[list[int]] = []
    for index, instruction in enumerate(program):
        reads, writes, kills = _reads_writes(instruction)
        deps = sorted(
            {
                last_writer[location]
                for location in reads
                if location in last_writer
            }
        )
        chains.append(deps)
        for location in kills:
            last_writer.pop(location, None)
        for location in writes:
            last_writer[location] = index
    return chains


def backward_slice(
    program: Sequence[Instruction], index: int
) -> list[int]:
    """Indices of the transitive producers of instruction ``index``
    (inclusive), in program order — the code to re-execute to regenerate
    that instruction's inputs."""
    if not (0 <= index < len(program)):
        raise IndexError(index)
    chains = def_use_chains(program)
    needed: set[int] = set()
    stack = [index]
    while stack:
        current = stack.pop()
        if current in needed:
            continue
        needed.add(current)
        stack.extend(chains[current])
    return sorted(needed)


def slice_for_location(
    program: Sequence[Instruction], location: Location, before: int
) -> list[int]:
    """Backward slice that regenerates the contents of ``location`` as they
    stood just before instruction ``before``."""
    last_writer: dict[Location, int] = {}
    for index in range(before):
        __, writes, kills = _reads_writes(program[index])
        for written in kills:
            last_writer.pop(written, None)
        for written in writes:
            last_writer[written] = index
    if location not in last_writer:
        return []
    return backward_slice(program, last_writer[location])
