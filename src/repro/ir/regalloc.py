"""Reservoir allocation: registers for fluids.

The paper (Section 2.1): "the number of reservoirs is fixed and limited,
and current LoC technology does not provide a dense equivalent (such as
DRAM or disk), hence careful compile-time allocation is required."

Allocation is a linear scan over the execution order of the volume DAG:

* every natural input fluid gets a reservoir (and an input port) for its
  whole live range — inputs are loaded once at the top of the program,
  exactly like the listings in paper Figures 9-11;
* an intermediate fluid is **storage-less** when its single consumer is the
  next operation in sequence (the common case the AIS operand design
  targets); it stays in the functional unit that produced it;
* any other intermediate is parked in a reservoir from its production to
  its last use;
* running out of reservoirs raises :class:`AllocationError` — this is the
  "compilation fails" outcome static replication can trigger when it grows
  the DAG beyond the PLoC's resources (Section 3.4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from ..core.dag import AssayDAG, NodeKind
from ..machine.spec import MachineSpec

__all__ = ["AllocationError", "ReservoirAssignment", "ReservoirAllocator"]


class AllocationError(Exception):
    """The assay needs more reservoirs or ports than the machine has."""


@dataclass
class ReservoirAssignment:
    """Result of allocation: where every fluid lives."""

    #: DAG node id -> reservoir id, for fluids that are parked.
    reservoir_of: dict[str, str] = field(default_factory=dict)
    #: input fluid node id -> input port id.
    port_of: dict[str, str] = field(default_factory=dict)
    #: auxiliary fluids (separator matrix/pusher loads): name -> (reservoir, port).
    aux: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: node ids whose product never touches a reservoir.
    storage_less: set[str] = field(default_factory=set)
    #: peak number of simultaneously-occupied reservoirs.
    peak_usage: int = 0

    def location_of(self, node_id: str) -> str | None:
        return self.reservoir_of.get(node_id)


class ReservoirAllocator:
    """Linear-scan allocator over a DAG execution order."""

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec

    def allocate(
        self,
        dag: AssayDAG,
        order: Sequence[str],
        *,
        aux_fluids: Sequence[str] = (),
        storage_less: bool = True,
    ) -> ReservoirAssignment:
        """Allocate reservoirs and ports for one execution order.

        Args:
            dag: the (possibly transformed) volume DAG.
            order: execution order over all of the DAG's node ids.
            aux_fluids: names of matrix/pusher fluids that need a reservoir
                and port but are not DAG nodes.
            storage_less: keep single-immediate-use fluids in their
                functional unit (the AIS feature).  ``False`` parks every
                consumed intermediate in a reservoir — the baseline AIS's
                design argument is made against (see the
                ``bench_storage_less`` ablation).

        Raises:
            AllocationError: not enough reservoirs or input ports.
        """
        position = {node_id: i for i, node_id in enumerate(order)}
        missing = [n.id for n in dag.nodes() if n.id not in position]
        if missing:
            raise AllocationError(
                f"execution order does not cover nodes {missing[:5]}"
            )

        free = list(self.spec.reservoir_names())
        free_ports = list(self.spec.input_port_names())
        result = ReservoirAssignment()
        in_use: dict[str, str] = {}  # node id -> reservoir

        def take_reservoir(owner: str) -> str:
            if not free:
                raise AllocationError(
                    f"out of reservoirs while allocating {owner!r} "
                    f"({self.spec.n_reservoirs} available on "
                    f"{self.spec.name!r}); the assay exceeds the PLoC's "
                    "resources"
                )
            reservoir = free.pop(0)
            in_use[owner] = reservoir
            result.peak_usage = max(result.peak_usage, len(in_use))
            return reservoir

        def take_port(owner: str) -> str:
            if not free_ports:
                raise AllocationError(
                    f"out of input ports while allocating {owner!r}"
                )
            return free_ports.pop(0)

        def release(owner: str) -> None:
            reservoir = in_use.pop(owner, None)
            if reservoir is not None:
                free.append(reservoir)

        def last_use(node_id: str) -> int:
            consumers = [
                position[e.dst]
                for e in dag.out_edges(node_id)
                if not e.is_excess
            ]
            return max(consumers, default=position[node_id])

        # -- inputs and constrained inputs: live from the program start ---
        source_kinds = (NodeKind.INPUT, NodeKind.CONSTRAINED_INPUT)
        sources = sorted(
            (n for n in dag.nodes() if n.kind in source_kinds),
            key=lambda n: position[n.id],
        )
        for node in sources:
            reservoir = take_reservoir(node.id)
            result.reservoir_of[node.id] = reservoir
            if node.kind is NodeKind.INPUT:
                result.port_of[node.id] = take_port(node.id)
        for name in aux_fluids:
            reservoir = take_reservoir(f"aux:{name}")
            port = take_port(f"aux:{name}")
            result.aux[name] = (reservoir, port)

        # -- walk the execution order ------------------------------------
        events: list[tuple[int, str]] = sorted(
            ((position[n.id], n.id) for n in dag.nodes()),
            key=lambda item: item[0],
        )
        death = {node_id: last_use(node_id) for node_id in position}
        for when, node_id in events:
            node = dag.node(node_id)
            # free everything whose last use has passed
            for owner in [o for o, __ in in_use.items()]:
                if owner.startswith("aux:"):
                    continue
                if death.get(owner, -1) < when and owner != node_id:
                    # inputs freed after their last use, intermediates too
                    if position.get(owner, when) < when:
                        release(owner)
            if node.kind in source_kinds or node.kind is NodeKind.EXCESS:
                continue
            consumers = [
                position[e.dst]
                for e in dag.out_edges(node_id)
                if not e.is_excess
            ]
            is_storage_less = (
                len(consumers) == 1 and consumers[0] == when + 1
            ) and storage_less
            if not consumers or is_storage_less:
                # fluids nobody consumes (final products) always stay in
                # their unit; consumed intermediates only with the feature
                result.storage_less.add(node_id)
                continue
            result.reservoir_of[node_id] = take_reservoir(node_id)
        return result
