"""Textual AIS parser: the inverse of :meth:`AISProgram.render`.

Accepts the paper-style listing form emitted by the compiler::

    glucose{
      input s1, ip1 ;Glucose
      move mixer1, s1, 1
      mix mixer1, 10
      move sensor2, mixer1
      sense.OD sensor2, Result[1]
    }

plus a few conveniences for hand-written fixtures: the ``name{``/``}``
wrapper is optional, blank lines and ``#`` comment lines are skipped, and
``input`` accepts an optional third argument (an absolute load volume,
which the renderer does not print but auxiliary loads carry internally).

The parser is deliberately *syntactic*: it accepts any operand names and
leaves semantic validation (does ``s1`` exist on the machine? is
``mixer1`` actually a mixer?) to :mod:`repro.analysis`, so that the lint
driver can report those problems as structured diagnostics instead of
parse errors.
"""

from __future__ import annotations

import re
from fractions import Fraction

from ..core.limits import as_fraction
from .instructions import (
    SENSE_MODES,
    SEPARATE_MODES,
    Instruction,
    Opcode,
    Operand,
)
from .program import AISProgram

__all__ = ["AISParseError", "parse_ais"]


class AISParseError(ValueError):
    """A line of AIS text could not be parsed."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        prefix = f"line {line_number}: " if line_number is not None else ""
        super().__init__(f"{prefix}{message}")
        self.line_number = line_number


_HEADER = re.compile(r"^\s*([A-Za-z_][\w.\-\[\]]*)\s*\{\s*$")
_DRY_OPS = {
    "dry-mov": Opcode.DRY_MOV,
    "dry-add": Opcode.DRY_ADD,
    "dry-sub": Opcode.DRY_SUB,
    "dry-mul": Opcode.DRY_MUL,
}


def _split_line(line: str) -> tuple[str, str | None]:
    """Split off the trailing ``;comment`` (the paper's fluid annotation)."""
    body, semi, comment = line.partition(";")
    return body.strip(), comment.strip() if semi else None


def _fields(rest: str, line_number: int, mnemonic: str, count: int) -> list[str]:
    fields = [field.strip() for field in rest.split(",")]
    if len(fields) != count or not all(fields):
        raise AISParseError(
            f"{mnemonic} expects {count} comma-separated operands, "
            f"got {rest!r}",
            line_number,
        )
    return fields


def _number(text: str, line_number: int, what: str) -> Fraction:
    try:
        return as_fraction(text)
    except (ValueError, ZeroDivisionError):
        raise AISParseError(f"bad {what} {text!r}", line_number) from None


def _parse_instruction(body: str, comment: str | None, line_number: int) -> Instruction:
    mnemonic, _, rest = body.partition(" ")
    rest = rest.strip()
    if not rest:
        raise AISParseError(f"instruction {mnemonic!r} has no operands", line_number)

    if mnemonic in _DRY_OPS:
        reg, raw = _fields(rest, line_number, mnemonic, 2)
        value: object = int(raw) if re.fullmatch(r"-?\d+", raw) else raw
        return Instruction(_DRY_OPS[mnemonic], reg=reg, value=value, comment=comment)

    if mnemonic == "input":
        fields = [field.strip() for field in rest.split(",")]
        if len(fields) == 3:
            dst, src, volume = fields
            return Instruction(
                Opcode.INPUT,
                dst=Operand.parse(dst),
                src=Operand.parse(src),
                abs_volume=_number(volume, line_number, "volume"),
                comment=comment,
            )
        dst, src = _fields(rest, line_number, "input", 2)
        return Instruction(
            Opcode.INPUT, dst=Operand.parse(dst), src=Operand.parse(src),
            comment=comment,
        )
    if mnemonic == "output":
        dst, src = _fields(rest, line_number, "output", 2)
        return Instruction(
            Opcode.OUTPUT, dst=Operand.parse(dst), src=Operand.parse(src),
            comment=comment,
        )
    if mnemonic == "move":
        fields = [field.strip() for field in rest.split(",")]
        if len(fields) == 3:
            dst, src, rel = fields
            return Instruction(
                Opcode.MOVE,
                dst=Operand.parse(dst),
                src=Operand.parse(src),
                rel_volume=_number(rel, line_number, "relative volume"),
                comment=comment,
            )
        dst, src = _fields(rest, line_number, "move", 2)
        return Instruction(
            Opcode.MOVE, dst=Operand.parse(dst), src=Operand.parse(src),
            comment=comment,
        )
    if mnemonic == "move-abs":
        dst, src, volume = _fields(rest, line_number, "move-abs", 3)
        return Instruction(
            Opcode.MOVE_ABS,
            dst=Operand.parse(dst),
            src=Operand.parse(src),
            abs_volume=_number(volume, line_number, "volume"),
            comment=comment,
        )
    if mnemonic == "mix":
        unit, duration = _fields(rest, line_number, "mix", 2)
        return Instruction(
            Opcode.MIX,
            dst=Operand.parse(unit),
            duration=_number(duration, line_number, "duration"),
            comment=comment,
        )
    if mnemonic in ("incubate", "concentrate"):
        unit, temperature, duration = _fields(rest, line_number, mnemonic, 3)
        opcode = Opcode.INCUBATE if mnemonic == "incubate" else Opcode.CONCENTRATE
        return Instruction(
            opcode,
            dst=Operand.parse(unit),
            temperature=_number(temperature, line_number, "temperature"),
            duration=_number(duration, line_number, "duration"),
            comment=comment,
        )
    if mnemonic.startswith("separate."):
        mode = mnemonic[len("separate."):]
        if mode not in SEPARATE_MODES:
            raise AISParseError(
                f"unknown separation mode {mode!r} (expected one of "
                f"{', '.join(SEPARATE_MODES)})",
                line_number,
            )
        unit, duration = _fields(rest, line_number, mnemonic, 2)
        return Instruction(
            Opcode.SEPARATE,
            dst=Operand.parse(unit),
            mode=mode,
            duration=_number(duration, line_number, "duration"),
            comment=comment,
        )
    if mnemonic.startswith("sense."):
        mode = mnemonic[len("sense."):]
        if mode not in SENSE_MODES:
            raise AISParseError(
                f"unknown sense mode {mode!r} (expected one of "
                f"{', '.join(SENSE_MODES)})",
                line_number,
            )
        unit, result = _fields(rest, line_number, mnemonic, 2)
        return Instruction(
            Opcode.SENSE,
            dst=Operand.parse(unit),
            mode=mode,
            result=result,
            comment=comment,
        )
    raise AISParseError(f"unknown instruction {mnemonic!r}", line_number)


def parse_ais(text: str, *, name: str = "program") -> AISProgram:
    """Parse an AIS listing into an :class:`AISProgram`.

    Raises:
        AISParseError: on malformed lines (with the offending line number).
    """
    program_name = name
    instructions: list[Instruction] = []
    saw_header = False
    saw_footer = False
    for line_number, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        header = _HEADER.match(stripped)
        if header is not None and not saw_header and not instructions:
            program_name = header.group(1)
            saw_header = True
            continue
        if stripped == "}":
            if saw_footer or not saw_header:
                raise AISParseError("unexpected '}'", line_number)
            saw_footer = True
            continue
        if saw_footer:
            raise AISParseError("text after closing '}'", line_number)
        body, comment = _split_line(stripped)
        if not body:
            continue  # pure ;comment line
        instruction = _parse_instruction(body, comment, line_number)
        try:
            instruction.validate()
        except ValueError as error:
            raise AISParseError(str(error), line_number) from None
        instructions.append(instruction)
    if saw_header and not saw_footer:
        raise AISParseError(f"missing closing '}}' for {program_name!r}")
    return AISProgram(program_name, instructions)
