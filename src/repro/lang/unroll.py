"""Loop unrolling, constant folding, and flattening to straight-line form.

The paper handles control flow by unrolling (Section 3.5): FOR loops with
statically-known bounds unroll completely; WHILE loops unroll up to their
mandatory programmer HINT; IF folds when its condition is dry-evaluable and
otherwise *both* paths are conservatively included in the volume DAG (the
executor later runs only the taken one).

The result is a :class:`FlatAssay`: a list of :class:`FlatStatement` with
every ratio/bound/index evaluated to concrete integers and every fluid
reference resolved to a canonical key (``Diluted_Inhibitor[2]``).  This is
the form :mod:`repro.ir.builder` lowers to the volume DAG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from .ast import (
    Assign,
    BinOp,
    Compare,
    ConcentrateStmt,
    Expr,
    FluidDecl,
    ForStmt,
    IfStmt,
    IncubateStmt,
    Index,
    ItRef,
    MixExpr,
    Name,
    Num,
    OutputStmt,
    Program,
    SenseStmt,
    SeparateStmt,
    Stmt,
    VarDecl,
    WhileStmt,
)
from .errors import SemanticError
from .semantic import SymbolTable, analyze

__all__ = ["FlatStatement", "FlatAssay", "unroll"]

#: (condition id, which branch) — set on statements under a dynamic IF.
Guard = tuple[str, bool]


@dataclass
class FlatStatement:
    """One concrete wet operation after unrolling.

    ``kind`` in {"mix", "sense", "separate", "incubate", "concentrate",
    "output"}; only the fields meaningful for the kind are set.  ``target``
    is the canonical fluid key the operation defines (``None`` for sense and
    output, which define nothing).
    """

    kind: str
    seq: int
    line: int
    target: str | None = None
    operands: tuple[str, ...] = ()
    ratios: tuple[int, ...] | None = None
    duration: int | None = None
    temperature: int | None = None
    mode: str | None = None          # separate/sense flavour
    matrix: str | None = None
    pusher: str | None = None
    waste: str | None = None
    yield_fraction: Fraction | None = None
    keep_fraction: Fraction | None = None
    result: str | None = None        # flattened sense target
    guard: Guard | None = None
    #: target fluid was declared NOEXCESS (cascading must not discard it)
    no_excess: bool = False


@dataclass
class FlatAssay:
    """The unrolled straight-line assay."""

    name: str
    statements: list[FlatStatement]
    symbols: SymbolTable
    #: canonical keys of fluids that are *primary inputs* (never defined).
    input_fluids: tuple[str, ...]
    #: matrix/pusher fluids (loaded whole, outside the volume DAG).
    aux_fluids: tuple[str, ...]
    #: flattened sense-result names, in program order.
    results: tuple[str, ...]
    #: dynamic IF conditions: id -> human-readable text.
    dynamic_conditions: dict[str, str] = field(default_factory=dict)
    #: dynamic IF conditions: id -> the Compare AST, for run-time evaluation.
    dynamic_condition_exprs: dict[str, Expr] = field(default_factory=dict)


class _Unroller:
    def __init__(self, program: Program, symbols: SymbolTable) -> None:
        self.program = program
        self.symbols = symbols
        self.env: dict[str, int] = {}
        self.array_env: dict[tuple[str, tuple[int, ...]], int] = {}
        self.defined_fluids: dict[str, int] = {}  # key -> defining seq
        self.used_inputs: list[str] = []
        self.aux_fluids: list[str] = []
        self.waste_fluids: set[str] = set()
        self.statements: list[FlatStatement] = []
        self.results: list[str] = []
        self.dynamic_conditions: dict[str, str] = {}
        self.dynamic_condition_exprs: dict[str, Expr] = {}
        self.it: str | None = None
        self.seq = 0
        self.guard: Guard | None = None

    # ------------------------------------------------------------------
    # dry evaluation
    # ------------------------------------------------------------------
    def eval_dry(self, expression: Expr, line: int) -> int:
        if isinstance(expression, Num):
            return expression.value
        if isinstance(expression, Name):
            if expression.ident not in self.env:
                raise SemanticError(
                    f"dry variable {expression.ident!r} read before "
                    "assignment",
                    expression.line or line,
                )
            return self.env[expression.ident]
        if isinstance(expression, Index):
            key = (
                expression.base,
                tuple(self.eval_dry(i, line) for i in expression.indices),
            )
            if key not in self.array_env:
                raise SemanticError(
                    f"dry array cell {self.flat_name(*key)!r} read before "
                    "assignment",
                    expression.line or line,
                )
            return self.array_env[key]
        if isinstance(expression, BinOp):
            left = self.eval_dry(expression.left, line)
            right = self.eval_dry(expression.right, line)
            if expression.op == "+":
                return left + right
            if expression.op == "-":
                return left - right
            if expression.op == "*":
                return left * right
            if right == 0:
                raise SemanticError("division by zero", expression.line or line)
            return left // right
        if isinstance(expression, Compare):
            left = self.eval_dry(expression.left, line)
            right = self.eval_dry(expression.right, line)
            return int(
                {
                    "==": left == right,
                    "!=": left != right,
                    "<": left < right,
                    ">": left > right,
                    "<=": left <= right,
                    ">=": left >= right,
                }[expression.op]
            )
        raise SemanticError(f"cannot evaluate {expression} statically", line)

    def try_eval_dry(self, expression: Expr, line: int) -> int | None:
        """Dry-evaluate if possible; None when the value is run-time-only
        (e.g. it reads an unset sense result)."""
        try:
            return self.eval_dry(expression, line)
        except SemanticError:
            return None

    # ------------------------------------------------------------------
    # fluid reference resolution
    # ------------------------------------------------------------------
    @staticmethod
    def flat_name(base: str, indices: tuple[int, ...]) -> str:
        return base + "".join(f"[{i}]" for i in indices)

    def resolve_fluid(self, operand: Expr, line: int) -> str:
        if isinstance(operand, ItRef):
            if self.it is None:
                raise SemanticError("'it' used before any fluid operation", line)
            return self.it
        if isinstance(operand, Name):
            key = operand.ident
        elif isinstance(operand, Index):
            indices = tuple(self.eval_dry(i, line) for i in operand.indices)
            dims = self.symbols.dims_of(operand.base)
            for position, (index, dim) in enumerate(zip(indices, dims)):
                if not (1 <= index <= dim):
                    raise SemanticError(
                        f"index {index} out of range 1..{dim} for "
                        f"{operand.base!r} (subscript {position + 1})",
                        line,
                    )
            key = self.flat_name(operand.base, indices)
        else:
            raise SemanticError(f"not a fluid reference: {operand}", line)
        if key in self.waste_fluids:
            raise SemanticError(
                f"separation waste {key!r} cannot be used downstream "
                "(model limitation; route the waste to an OUTPUT instead)",
                line,
            )
        if key not in self.defined_fluids and key not in self.used_inputs:
            self.used_inputs.append(key)  # a primary input fluid
        return key

    def resolve_target(self, target: Name | Index, line: int) -> str:
        if isinstance(target, Name):
            return target.ident
        indices = tuple(self.eval_dry(i, line) for i in target.indices)
        return self.flat_name(target.base, indices)

    # ------------------------------------------------------------------
    # statement walk
    # ------------------------------------------------------------------
    def run(self) -> FlatAssay:
        for statement in self.program.body:
            self.statement(statement)
        return FlatAssay(
            name=self.program.name,
            statements=self.statements,
            symbols=self.symbols,
            input_fluids=tuple(self.used_inputs),
            aux_fluids=tuple(dict.fromkeys(self.aux_fluids)),
            results=tuple(self.results),
            dynamic_conditions=self.dynamic_conditions,
            dynamic_condition_exprs=self.dynamic_condition_exprs,
        )

    def emit(self, statement: FlatStatement) -> None:
        statement.guard = self.guard
        self.statements.append(statement)
        self.seq += 1

    def statement(self, statement: Stmt) -> None:
        if isinstance(statement, (FluidDecl, VarDecl)):
            return
        if isinstance(statement, Assign):
            self.assign(statement)
        elif isinstance(statement, MixExpr):
            self.mix(statement, target=None)
        elif isinstance(statement, SenseStmt):
            self.sense(statement)
        elif isinstance(statement, SeparateStmt):
            self.separate(statement)
        elif isinstance(statement, IncubateStmt):
            self.heat(statement, kind="incubate")
        elif isinstance(statement, ConcentrateStmt):
            self.heat(statement, kind="concentrate")
        elif isinstance(statement, OutputStmt):
            operand = self.resolve_fluid(statement.operand, statement.line)
            self.emit(
                FlatStatement(
                    "output",
                    self.seq,
                    statement.line,
                    operands=(operand,),
                )
            )
        elif isinstance(statement, ForStmt):
            start = self.eval_dry(statement.start, statement.line)
            stop = self.eval_dry(statement.stop, statement.line)
            for value in range(start, stop + 1):
                self.env[statement.var] = value
                for inner in statement.body:
                    self.statement(inner)
        elif isinstance(statement, WhileStmt):
            hint = self.eval_dry(statement.hint, statement.line)
            if hint < 0:
                raise SemanticError("WHILE hint must be >= 0", statement.line)
            dynamic_id: str | None = None
            for _iteration in range(hint):
                verdict = self.try_eval_dry(statement.condition, statement.line)
                if verdict == 0:
                    break
                if verdict is not None:
                    for inner in statement.body:
                        self.statement(inner)
                    continue
                # Run-time condition (it reads a sensed value): provision
                # every HINT iteration conservatively, but guard each one so
                # the executor re-evaluates the condition before running it
                # — the loop genuinely stops early on chip.
                if self.guard is not None:
                    raise SemanticError(
                        "nested dynamic control flow (WHILE inside a "
                        "dynamic IF/WHILE) is not supported",
                        statement.line,
                    )
                if dynamic_id is None:
                    dynamic_id = (
                        f"cond@{statement.line}#{len(self.dynamic_conditions)}"
                    )
                    self.dynamic_conditions[dynamic_id] = str(
                        statement.condition
                    )
                    self.dynamic_condition_exprs[dynamic_id] = (
                        statement.condition
                    )
                self.guard = (dynamic_id, True)
                for inner in statement.body:
                    self.statement(inner)
                self.guard = None
        elif isinstance(statement, IfStmt):
            self.if_statement(statement)
        else:  # pragma: no cover
            raise SemanticError(f"unknown statement {statement!r}")

    def if_statement(self, statement: IfStmt) -> None:
        verdict = self.try_eval_dry(statement.condition, statement.line)
        if verdict is not None:
            body = statement.then_body if verdict else statement.else_body
            for inner in body:
                self.statement(inner)
            return
        # Dynamic condition: conservatively include both paths in the DAG
        # (paper Section 3.5); statements carry a guard so the executor can
        # skip the untaken branch at run time.
        condition_id = f"cond@{statement.line}#{len(self.dynamic_conditions)}"
        self.dynamic_conditions[condition_id] = str(statement.condition)
        self.dynamic_condition_exprs[condition_id] = statement.condition
        outer_guard = self.guard
        saved_it = self.it
        self.guard = (condition_id, True)
        for inner in statement.then_body:
            self.statement(inner)
        then_it = self.it
        self.it = saved_it
        self.guard = (condition_id, False)
        for inner in statement.else_body:
            self.statement(inner)
        self.guard = outer_guard
        # 'it' after a dynamic IF is ambiguous; keep the then-branch value
        # only when both branches agree, else invalidate it.
        if then_it != self.it:
            self.it = None

    # ------------------------------------------------------------------
    def assign(self, statement: Assign) -> None:
        if isinstance(statement.value, MixExpr):
            target = self.resolve_target(statement.target, statement.line)
            self.mix(statement.value, target=target)
            return
        value = self.eval_dry(statement.value, statement.line)
        if isinstance(statement.target, Index):
            indices = tuple(
                self.eval_dry(i, statement.line)
                for i in statement.target.indices
            )
            self.array_env[(statement.target.base, indices)] = value
        else:
            self.env[statement.target.ident] = value

    def define(self, key: str, line: int) -> None:
        if key in self.used_inputs:
            raise SemanticError(
                f"fluid {key!r} was used (as a primary input) before this "
                "definition",
                line,
            )
        if key in self.defined_fluids and self.guard is None:
            raise SemanticError(
                f"fluid {key!r} is defined twice; fluids are single-"
                "assignment (uses are destructive, re-definition would leak "
                "the first volume)",
                line,
            )
        self.defined_fluids[key] = self.seq

    def mix(self, expression: MixExpr, target: str | None) -> None:
        operands = tuple(
            self.resolve_fluid(operand, expression.line)
            for operand in expression.operands
        )
        if len(set(operands)) != len(operands):
            raise SemanticError(
                "MIX operands must be distinct fluids", expression.line
            )
        ratios: tuple[int, ...] | None = None
        if expression.ratios is not None:
            ratios = tuple(
                self.eval_dry(ratio, expression.line)
                for ratio in expression.ratios
            )
            if any(part <= 0 for part in ratios):
                raise SemanticError(
                    f"mix ratio parts must be positive, got {ratios}",
                    expression.line,
                )
        duration = self.eval_dry(expression.duration, expression.line)
        key = target or f"it@{self.seq}"
        self.define(key, expression.line)
        # A mix must not produce excess when its product *or any of its
        # ingredients* is a NOEXCESS fluid (discarding the mixture would
        # discard the protected fluid with it).
        protected = {key.split("[")[0]} | {
            operand.split("[")[0] for operand in operands
        }
        self.emit(
            FlatStatement(
                "mix",
                self.seq,
                expression.line,
                target=key,
                operands=operands,
                ratios=ratios,
                duration=duration,
                no_excess=bool(protected & self.symbols.no_excess),
            )
        )
        self.it = key

    def sense(self, statement: SenseStmt) -> None:
        operand = self.resolve_fluid(statement.operand, statement.line)
        result = self.resolve_target(statement.target, statement.line)
        self.results.append(result)
        self.emit(
            FlatStatement(
                "sense",
                self.seq,
                statement.line,
                operands=(operand,),
                mode=statement.mode,
                result=result,
            )
        )

    def separate(self, statement: SeparateStmt) -> None:
        operand = self.resolve_fluid(statement.operand, statement.line)
        # Matrix and pusher are whole-reservoir loads outside the DAG.
        for name in (statement.matrix, statement.pusher):
            if name in self.defined_fluids:
                raise SemanticError(
                    f"matrix/pusher {name!r} must be a primary input fluid",
                    statement.line,
                )
            self.aux_fluids.append(name)
        duration = self.eval_dry(statement.duration, statement.line)
        yield_fraction: Fraction | None = None
        if statement.yield_hint is not None:
            numerator = self.eval_dry(statement.yield_hint[0], statement.line)
            denominator = self.eval_dry(statement.yield_hint[1], statement.line)
            if not (0 < numerator <= denominator):
                raise SemanticError(
                    "YIELD hint must be a fraction in (0, 1]", statement.line
                )
            yield_fraction = Fraction(numerator, denominator)
        self.define(statement.effluent, statement.line)
        self.waste_fluids.add(statement.waste)
        self.emit(
            FlatStatement(
                "separate",
                self.seq,
                statement.line,
                target=statement.effluent,
                operands=(operand,),
                duration=duration,
                mode=statement.mode,
                matrix=statement.matrix,
                pusher=statement.pusher,
                waste=statement.waste,
                yield_fraction=yield_fraction,
            )
        )
        self.it = statement.effluent

    def heat(self, statement, *, kind: str) -> None:
        operand = self.resolve_fluid(statement.operand, statement.line)
        temperature = self.eval_dry(statement.temperature, statement.line)
        duration = self.eval_dry(statement.duration, statement.line)
        keep: Fraction | None = None
        if kind == "concentrate":
            keep = Fraction(1, 2)
            if statement.keep is not None:
                numerator = self.eval_dry(statement.keep[0], statement.line)
                denominator = self.eval_dry(statement.keep[1], statement.line)
                if not (0 < numerator <= denominator):
                    raise SemanticError(
                        "KEEP must be a fraction in (0, 1]", statement.line
                    )
                keep = Fraction(numerator, denominator)
        key = f"it@{self.seq}"
        self.define(key, statement.line)
        self.emit(
            FlatStatement(
                kind,
                self.seq,
                statement.line,
                target=key,
                operands=(operand,),
                temperature=temperature,
                duration=duration,
                keep_fraction=keep,
            )
        )
        self.it = key


def unroll(program: Program, symbols: SymbolTable | None = None) -> FlatAssay:
    """Unroll and flatten a parsed assay.

    Runs semantic analysis first when no symbol table is supplied.
    """
    if symbols is None:
        symbols = analyze(program)
    return _Unroller(program, symbols).run()
