"""Tokenizer for the assay language.

Keywords follow the paper's capitalisation (``ASSAY``, ``MIX``, ...;
``fluid`` and ``it`` are lowercase).  ``--`` starts a comment running to the
end of the line, as in Figure 10(a)'s ``--buffer2 has PNGanF``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique
from collections.abc import Iterator

from .errors import LexError

__all__ = ["TokenKind", "Token", "tokenize", "KEYWORDS"]


@unique
class TokenKind(Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    SYMBOL = "symbol"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "ASSAY",
        "START",
        "END",
        "fluid",
        "VAR",
        "MIX",
        "AND",
        "IN",
        "RATIOS",
        "FOR",
        "FROM",
        "TO",
        "ENDFOR",
        "WHILE",
        "HINT",
        "ENDWHILE",
        "IF",
        "THEN",
        "ELSE",
        "ENDIF",
        "SENSE",
        "OPTICAL",
        "FLUORESCENCE",
        "INTO",
        "SEPARATE",
        "LCSEPARATE",
        "CESEPARATE",
        "SIZESEPARATE",
        "MATRIX",
        "USING",
        "YIELD",
        "NOEXCESS",
        "INCUBATE",
        "CONCENTRATE",
        "KEEP",
        "AT",
        "OUTPUT",
        "it",
    }
)

_SYMBOLS = (
    "<=",
    ">=",
    "!=",
    "==",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    ":",
    ";",
    ",",
    "(",
    ")",
    "[",
    "]",
)


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in names

    def is_symbol(self, *symbols: str) -> bool:
        return self.kind is TokenKind.SYMBOL and self.text in symbols

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind.value}({self.text!r})@{self.line}:{self.column}"


def tokenize(source: str) -> list[Token]:
    """Tokenize a whole assay; always ends with one EOF token."""
    tokens: list[Token] = []
    line = 1
    column = 1
    i = 0
    length = len(source)
    while i < length:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if source.startswith("--", i):
            while i < length and source[i] != "\n":
                i += 1
            continue
        if ch.isdigit():
            start = i
            start_column = column
            while i < length and source[i].isdigit():
                i += 1
                column += 1
            tokens.append(
                Token(TokenKind.NUMBER, source[start:i], line, start_column)
            )
            continue
        if ch.isalpha() or ch == "_":
            start = i
            start_column = column
            while i < length and (source[i].isalnum() or source[i] == "_"):
                i += 1
                column += 1
            text = source[start:i]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, line, start_column))
            continue
        for symbol in _SYMBOLS:
            if source.startswith(symbol, i):
                tokens.append(Token(TokenKind.SYMBOL, symbol, line, column))
                i += len(symbol)
                column += len(symbol)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
