"""The high-level assay language (paper Section 4.1, Figures 9-11a).

A small imperative language whose statements mirror bench protocols::

    ASSAY glucose
    START
    fluid Glucose, Reagent;
    VAR Result[5];
    a = MIX Glucose AND Reagent IN RATIOS 1 : 1 FOR 10;
    SENSE OPTICAL it INTO Result[1];
    END

Pipeline: :func:`tokenize` -> :func:`parse` -> semantic analysis
(:func:`repro.lang.semantic.analyze`) -> loop unrolling / constant folding
(:mod:`repro.lang.unroll`), after which :mod:`repro.ir.builder` lowers the
flat statement list to the volume DAG.
"""

from .ast import (
    Assign,
    BinOp,
    Compare,
    ConcentrateStmt,
    Expr,
    FluidDecl,
    ForStmt,
    IfStmt,
    IncubateStmt,
    Index,
    ItRef,
    MixExpr,
    Name,
    Num,
    OutputStmt,
    Program,
    SenseStmt,
    SeparateStmt,
    Stmt,
    VarDecl,
    WhileStmt,
)
from .errors import LexError, ParseError, SemanticError
from .lexer import Token, TokenKind, tokenize
from .parser import parse
from .semantic import SymbolTable, analyze
from .unroll import FlatStatement, unroll

__all__ = [
    "tokenize",
    "Token",
    "TokenKind",
    "parse",
    "analyze",
    "SymbolTable",
    "unroll",
    "FlatStatement",
    "Program",
    "Stmt",
    "Expr",
    "FluidDecl",
    "VarDecl",
    "Assign",
    "MixExpr",
    "SenseStmt",
    "SeparateStmt",
    "IncubateStmt",
    "ConcentrateStmt",
    "OutputStmt",
    "ForStmt",
    "WhileStmt",
    "IfStmt",
    "Num",
    "Name",
    "Index",
    "ItRef",
    "BinOp",
    "Compare",
    "LexError",
    "ParseError",
    "SemanticError",
]
