"""Abstract syntax for the assay language.

Statements carry their source line for diagnostics.  Expressions are
*dry* (integer) computations — ratios, loop bounds, temperatures — plus
fluid references (:class:`Name`/:class:`Index`/:class:`ItRef`) where a
statement expects an operand.  Whether a given :class:`Name` denotes a
fluid or a dry variable is resolved by :mod:`repro.lang.semantic`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

__all__ = [
    "Expr",
    "Num",
    "Name",
    "Index",
    "ItRef",
    "BinOp",
    "Compare",
    "Stmt",
    "Program",
    "FluidDecl",
    "VarDecl",
    "Assign",
    "MixExpr",
    "SenseStmt",
    "SeparateStmt",
    "IncubateStmt",
    "ConcentrateStmt",
    "OutputStmt",
    "ForStmt",
    "WhileStmt",
    "IfStmt",
]


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Num:
    value: int
    line: int = 0

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Name:
    ident: str
    line: int = 0

    def __str__(self) -> str:
        return self.ident


@dataclass(frozen=True)
class Index:
    """``base[i]`` or ``base[i][j]...`` — arrays of fluids or dry vars."""

    base: str
    indices: tuple["Expr", ...]
    line: int = 0

    def __str__(self) -> str:
        return self.base + "".join(f"[{i}]" for i in self.indices)


@dataclass(frozen=True)
class ItRef:
    """``it`` — the output of the previous fluid-producing statement."""

    line: int = 0

    def __str__(self) -> str:
        return "it"


@dataclass(frozen=True)
class BinOp:
    op: str  # + - * /
    left: "Expr"
    right: "Expr"
    line: int = 0

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Compare:
    op: str  # == != < > <= >=
    left: "Expr"
    right: "Expr"
    line: int = 0

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


Expr = Num | Name | Index | ItRef | BinOp | Compare
Target = Name | Index


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
@dataclass
class FluidDecl:
    """``fluid a, b NOEXCESS, Diluted[4];``

    ``NOEXCESS`` marks a fluid whose excess production/discard is
    disallowed (safety, cost, regulation — paper Section 3.4.1); the
    volume manager will refuse to cascade mixes producing it.
    """

    names: list[tuple[str, tuple[int, ...]]]  # (name, array dims)
    line: int = 0
    no_excess: list[str] = field(default_factory=list)


@dataclass
class VarDecl:
    """``VAR i, Result[5], RESULT[4][4][4];``"""

    names: list[tuple[str, tuple[int, ...]]]
    line: int = 0


@dataclass
class MixExpr:
    """``MIX a AND b [AND c ...] [IN RATIOS e1 : e2 ...] FOR e``.

    Usable as a statement (result bound to ``it``) or as the right-hand
    side of an assignment.  Without RATIOS the mix is equal parts.
    """

    operands: list[Expr]
    ratios: list[Expr] | None
    duration: Expr
    line: int = 0


@dataclass
class Assign:
    """``target = expr;`` — dry assignment or fluid definition (MIX rhs)."""

    target: Target
    value: Expr | MixExpr
    line: int = 0


@dataclass
class SenseStmt:
    """``SENSE OPTICAL it INTO Result[1];``"""

    mode: str  # "OD" | "FL"
    operand: Expr
    target: Target
    line: int = 0


@dataclass
class SeparateStmt:
    """``SEPARATE it MATRIX lectin USING buffer1b FOR 30 INTO eff AND waste;``

    ``mode`` is the AIS flavour (AF for SEPARATE, LC for LCSEPARATE, CE/SIZE
    for the corresponding keywords).  ``yield_hint`` carries the optional
    ``YIELD p : q`` clause — a programmer hint making the output volume
    statically known as the fraction p/q of the input (Section 3.5).
    """

    mode: str
    operand: Expr
    matrix: str
    pusher: str
    duration: Expr
    effluent: str
    waste: str
    yield_hint: tuple[Expr, Expr] | None = None
    line: int = 0


@dataclass
class IncubateStmt:
    """``INCUBATE it AT 37 FOR 30;``"""

    operand: Expr
    temperature: Expr
    duration: Expr
    line: int = 0


@dataclass
class ConcentrateStmt:
    """``CONCENTRATE it AT 90 FOR 60 [KEEP p : q];`` — evaporative
    concentration keeping p/q of the volume (default 1/2)."""

    operand: Expr
    temperature: Expr
    duration: Expr
    keep: tuple[Expr, Expr] | None = None
    line: int = 0


@dataclass
class OutputStmt:
    """``OUTPUT it;`` — send a fluid off chip."""

    operand: Expr
    line: int = 0


@dataclass
class ForStmt:
    """``FOR i FROM 1 TO 4 START ... ENDFOR`` (inclusive bounds)."""

    var: str
    start: Expr
    stop: Expr
    body: list["Stmt"]
    line: int = 0


@dataclass
class WhileStmt:
    """``WHILE cond HINT n START ... ENDWHILE`` — iteration count unknown;
    the mandatory HINT bounds the unroll (paper Section 3.5, option 1)."""

    condition: Expr
    hint: Expr
    body: list["Stmt"]
    line: int = 0


@dataclass
class IfStmt:
    """``IF cond THEN ... [ELSE ...] ENDIF``.

    Dry-evaluable conditions fold at compile time; otherwise both paths are
    conservatively included in the volume DAG (Section 3.5).
    """

    condition: Expr
    then_body: list["Stmt"]
    else_body: list["Stmt"] = field(default_factory=list)
    line: int = 0


Stmt = (
    FluidDecl
    | VarDecl
    | Assign
    | MixExpr
    | SenseStmt
    | SeparateStmt
    | IncubateStmt
    | ConcentrateStmt
    | OutputStmt
    | ForStmt
    | WhileStmt
    | IfStmt
)


@dataclass
class Program:
    name: str
    body: list[Stmt]
    line: int = 0
