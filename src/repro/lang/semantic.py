"""Semantic analysis: symbol resolution and type checking.

Two namespaces exist in an assay, mirroring AquaCore's wet/dry split:

* **fluids** (``fluid`` declarations) — consumed by MIX/SEPARATE/...;
* **dry variables** (``VAR`` declarations, loop indices) — integers used in
  ratios, bounds and as sense-result targets.

The analysis checks declaration-before-use, arity of array indexing, and
that each construct gets the right namespace (a MIX target must be a fluid,
a dry assignment target must be a VAR, a SENSE result must be a VAR, ...).
Loop variables are implicitly dry and scoped to their loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ast import (
    Assign,
    BinOp,
    Compare,
    ConcentrateStmt,
    Expr,
    FluidDecl,
    ForStmt,
    IfStmt,
    IncubateStmt,
    Index,
    ItRef,
    MixExpr,
    Name,
    Num,
    OutputStmt,
    Program,
    SenseStmt,
    SeparateStmt,
    Stmt,
    VarDecl,
    WhileStmt,
)
from .errors import SemanticError

__all__ = ["SymbolTable", "analyze"]


@dataclass
class SymbolTable:
    """Declared names with their kind and array dimensionality."""

    fluids: dict[str, tuple[int, ...]] = field(default_factory=dict)
    variables: dict[str, tuple[int, ...]] = field(default_factory=dict)
    loop_vars: set[str] = field(default_factory=set)
    #: fluids whose excess production is disallowed (NOEXCESS).
    no_excess: set[str] = field(default_factory=set)

    def kind_of(self, name: str) -> str:
        if name in self.fluids:
            return "fluid"
        if name in self.variables or name in self.loop_vars:
            return "var"
        raise SemanticError(f"undeclared name {name!r}")

    def is_fluid(self, name: str) -> bool:
        return name in self.fluids

    def is_var(self, name: str) -> bool:
        return name in self.variables or name in self.loop_vars

    def dims_of(self, name: str) -> tuple[int, ...]:
        if name in self.fluids:
            return self.fluids[name]
        if name in self.variables:
            return self.variables[name]
        if name in self.loop_vars:
            return ()
        raise SemanticError(f"undeclared name {name!r}")


class _Analyzer:
    def __init__(self) -> None:
        self.symbols = SymbolTable()
        self.it_defined = False

    # ------------------------------------------------------------------
    def analyze(self, program: Program) -> SymbolTable:
        for statement in program.body:
            self.statement(statement)
        return self.symbols

    # ------------------------------------------------------------------
    def declare(self, decl: FluidDecl | VarDecl) -> None:
        table = (
            self.symbols.fluids
            if isinstance(decl, FluidDecl)
            else self.symbols.variables
        )
        for name, dims in decl.names:
            if self.symbols.is_fluid(name) or self.symbols.is_var(name):
                raise SemanticError(f"duplicate declaration of {name!r}", decl.line)
            table[name] = dims
        for name in getattr(decl, "no_excess", ()):
            self.symbols.no_excess.add(name)

    def statement(self, statement: Stmt) -> None:
        if isinstance(statement, (FluidDecl, VarDecl)):
            self.declare(statement)
        elif isinstance(statement, Assign):
            self.assign(statement)
        elif isinstance(statement, MixExpr):
            self.mix(statement)
            self.it_defined = True
        elif isinstance(statement, SenseStmt):
            self.fluid_operand(statement.operand, statement.line)
            self.var_target(statement.target, statement.line, context="SENSE result")
        elif isinstance(statement, SeparateStmt):
            self.separate(statement)
        elif isinstance(statement, (IncubateStmt, ConcentrateStmt)):
            self.fluid_operand(statement.operand, statement.line)
            self.dry_expr(statement.temperature, statement.line)
            self.dry_expr(statement.duration, statement.line)
            if isinstance(statement, ConcentrateStmt) and statement.keep:
                for part in statement.keep:
                    self.dry_expr(part, statement.line)
            self.it_defined = True
        elif isinstance(statement, OutputStmt):
            self.fluid_operand(statement.operand, statement.line)
        elif isinstance(statement, ForStmt):
            self.dry_expr(statement.start, statement.line)
            self.dry_expr(statement.stop, statement.line)
            if self.symbols.is_fluid(statement.var):
                raise SemanticError(
                    f"loop variable {statement.var!r} collides with a fluid",
                    statement.line,
                )
            fresh = statement.var not in self.symbols.loop_vars
            self.symbols.loop_vars.add(statement.var)
            for inner in statement.body:
                self.statement(inner)
            if fresh:
                # loop variables stay visible afterwards only as dry names
                pass
        elif isinstance(statement, WhileStmt):
            self.condition(statement.condition, statement.line)
            self.dry_expr(statement.hint, statement.line)
            for inner in statement.body:
                self.statement(inner)
        elif isinstance(statement, IfStmt):
            self.condition(statement.condition, statement.line)
            for inner in statement.then_body:
                self.statement(inner)
            for inner in statement.else_body:
                self.statement(inner)
        else:  # pragma: no cover - parser produces no other nodes
            raise SemanticError(f"unknown statement {statement!r}")

    # ------------------------------------------------------------------
    def assign(self, statement: Assign) -> None:
        target = statement.target
        base = target.base if isinstance(target, Index) else target.ident
        if isinstance(statement.value, MixExpr):
            if not self.symbols.is_fluid(base):
                raise SemanticError(
                    f"MIX result must be assigned to a fluid, {base!r} is not",
                    statement.line,
                )
            self.check_indexing(target, statement.line)
            self.mix(statement.value)
            self.it_defined = True
        else:
            if not self.symbols.is_var(base):
                raise SemanticError(
                    f"dry assignment target {base!r} is not a VAR",
                    statement.line,
                )
            self.check_indexing(target, statement.line)
            self.dry_expr(statement.value, statement.line)

    def mix(self, expression: MixExpr) -> None:
        for operand in expression.operands:
            self.fluid_operand(operand, expression.line)
        if expression.ratios is not None:
            for ratio in expression.ratios:
                self.dry_expr(ratio, expression.line)
        self.dry_expr(expression.duration, expression.line)

    def separate(self, statement: SeparateStmt) -> None:
        self.fluid_operand(statement.operand, statement.line)
        for name in (statement.matrix, statement.pusher):
            if not self.symbols.is_fluid(name):
                raise SemanticError(
                    f"separator matrix/pusher {name!r} must be a fluid",
                    statement.line,
                )
        for name in (statement.effluent, statement.waste):
            if not self.symbols.is_fluid(name):
                raise SemanticError(
                    f"separation product {name!r} must be a declared fluid",
                    statement.line,
                )
        if statement.yield_hint:
            for part in statement.yield_hint:
                self.dry_expr(part, statement.line)
        self.dry_expr(statement.duration, statement.line)
        self.it_defined = True

    # ------------------------------------------------------------------
    def fluid_operand(self, operand: Expr, line: int) -> None:
        if isinstance(operand, ItRef):
            if not self.it_defined:
                raise SemanticError("'it' used before any fluid operation", line)
            return
        if isinstance(operand, Name):
            if not self.symbols.is_fluid(operand.ident):
                raise SemanticError(
                    f"{operand.ident!r} is not a fluid", operand.line or line
                )
            self.check_indexing(operand, line)
            return
        if isinstance(operand, Index):
            if not self.symbols.is_fluid(operand.base):
                raise SemanticError(
                    f"{operand.base!r} is not a fluid", operand.line or line
                )
            self.check_indexing(operand, line)
            for index in operand.indices:
                self.dry_expr(index, line)
            return
        raise SemanticError(f"expected a fluid operand, got {operand}", line)

    def var_target(self, target, line: int, *, context: str) -> None:
        base = target.base if isinstance(target, Index) else target.ident
        if not self.symbols.is_var(base):
            raise SemanticError(f"{context} {base!r} is not a VAR", line)
        self.check_indexing(target, line)

    def check_indexing(self, ref, line: int) -> None:
        if isinstance(ref, Name):
            dims = self.symbols.dims_of(ref.ident)
            if dims:
                raise SemanticError(
                    f"{ref.ident!r} is an array of rank {len(dims)}; "
                    "missing indices",
                    line,
                )
            return
        dims = self.symbols.dims_of(ref.base)
        if len(dims) != len(ref.indices):
            raise SemanticError(
                f"{ref.base!r} has rank {len(dims)} but is indexed with "
                f"{len(ref.indices)} subscripts",
                line,
            )
        for index in ref.indices:
            self.dry_expr(index, line)

    def dry_expr(self, expression: Expr, line: int) -> None:
        if isinstance(expression, Num):
            return
        if isinstance(expression, ItRef):
            raise SemanticError("'it' is a fluid, not a dry value", line)
        if isinstance(expression, Name):
            if not self.symbols.is_var(expression.ident):
                raise SemanticError(
                    f"{expression.ident!r} is not a dry variable",
                    expression.line or line,
                )
            return
        if isinstance(expression, Index):
            if not self.symbols.is_var(expression.base):
                raise SemanticError(
                    f"{expression.base!r} is not a dry variable",
                    expression.line or line,
                )
            self.check_indexing(expression, line)
            return
        if isinstance(expression, (BinOp, Compare)):
            self.dry_expr(expression.left, line)
            self.dry_expr(expression.right, line)
            return
        raise SemanticError(f"invalid dry expression {expression}", line)

    def condition(self, expression: Expr, line: int) -> None:
        if not isinstance(expression, Compare):
            raise SemanticError("condition must be a comparison", line)
        self.dry_expr(expression, line)


def analyze(program: Program) -> SymbolTable:
    """Run semantic analysis; returns the symbol table or raises
    :class:`SemanticError`."""
    return _Analyzer().analyze(program)
