"""Front-end diagnostics, all carrying source positions."""

from __future__ import annotations


__all__ = ["FrontendError", "LexError", "ParseError", "SemanticError"]


class FrontendError(Exception):
    """Base class for assay-language errors with source locations."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f"line {line}"
            if column is not None:
                location += f", column {column}"
            location = f" ({location})"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class LexError(FrontendError):
    """Invalid character or malformed token."""


class ParseError(FrontendError):
    """Token stream does not match the grammar."""


class SemanticError(FrontendError):
    """Well-formed but meaningless assay (undeclared fluid, type clash,
    fluid used after depletion analysis says it cannot exist, ...)."""
