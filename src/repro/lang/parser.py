"""Recursive-descent parser for the assay language.

The grammar (statement keywords dispatch the alternatives)::

    program   := 'ASSAY' IDENT 'START' stmt* 'END'
    stmt      := fluid_decl | var_decl | assign ';' | mix ';' | sense ';'
               | separate ';' | incubate ';' | concentrate ';' | output ';'
               | for | while | if
    fluid_decl:= 'fluid' item (',' item)* ';'
    var_decl  := 'VAR' item (',' item)* ';'
    item      := IDENT ('[' NUMBER ']')* ['NOEXCESS' (fluids only)]
    assign    := target '=' (mix | expr)
    mix       := 'MIX' operand ('AND' operand)+
                 ('IN' 'RATIOS' expr (':' expr)+)? 'FOR' expr
    sense     := 'SENSE' ('OPTICAL'|'FLUORESCENCE') operand 'INTO' target
    separate  := ('SEPARATE'|'LCSEPARATE'|'CESEPARATE'|'SIZESEPARATE')
                 operand 'MATRIX' IDENT 'USING' IDENT
                 ('YIELD' expr ':' expr)? 'FOR' expr
                 'INTO' IDENT 'AND' IDENT
    incubate  := 'INCUBATE' operand 'AT' expr 'FOR' expr
    concentrate := 'CONCENTRATE' operand 'AT' expr 'FOR' expr
                   ('KEEP' expr ':' expr)?
    output    := 'OUTPUT' operand
    for       := 'FOR' IDENT 'FROM' expr 'TO' expr 'START' stmt* 'ENDFOR'
    while     := 'WHILE' cond 'HINT' expr 'START' stmt* 'ENDWHILE'
    if        := 'IF' cond 'THEN' stmt* ('ELSE' stmt*)? 'ENDIF'
    cond      := expr ('=='|'!='|'<'|'>'|'<='|'>=') expr
    expr      := term (('+'|'-') term)*
    term      := factor (('*'|'/') factor)*
    factor    := NUMBER | 'it' | IDENT ('[' expr ']')* | '(' expr ')'
               | '-' factor
"""

from __future__ import annotations


from .ast import (
    Assign,
    BinOp,
    Compare,
    ConcentrateStmt,
    Expr,
    FluidDecl,
    ForStmt,
    IfStmt,
    IncubateStmt,
    Index,
    ItRef,
    MixExpr,
    Name,
    Num,
    OutputStmt,
    Program,
    SenseStmt,
    SeparateStmt,
    Stmt,
    VarDecl,
    WhileStmt,
)
from .errors import ParseError
from .lexer import Token, TokenKind, tokenize

__all__ = ["parse", "Parser"]

_SEPARATE_MODES = {
    "SEPARATE": "AF",
    "LCSEPARATE": "LC",
    "CESEPARATE": "CE",
    "SIZESEPARATE": "SIZE",
}
_SENSE_MODES = {"OPTICAL": "OD", "FLUORESCENCE": "FL"}


class Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # -- token plumbing --------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.position += 1
        return token

    def expect_keyword(self, *names: str) -> Token:
        token = self.current
        if not token.is_keyword(*names):
            raise ParseError(
                f"expected {' or '.join(names)!s}, found {token.text!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def expect_symbol(self, symbol: str) -> Token:
        token = self.current
        if not token.is_symbol(symbol):
            raise ParseError(
                f"expected {symbol!r}, found {token.text!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def expect_ident(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.IDENT:
            raise ParseError(
                f"expected identifier, found {token.text!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def accept_symbol(self, symbol: str) -> Token | None:
        if self.current.is_symbol(symbol):
            return self.advance()
        return None

    def accept_keyword(self, *names: str) -> Token | None:
        if self.current.is_keyword(*names):
            return self.advance()
        return None

    # -- grammar ----------------------------------------------------------
    def parse_program(self) -> Program:
        start = self.expect_keyword("ASSAY")
        name = self.expect_ident().text
        self.expect_keyword("START")
        body = self.parse_block(("END",))
        self.expect_keyword("END")
        token = self.current
        if token.kind is not TokenKind.EOF:
            raise ParseError(
                f"trailing input after END: {token.text!r}",
                token.line,
                token.column,
            )
        return Program(name, body, start.line)

    def parse_block(self, terminators: tuple[str, ...]) -> list[Stmt]:
        body: list[Stmt] = []
        while True:
            token = self.current
            if token.kind is TokenKind.EOF:
                raise ParseError(
                    f"unexpected end of input; expected {terminators}",
                    token.line,
                    token.column,
                )
            if token.is_keyword(*terminators):
                return body
            body.append(self.parse_statement())

    def parse_statement(self) -> Stmt:
        token = self.current
        if token.is_keyword("fluid"):
            return self.parse_declaration(FluidDecl)
        if token.is_keyword("VAR"):
            return self.parse_declaration(VarDecl)
        if token.is_keyword("MIX"):
            mix = self.parse_mix()
            self.expect_symbol(";")
            return mix
        if token.is_keyword("SENSE"):
            return self.parse_sense()
        if token.is_keyword(*(_SEPARATE_MODES)):
            return self.parse_separate()
        if token.is_keyword("INCUBATE"):
            return self.parse_incubate()
        if token.is_keyword("CONCENTRATE"):
            return self.parse_concentrate()
        if token.is_keyword("OUTPUT"):
            return self.parse_output()
        if token.is_keyword("FOR"):
            return self.parse_for()
        if token.is_keyword("WHILE"):
            return self.parse_while()
        if token.is_keyword("IF"):
            return self.parse_if()
        if token.kind is TokenKind.IDENT:
            return self.parse_assignment()
        raise ParseError(
            f"unexpected token {token.text!r} at statement start",
            token.line,
            token.column,
        )

    def parse_declaration(self, cls) -> Stmt:
        keyword = self.advance()
        names: list[tuple[str, tuple[int, ...]]] = []
        no_excess: list[str] = []
        while True:
            ident = self.expect_ident()
            dims: list[int] = []
            while self.accept_symbol("["):
                size = self.current
                if size.kind is not TokenKind.NUMBER:
                    raise ParseError(
                        "array dimension must be a literal number",
                        size.line,
                        size.column,
                    )
                self.advance()
                dims.append(int(size.text))
                self.expect_symbol("]")
            if self.accept_keyword("NOEXCESS"):
                if cls is not FluidDecl:
                    raise ParseError(
                        "NOEXCESS applies to fluids only", ident.line
                    )
                no_excess.append(ident.text)
            names.append((ident.text, tuple(dims)))
            if not self.accept_symbol(","):
                break
        self.expect_symbol(";")
        declaration = cls(names, keyword.line)
        if cls is FluidDecl:
            declaration.no_excess = no_excess
        return declaration

    def parse_assignment(self) -> Assign:
        target = self.parse_target()
        self.expect_symbol("=")
        if self.current.is_keyword("MIX"):
            value: object = self.parse_mix()
        else:
            value = self.parse_expression()
        self.expect_symbol(";")
        return Assign(target, value, target.line)

    def parse_target(self):
        ident = self.expect_ident()
        indices: list[Expr] = []
        while self.accept_symbol("["):
            indices.append(self.parse_expression())
            self.expect_symbol("]")
        if indices:
            return Index(ident.text, tuple(indices), ident.line)
        return Name(ident.text, ident.line)

    def parse_mix(self) -> MixExpr:
        keyword = self.expect_keyword("MIX")
        operands = [self.parse_operand()]
        while self.accept_keyword("AND"):
            operands.append(self.parse_operand())
        if len(operands) < 2:
            raise ParseError("MIX needs at least two operands", keyword.line)
        ratios: list[Expr] | None = None
        if self.accept_keyword("IN"):
            self.expect_keyword("RATIOS")
            ratios = [self.parse_expression()]
            while self.accept_symbol(":"):
                ratios.append(self.parse_expression())
            if len(ratios) != len(operands):
                raise ParseError(
                    f"MIX has {len(operands)} operands but "
                    f"{len(ratios)} ratio parts",
                    keyword.line,
                )
        self.expect_keyword("FOR")
        duration = self.parse_expression()
        return MixExpr(operands, ratios, duration, keyword.line)

    def parse_sense(self) -> SenseStmt:
        keyword = self.expect_keyword("SENSE")
        mode_token = self.expect_keyword(*(_SENSE_MODES))
        operand = self.parse_operand()
        self.expect_keyword("INTO")
        target = self.parse_target()
        self.expect_symbol(";")
        return SenseStmt(
            _SENSE_MODES[mode_token.text], operand, target, keyword.line
        )

    def parse_separate(self) -> SeparateStmt:
        keyword = self.advance()
        mode = _SEPARATE_MODES[keyword.text]
        operand = self.parse_operand()
        self.expect_keyword("MATRIX")
        matrix = self.expect_ident().text
        self.expect_keyword("USING")
        pusher = self.expect_ident().text
        yield_hint = None
        if self.accept_keyword("YIELD"):
            numerator = self.parse_expression()
            self.expect_symbol(":")
            denominator = self.parse_expression()
            yield_hint = (numerator, denominator)
        self.expect_keyword("FOR")
        duration = self.parse_expression()
        self.expect_keyword("INTO")
        effluent = self.expect_ident().text
        self.expect_keyword("AND")
        waste = self.expect_ident().text
        self.expect_symbol(";")
        return SeparateStmt(
            mode,
            operand,
            matrix,
            pusher,
            duration,
            effluent,
            waste,
            yield_hint,
            keyword.line,
        )

    def parse_incubate(self) -> IncubateStmt:
        keyword = self.expect_keyword("INCUBATE")
        operand = self.parse_operand()
        self.expect_keyword("AT")
        temperature = self.parse_expression()
        self.expect_keyword("FOR")
        duration = self.parse_expression()
        self.expect_symbol(";")
        return IncubateStmt(operand, temperature, duration, keyword.line)

    def parse_concentrate(self) -> ConcentrateStmt:
        keyword = self.expect_keyword("CONCENTRATE")
        operand = self.parse_operand()
        self.expect_keyword("AT")
        temperature = self.parse_expression()
        self.expect_keyword("FOR")
        duration = self.parse_expression()
        keep = None
        if self.accept_keyword("KEEP"):
            numerator = self.parse_expression()
            self.expect_symbol(":")
            denominator = self.parse_expression()
            keep = (numerator, denominator)
        self.expect_symbol(";")
        return ConcentrateStmt(
            operand, temperature, duration, keep, keyword.line
        )

    def parse_output(self) -> OutputStmt:
        keyword = self.expect_keyword("OUTPUT")
        operand = self.parse_operand()
        self.expect_symbol(";")
        return OutputStmt(operand, keyword.line)

    def parse_for(self) -> ForStmt:
        keyword = self.expect_keyword("FOR")
        var = self.expect_ident().text
        self.expect_keyword("FROM")
        start = self.parse_expression()
        self.expect_keyword("TO")
        stop = self.parse_expression()
        self.expect_keyword("START")
        body = self.parse_block(("ENDFOR",))
        self.expect_keyword("ENDFOR")
        return ForStmt(var, start, stop, body, keyword.line)

    def parse_while(self) -> WhileStmt:
        keyword = self.expect_keyword("WHILE")
        condition = self.parse_condition()
        self.expect_keyword("HINT")
        hint = self.parse_expression()
        self.expect_keyword("START")
        body = self.parse_block(("ENDWHILE",))
        self.expect_keyword("ENDWHILE")
        return WhileStmt(condition, hint, body, keyword.line)

    def parse_if(self) -> IfStmt:
        keyword = self.expect_keyword("IF")
        condition = self.parse_condition()
        self.expect_keyword("THEN")
        then_body = self.parse_block(("ELSE", "ENDIF"))
        else_body: list[Stmt] = []
        if self.accept_keyword("ELSE"):
            else_body = self.parse_block(("ENDIF",))
        self.expect_keyword("ENDIF")
        return IfStmt(condition, then_body, else_body, keyword.line)

    # -- expressions ------------------------------------------------------
    def parse_condition(self) -> Expr:
        left = self.parse_expression()
        token = self.current
        for op in ("==", "!=", "<=", ">=", "<", ">"):
            if token.is_symbol(op):
                self.advance()
                right = self.parse_expression()
                return Compare(op, left, right, token.line)
        raise ParseError(
            f"expected a comparison operator, found {token.text!r}",
            token.line,
            token.column,
        )

    def parse_operand(self) -> Expr:
        token = self.current
        if token.is_keyword("it"):
            self.advance()
            return ItRef(token.line)
        if token.kind is TokenKind.IDENT:
            return self.parse_target()
        raise ParseError(
            f"expected a fluid operand, found {token.text!r}",
            token.line,
            token.column,
        )

    def parse_expression(self) -> Expr:
        left = self.parse_term()
        while self.current.is_symbol("+", "-"):
            op = self.advance()
            right = self.parse_term()
            left = BinOp(op.text, left, right, op.line)
        return left

    def parse_term(self) -> Expr:
        left = self.parse_factor()
        while self.current.is_symbol("*", "/"):
            op = self.advance()
            right = self.parse_factor()
            left = BinOp(op.text, left, right, op.line)
        return left

    def parse_factor(self) -> Expr:
        token = self.current
        if token.is_symbol("-"):
            self.advance()
            inner = self.parse_factor()
            return BinOp("-", Num(0, token.line), inner, token.line)
        if token.kind is TokenKind.NUMBER:
            self.advance()
            return Num(int(token.text), token.line)
        if token.is_keyword("it"):
            self.advance()
            return ItRef(token.line)
        if token.kind is TokenKind.IDENT:
            return self.parse_target()
        if token.is_symbol("("):
            self.advance()
            inner = self.parse_expression()
            self.expect_symbol(")")
            return inner
        raise ParseError(
            f"unexpected token {token.text!r} in expression",
            token.line,
            token.column,
        )


def parse(source: str) -> Program:
    """Parse assay source text into an AST."""
    return Parser(tokenize(source)).parse_program()
