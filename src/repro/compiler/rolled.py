"""Rolled (loop-preserving) code generation — the Figure 11(b) form.

The executable pipeline fully unrolls loops (volume management needs the
complete use-set, Section 3.5), but the paper *prints* the enzyme assay
with its loops intact: dry-register arithmetic updates the dilution ratio,
``move mixer1, s2, inh_dil`` takes its relative volume from a register,
fluids indexed by the loop variable live in reservoir *banks* (``s3(i)``),
and a multi-dimensional sense target is linearised with dry multiplies and
adds (``sense.OD sensor2, RESULT(t6)``).

:func:`render_rolled` reproduces that form from the AST.  It is a
*presentation* generator: the emitted text is the paper's compact listing
for humans and for the (electronic, loop-capable) controller, while the
unrolled :mod:`repro.compiler.codegen` output remains the executable
reference — the two agree on the wet work performed, which
``tests/compiler/test_rolled.py`` checks by instruction counting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.ast import (
    Assign,
    BinOp,
    Compare,
    ConcentrateStmt,
    Expr,
    FluidDecl,
    ForStmt,
    IfStmt,
    IncubateStmt,
    Index,
    ItRef,
    MixExpr,
    Name,
    Num,
    OutputStmt,
    Program,
    SenseStmt,
    SeparateStmt,
    VarDecl,
    WhileStmt,
)
from ..lang.errors import SemanticError
from ..lang.parser import parse
from ..lang.semantic import SymbolTable, analyze

__all__ = ["RolledListing", "render_rolled", "render_rolled_source"]

_DRY_OPS = {"+": "dry-add", "-": "dry-sub", "*": "dry-mul"}


@dataclass
class RolledListing:
    """The rolled listing plus its resource bookkeeping."""

    name: str
    lines: list[str] = field(default_factory=list)
    #: fluid name -> reservoir (scalars) or bank base (arrays, printed
    #: as ``s3(i)``)
    reservoir_of: dict[str, str] = field(default_factory=dict)
    input_ports: dict[str, str] = field(default_factory=dict)
    loop_count: int = 0
    dry_instruction_count: int = 0
    wet_instruction_count: int = 0

    def render(self) -> str:
        body = "\n".join(f"  {line}" for line in self.lines)
        return f"{self.name}{{\n{body}\n}}"

    def __str__(self) -> str:
        return self.render()


class _RolledGenerator:
    def __init__(self, program: Program, symbols: SymbolTable) -> None:
        self.program = program
        self.symbols = symbols
        self.listing = RolledListing(program.name)
        self._next_reservoir = 1
        self._next_port = 1
        self._next_temp = 0
        self._loop_depth = 0
        self.it_location: str | None = None
        #: short register aliases, like the paper's ``inh_dil``
        self.register_alias: dict[str, str] = {}

    # ------------------------------------------------------------------
    # resources
    # ------------------------------------------------------------------
    def emit(self, line: str, *, wet: bool = None) -> None:
        self.listing.lines.append(line)
        if wet is True:
            self.listing.wet_instruction_count += 1
        elif wet is False:
            self.listing.dry_instruction_count += 1

    def reservoir_for(self, fluid: str) -> str:
        if fluid not in self.listing.reservoir_of:
            self.listing.reservoir_of[fluid] = f"s{self._next_reservoir}"
            self._next_reservoir += 1
        return self.listing.reservoir_of[fluid]

    def port_for(self, fluid: str) -> str:
        if fluid not in self.listing.input_ports:
            self.listing.input_ports[fluid] = f"ip{self._next_port}"
            self._next_port += 1
        return self.listing.input_ports[fluid]

    def temp_register(self) -> str:
        register = f"r{self._next_temp}"
        self._next_temp += 1
        return register

    def alias(self, variable: str) -> str:
        """Shorten long dry-variable names the way the paper does
        (``inhibitor_diluent`` -> ``inh_dil``)."""
        if variable not in self.register_alias:
            parts = variable.split("_")
            if len(parts) > 1:
                short = "_".join(p[:4] for p in parts)
            else:
                short = variable[:8]
            taken = set(self.register_alias.values())
            candidate, suffix = short, 2
            while candidate in taken:
                candidate = f"{short}{suffix}"
                suffix += 1
            self.register_alias[variable] = candidate
        return self.register_alias[variable]

    # ------------------------------------------------------------------
    # dry expression compilation
    # ------------------------------------------------------------------
    def dry_operand(self, expression: Expr) -> str | None:
        """A directly-referencable dry operand, or None if it needs code."""
        if isinstance(expression, Num):
            return str(expression.value)
        if isinstance(expression, Name):
            return self.alias(expression.ident)
        return None

    def compile_dry(self, expression: Expr) -> str:
        """Compile a dry expression; returns the operand holding its value.

        Simple operands are used in place; compound expressions evaluate
        left-to-right through a temp register, exactly like the paper's
        ``dry-mov r0, temp / dry-mul r0, 10`` sequences.
        """
        direct = self.dry_operand(expression)
        if direct is not None:
            return direct
        if isinstance(expression, Index):
            indices = ",".join(
                self.compile_dry(i) for i in expression.indices
            )
            return f"{self.alias(expression.base)}({indices})"
        if isinstance(expression, BinOp):
            register = self.temp_register()
            left = self.compile_dry(expression.left)
            self.emit(f"dry-mov {register}, {left}", wet=False)
            right = self.compile_dry(expression.right)
            opcode = _DRY_OPS.get(expression.op)
            if opcode is None:
                raise SemanticError(
                    f"dry operator {expression.op!r} has no rolled form"
                )
            self.emit(f"{opcode} {register}, {right}", wet=False)
            return register
        raise SemanticError(f"cannot compile dry expression {expression}")

    # ------------------------------------------------------------------
    # fluid operands
    # ------------------------------------------------------------------
    def fluid_location(self, operand: Expr) -> str:
        if isinstance(operand, ItRef):
            if self.it_location is None:
                raise SemanticError("'it' used before any fluid operation")
            return self.it_location
        if isinstance(operand, Name):
            return self.reservoir_for(operand.ident)
        if isinstance(operand, Index):
            bank = self.reservoir_for(operand.base)
            indices = ",".join(
                self.compile_dry(i) for i in operand.indices
            )
            return f"{bank}({indices})"
        raise SemanticError(f"not a fluid operand: {operand}")

    def target_location(self, target) -> str:
        if isinstance(target, Name):
            return self.reservoir_for(target.ident)
        bank = self.reservoir_for(target.base)
        indices = ",".join(self.compile_dry(i) for i in target.indices)
        return f"{bank}({indices})"

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def run(self) -> RolledListing:
        # Inputs first, in declaration order, like Figures 9-11(b):
        # any declared fluid that is only ever *read* is a primary input.
        produced = _produced_fluids(self.program.body)
        for statement in self.program.body:
            if isinstance(statement, FluidDecl):
                for name, dims in statement.names:
                    if dims or name in produced:
                        continue
                    if not _fluid_used(self.program.body, name):
                        continue
                    reservoir = self.reservoir_for(name)
                    port = self.port_for(name)
                    self.emit(f"input {reservoir}, {port} ;{name}", wet=True)
        for statement in self.program.body:
            self.statement(statement)
        return self.listing

    def statement(self, statement) -> None:
        if isinstance(statement, (FluidDecl, VarDecl)):
            return
        if isinstance(statement, Assign):
            if isinstance(statement.value, MixExpr):
                self.mix(statement.value, statement.target)
            else:
                self.dry_assign(statement)
        elif isinstance(statement, MixExpr):
            self.mix(statement, None)
        elif isinstance(statement, SenseStmt):
            self.sense(statement)
        elif isinstance(statement, SeparateStmt):
            self.separate(statement)
        elif isinstance(statement, IncubateStmt):
            self.heat(statement, "incubate")
        elif isinstance(statement, ConcentrateStmt):
            self.heat(statement, "concentrate")
        elif isinstance(statement, OutputStmt):
            location = self.fluid_location(statement.operand)
            self.emit(f"output op1, {location}", wet=True)
        elif isinstance(statement, ForStmt):
            self.for_loop(statement)
        elif isinstance(statement, WhileStmt):
            self.while_loop(statement)
        elif isinstance(statement, IfStmt):
            self.conditional(statement)
        else:  # pragma: no cover
            raise SemanticError(f"unknown statement {statement!r}")

    def dry_assign(self, statement: Assign) -> None:
        value = self.compile_dry(statement.value)
        target = statement.target
        if isinstance(target, Name):
            destination = self.alias(target.ident)
        else:
            destination = (
                self.alias(target.base)
                + "("
                + ",".join(self.compile_dry(i) for i in target.indices)
                + ")"
            )
        self.emit(f"dry-mov {destination}, {value}", wet=False)

    def mix(self, expression: MixExpr, target) -> None:
        for position, operand in enumerate(expression.operands):
            location = self.fluid_location(operand)
            if expression.ratios is not None:
                ratio = self.compile_dry(expression.ratios[position])
                self.emit(f"move mixer1, {location}, {ratio}", wet=True)
            else:
                self.emit(f"move mixer1, {location}, 1", wet=True)
        duration = self.compile_dry(expression.duration)
        self.emit(f"mix mixer1, {duration}", wet=True)
        self.it_location = "mixer1"
        if target is not None:
            destination = self.target_location(target)
            self.emit(f"move {destination}, mixer1", wet=True)
            self.it_location = destination

    def sense(self, statement: SenseStmt) -> None:
        location = self.fluid_location(statement.operand)
        sensor = "sensor2" if statement.mode == "OD" else "sensor1"
        if location != sensor:
            self.emit(f"move {sensor}, {location}", wet=True)
            self.it_location = sensor
        target = statement.target
        if isinstance(target, Name):
            result = target.ident
        elif len(target.indices) == 1:
            result = f"{target.base}({self.compile_dry(target.indices[0])})"
        else:
            # linearise row-major through a temp register, Figure 11(b)
            # style: t = ((i * d2) + j) * d3 + k ...
            dims = self.symbols.dims_of(target.base)
            register = self.temp_register()
            first = self.compile_dry(target.indices[0])
            self.emit(f"dry-mov {register}, {first}", wet=False)
            for dim, index in zip(dims[1:], target.indices[1:]):
                self.emit(f"dry-mul {register}, {dim}", wet=False)
                self.emit(
                    f"dry-add {register}, {self.compile_dry(index)}",
                    wet=False,
                )
            result = f"{target.base}({register})"
        self.emit(f"sense.{statement.mode} {sensor}, {result}", wet=True)

    def separate(self, statement: SeparateStmt) -> None:
        mode = statement.mode
        unit = "separator1" if mode in ("AF", "SIZE") else "separator2"
        matrix = self.reservoir_for(statement.matrix)
        self.port_for(statement.matrix)
        pusher = self.reservoir_for(statement.pusher)
        self.port_for(statement.pusher)
        self.emit(f"move {unit}.matrix, {matrix}", wet=True)
        self.emit(f"move {unit}.pusher, {pusher}", wet=True)
        feed = self.fluid_location(statement.operand)
        self.emit(f"move {unit}, {feed}", wet=True)
        duration = self.compile_dry(statement.duration)
        self.emit(f"separate.{mode} {unit}, {duration}", wet=True)
        effluent = self.reservoir_for(statement.effluent)
        self.emit(f"move {effluent}, {unit}.out1", wet=True)
        self.it_location = effluent

    def heat(self, statement, opcode: str) -> None:
        location = self.fluid_location(statement.operand)
        if location != "heater1":
            self.emit(f"move heater1, {location}", wet=True)
        temperature = self.compile_dry(statement.temperature)
        duration = self.compile_dry(statement.duration)
        self.emit(f"{opcode} heater1, {temperature}, {duration}", wet=True)
        self.it_location = "heater1"

    def for_loop(self, statement: ForStmt) -> None:
        label = f"loop{self.listing.loop_count}"
        self.listing.loop_count += 1
        start = self.compile_dry(statement.start)
        stop = self.compile_dry(statement.stop)
        self.emit(
            f"{label}: index {statement.var}: {start}->{stop}"
        )
        self._loop_depth += 1
        for inner in statement.body:
            self.statement(inner)
        self._loop_depth -= 1
        self.emit(f"end {label}")

    def while_loop(self, statement: WhileStmt) -> None:
        label = f"loop{self.listing.loop_count}"
        self.listing.loop_count += 1
        condition = _render_condition(statement.condition, self)
        self.emit(f"{label}: while {condition}")
        self._loop_depth += 1
        for inner in statement.body:
            self.statement(inner)
        self._loop_depth -= 1
        self.emit(f"end {label}")

    def conditional(self, statement: IfStmt) -> None:
        condition = _render_condition(statement.condition, self)
        self.emit(f"if {condition}")
        for inner in statement.then_body:
            self.statement(inner)
        if statement.else_body:
            self.emit("else")
            for inner in statement.else_body:
                self.statement(inner)
        self.emit("endif")


def _render_condition(condition: Compare, generator: _RolledGenerator) -> str:
    left = generator.compile_dry(condition.left)
    right = generator.compile_dry(condition.right)
    return f"{left} {condition.op} {right}"


def _produced_fluids(body) -> set:
    produced = set()
    for statement in body:
        if isinstance(statement, Assign) and isinstance(statement.value, MixExpr):
            target = statement.target
            produced.add(target.base if isinstance(target, Index) else target.ident)
        elif isinstance(statement, SeparateStmt):
            produced.add(statement.effluent)
            produced.add(statement.waste)
        elif isinstance(statement, (ForStmt, WhileStmt)):
            produced |= _produced_fluids(statement.body)
        elif isinstance(statement, IfStmt):
            produced |= _produced_fluids(statement.then_body)
            produced |= _produced_fluids(statement.else_body)
    return produced


def _fluid_used(body, name: str) -> bool:
    def in_expr(expression) -> bool:
        if isinstance(expression, Name):
            return expression.ident == name
        if isinstance(expression, Index):
            return expression.base == name
        if isinstance(expression, (BinOp, Compare)):
            return in_expr(expression.left) or in_expr(expression.right)
        return False

    for statement in body:
        if isinstance(statement, MixExpr):
            if any(in_expr(op) for op in statement.operands):
                return True
        elif isinstance(statement, Assign):
            if isinstance(statement.value, MixExpr) and any(
                in_expr(op) for op in statement.value.operands
            ):
                return True
        elif isinstance(statement, SeparateStmt):
            if name in (statement.matrix, statement.pusher):
                return True
            if in_expr(statement.operand):
                return True
        elif isinstance(statement, (IncubateStmt, ConcentrateStmt, OutputStmt, SenseStmt)):
            if in_expr(statement.operand):
                return True
        elif isinstance(statement, (ForStmt, WhileStmt)):
            if _fluid_used(statement.body, name):
                return True
        elif isinstance(statement, IfStmt):
            if _fluid_used(statement.then_body, name) or _fluid_used(
                statement.else_body, name
            ):
                return True
    return False


def render_rolled(program: Program, symbols: SymbolTable | None = None) -> RolledListing:
    """Generate the rolled listing for a parsed assay."""
    if symbols is None:
        symbols = analyze(program)
    return _RolledGenerator(program, symbols).run()


def render_rolled_source(source: str) -> RolledListing:
    """Parse and render in one step."""
    return render_rolled(parse(source))
