"""Batch compilation: dedupe by fingerprint, fan out over processes.

The ROADMAP's production claim is compiling *fleets* of assays under
traffic, not one at a time.  :func:`compile_many` is that driver:

1. **warm fast path** — each source job is first looked up by its *source
   fingerprint* (raw text + spec + options); a warm hit resolves straight
   to the cached plan without parsing, unrolling, DAG building, planning,
   rounding, or codegen;
2. **fingerprint + dedupe** — remaining jobs are parsed to DAGs and
   content-addressed; identical fingerprints within the batch compile
   exactly once (think a calibration sweep submitting the same dilution
   ladder 50 times);
3. **fan-out** — unique cold fingerprints are compiled in parallel worker
   processes (``max_workers``); workers receive the serialized DAG (no
   re-parsing) and return serialized plan entries, which the parent
   deposits in the shared :class:`~repro.compiler.cache.PlanCache`.
   Fan-out runs on the process-wide *persistent* pool
   (:mod:`repro.compiler.pool`): workers are spawned once with the
   compiler stack pre-imported and a read-mostly cache handle, then
   reused by every subsequent batch.

With ``lint``/``certify`` (or ``materialize_hits=True``), warm hits are
re-materialized through :func:`~repro.compiler.pipeline.compile_dag` so
codegen and the analyses run — the plan stage is still served from cache.
Without them, hits skip everything downstream of the hash lookup, which is
what gives the warm corpus re-run its order-of-magnitude throughput.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any
from collections.abc import Mapping, Sequence

from ..core.dag import AssayDAG
from ..core.errors import VolumeError
from ..core.fingerprint import (
    compile_fingerprint,
    plan_key,
    source_fingerprint,
)
from ..core.hierarchy import VolumeManager
from ..core.serde import SerdeError, dag_from_dict, dag_to_dict
from ..lang.errors import FrontendError
from ..machine.spec import AQUACORE_SPEC, MachineSpec
from .cache import PlanCache, entry_from_plan
from .diagnostics import Severity, severity_counts
from .passes import front_end_dag
from .pipeline import compile_dag
from .pool import default_workers, pool_map, worker_cache

__all__ = [
    "BatchJob",
    "BatchItemResult",
    "BatchReport",
    "compile_many",
    "default_workers",
]


@dataclass
class BatchJob:
    """One unit of batch work: assay source text or a prebuilt DAG."""

    name: str
    source: str | None = None
    dag: AssayDAG | None = None
    aux_fluids: Sequence[str] = ()

    def __post_init__(self) -> None:
        if (self.source is None) == (self.dag is None):
            raise ValueError(
                f"job {self.name!r}: exactly one of source/dag required"
            )


@dataclass
class BatchItemResult:
    """Outcome of one batch job."""

    name: str
    #: "hit" (served from cache), "compiled" (cold compile),
    #: "deduped" (identical fingerprint compiled earlier in this batch),
    #: "failed" (frontend or compile error).
    status: str
    fingerprint: str | None = None
    elapsed_s: float = 0.0
    plan_status: str | None = None
    cacheable: bool = True
    errors: int = 0
    warnings: int = 0
    certified_clean: bool | None = None
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "fingerprint": self.fingerprint,
            "elapsed_ms": round(self.elapsed_s * 1000, 3),
            "plan_status": self.plan_status,
            "cacheable": self.cacheable,
            "errors": self.errors,
            "warnings": self.warnings,
            "certified_clean": self.certified_clean,
            "detail": self.detail,
        }


@dataclass
class BatchReport:
    """Everything one :func:`compile_many` run produced."""

    results: list[BatchItemResult] = field(default_factory=list)
    workers: int = 1
    wall_s: float = 0.0
    cache_stats: dict[str, Any] = field(default_factory=dict)

    def _count(self, status: str) -> int:
        return sum(1 for r in self.results if r.status == status)

    @property
    def hits(self) -> int:
        return self._count("hit")

    @property
    def compiled(self) -> int:
        return self._count("compiled")

    @property
    def deduped(self) -> int:
        return self._count("deduped")

    @property
    def failed(self) -> int:
        return self._count("failed")

    @property
    def total_errors(self) -> int:
        return sum(r.errors for r in self.results) + self.failed

    @property
    def throughput(self) -> float:
        """Completed jobs per second of wall time."""
        done = len(self.results) - self.failed
        return done / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        elapsed = [r.elapsed_s for r in self.results] or [0.0]
        return {
            "jobs": len(self.results),
            "hits": self.hits,
            "compiled": self.compiled,
            "deduped": self.deduped,
            "failed": self.failed,
            "workers": self.workers,
            "wall_s": round(self.wall_s, 6),
            "throughput_per_s": round(self.throughput, 3),
            "latency_ms": {
                "mean": round(sum(elapsed) / len(elapsed) * 1000, 3),
                "max": round(max(elapsed) * 1000, 3),
            },
            "cache": self.cache_stats,
            "results": [r.to_dict() for r in self.results],
        }

    def render(self) -> str:
        lines = []
        width = max((len(r.name) for r in self.results), default=4)
        for result in self.results:
            note = result.detail and f"  ({result.detail})" or ""
            certified = (
                ""
                if result.certified_clean is None
                else ("  certified" if result.certified_clean
                      else "  CERTIFY-FAIL")
            )
            lines.append(
                f"  {result.name:<{width}}  {result.status:<8}  "
                f"{result.elapsed_s * 1000:8.2f} ms  "
                f"{result.plan_status or '-':<12}{certified}{note}"
            )
        lines.append(
            f"{len(self.results)} job(s): {self.hits} hit, "
            f"{self.compiled} compiled, {self.deduped} deduped, "
            f"{self.failed} failed in {self.wall_s:.3f}s "
            f"({self.throughput:.1f} jobs/s, {self.workers} worker(s))"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------
def _severity_counts(diagnostics) -> dict[str, int]:
    """Error/warning tallies via the shared severity table."""
    return severity_counts(diagnostics.items)


def _compile_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """Compile one serialized job; runs in a worker process (or inline).

    The payload carries the already-built DAG in serde form, so workers
    never re-run the frontend.  Returns a JSON-able summary plus the cache
    entry (or None when the plan is uncacheable / runtime-deferred).
    """
    started = time.perf_counter()
    spec: MachineSpec = payload["spec"]
    dag = dag_from_dict(payload["dag"])
    manager = VolumeManager(spec.limits, **payload["options"])
    try:
        compiled = compile_dag(
            dag,
            spec=spec,
            name=payload["name"],
            aux_fluids=tuple(payload["aux_fluids"]),
            manager=manager,
            lint=payload["lint"],
            certify=payload["certify"],
            # inside a persistent-pool worker this is a read-mostly handle
            # over the parent's cache directory (vnorm memo + plan prefix
            # hits); inline it is None, exactly as before.
            cache=worker_cache(),
        )
    except (FrontendError, VolumeError) as error:
        return {
            "ok": False,
            "detail": str(error),
            "elapsed_s": time.perf_counter() - started,
        }
    entry = None
    cacheable = compiled.plan is not None
    if cacheable:
        try:
            entry = entry_from_plan(
                compiled.plan, compiled.assignment, payload["fingerprint"]
            )
        except SerdeError:
            cacheable = False
    counts = _severity_counts(compiled.diagnostics)
    certified_clean: bool | None = None
    if payload["certify"]:
        certified_clean = not any(
            item.code.startswith(("PLAN-", "SCHED-"))
            and item.severity is not Severity.NOTE
            for item in compiled.diagnostics.items
        )
    return {
        "ok": True,
        "entry": entry,
        "cacheable": cacheable,
        "plan_status": (
            compiled.plan.status if compiled.plan is not None else "runtime"
        ),
        "errors": counts["error"],
        "warnings": counts["warning"],
        "certified_clean": certified_clean,
        "elapsed_s": time.perf_counter() - started,
    }


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------
def _frontend(job: BatchJob):
    """Run the pass-manager front end to (dag, aux_fluids)."""
    return front_end_dag(job.source, job.dag, job.aux_fluids)


def _result_from_summary(
    name: str, status: str, fingerprint: str, summary: dict[str, Any]
) -> BatchItemResult:
    return BatchItemResult(
        name=name,
        status=status,
        fingerprint=fingerprint,
        elapsed_s=summary["elapsed_s"],
        plan_status=summary.get("plan_status"),
        cacheable=summary.get("cacheable", False),
        errors=summary.get("errors", 0),
        warnings=summary.get("warnings", 0),
        certified_clean=summary.get("certified_clean"),
    )


def compile_many(
    jobs: Sequence[BatchJob],
    *,
    spec: MachineSpec = AQUACORE_SPEC,
    manager_options: Mapping[str, object] | None = None,
    cache: PlanCache | None = None,
    max_workers: int = 1,
    lint: bool = False,
    certify: bool = False,
    materialize_hits: bool | None = None,
    persistent_pool: bool = True,
) -> BatchReport:
    """Compile a fleet of assays with dedupe, caching, and fan-out.

    Args:
        jobs: the batch; see :class:`BatchJob`.
        spec: machine configuration shared by the whole batch.
        manager_options: keyword arguments for each worker's
            :class:`~repro.core.hierarchy.VolumeManager` (``use_lp``,
            ``allow_cascading``, ...); part of every fingerprint.
        cache: shared plan cache; a private in-memory one is created when
            omitted (so intra-batch dedupe still works).
        max_workers: worker processes for cold compiles; ``1`` compiles
            in-process (still deduped and cached); ``0`` auto-detects.
        lint / certify: run the analyzers on every job (forces hit
            materialization).
        materialize_hits: force warm hits through codegen even without
            the analyzers; default False unless lint/certify.
        persistent_pool: fan out on the process-wide warm worker pool
            (:mod:`repro.compiler.pool`), reused across ``compile_many``
            calls; ``False`` restores the per-batch throwaway executor.

    Returns:
        A :class:`BatchReport`; no exception escapes per-job compilation
        (failures are reported as ``status="failed"`` results).
    """
    if max_workers == 0:
        max_workers = default_workers()
    if max_workers < 1:
        raise ValueError("max_workers must be >= 1 (or 0 for auto)")
    if materialize_hits is None:
        materialize_hits = lint or certify
    cache = cache if cache is not None else PlanCache()
    # Normalize to the full knob set so batch fingerprints equal the
    # pipeline's static fingerprints (a manager built from partial options
    # fills in the same defaults).
    options = VolumeManager(
        spec.limits, **dict(manager_options or {})
    ).options_dict()
    started = time.perf_counter()

    results: list[BatchItemResult | None] = [None] * len(jobs)
    #: fingerprint -> list of (job index, name); first entry compiles.
    pending: "dict[str, list[int]]" = {}
    payloads: dict[str, dict[str, Any]] = {}

    for index, job in enumerate(jobs):
        item_started = time.perf_counter()
        src_fp: str | None = None
        if job.source is not None:
            src_fp = source_fingerprint(job.source, spec, options)
            if not materialize_hits:
                fingerprint = cache.get_source_fingerprint(src_fp)
                if fingerprint is not None:
                    entry = cache.get(plan_key(fingerprint))
                    if entry is not None:
                        results[index] = BatchItemResult(
                            name=job.name,
                            status="hit",
                            fingerprint=fingerprint,
                            elapsed_s=time.perf_counter() - item_started,
                            plan_status=entry["plan"]["status"],
                            cacheable=True,
                        )
                        continue
        try:
            # the front-end passes validate the DAG on the way through
            dag, aux_fluids = _frontend(job)
            fingerprint = compile_fingerprint(
                dag, spec.limits, spec, options
            )
        except (FrontendError, VolumeError) as error:
            results[index] = BatchItemResult(
                name=job.name,
                status="failed",
                elapsed_s=time.perf_counter() - item_started,
                cacheable=False,
                detail=str(error),
            )
            continue
        if src_fp is not None:
            cache.put_source_fingerprint(src_fp, fingerprint)

        if cache.contains(plan_key(fingerprint)):
            results[index] = _serve_hit(
                job, dag, aux_fluids, fingerprint, spec, options, cache,
                lint, certify, materialize_hits, item_started,
            )
            if results[index] is not None:
                continue
        if fingerprint in pending:
            pending[fingerprint].append(index)
            continue
        cache.stats.record_miss(plan_key(fingerprint))
        pending[fingerprint] = [index]
        payloads[fingerprint] = {
            "name": job.name,
            "dag": dag_to_dict(dag),
            "aux_fluids": list(aux_fluids),
            "spec": spec,
            "options": options,
            "lint": lint,
            "certify": certify,
            "fingerprint": fingerprint,
        }

    # ------------------------------------------------------------------
    # fan the unique cold fingerprints out
    # ------------------------------------------------------------------
    order = list(pending)
    if order:
        if max_workers > 1 and len(order) > 1:
            items = [payloads[fp] for fp in order]
            if persistent_pool:
                summaries = pool_map(
                    _compile_payload,
                    items,
                    max_workers=max_workers,
                    cache_dir=cache.directory,
                )
            else:
                with ProcessPoolExecutor(max_workers=max_workers) as pool:
                    summaries = list(pool.map(_compile_payload, items))
        else:
            summaries = [_compile_payload(payloads[fp]) for fp in order]
        for fingerprint, summary in zip(order, summaries):
            indices = pending[fingerprint]
            if not summary["ok"]:
                for position, index in enumerate(indices):
                    results[index] = BatchItemResult(
                        name=jobs[index].name,
                        status="failed",
                        fingerprint=fingerprint,
                        elapsed_s=(
                            summary["elapsed_s"] if position == 0 else 0.0
                        ),
                        cacheable=False,
                        detail=summary["detail"],
                    )
                continue
            if summary["entry"] is not None:
                cache.put(plan_key(fingerprint), summary["entry"])
            for position, index in enumerate(indices):
                status = "compiled" if position == 0 else "deduped"
                result = _result_from_summary(
                    jobs[index].name, status, fingerprint, summary
                )
                if position > 0:
                    result.elapsed_s = 0.0
                results[index] = result

    report = BatchReport(
        results=[r for r in results if r is not None],
        workers=max_workers,
        wall_s=time.perf_counter() - started,
        cache_stats=cache.stats.to_dict(),
    )
    return report


def _serve_hit(
    job: BatchJob,
    dag: AssayDAG,
    aux_fluids,
    fingerprint: str,
    spec: MachineSpec,
    options: dict[str, object],
    cache: PlanCache,
    lint: bool,
    certify: bool,
    materialize: bool,
    item_started: float,
) -> BatchItemResult | None:
    """Serve one warm job; returns None if the entry turned out unusable
    (caller then treats the job as cold)."""
    if not materialize:
        entry = cache.get(plan_key(fingerprint))
        if entry is None:
            return None
        return BatchItemResult(
            name=job.name,
            status="hit",
            fingerprint=fingerprint,
            elapsed_s=time.perf_counter() - item_started,
            plan_status=entry["plan"]["status"],
            cacheable=True,
        )
    manager = VolumeManager(spec.limits, **options, cache=cache)
    try:
        compiled = compile_dag(
            dag,
            spec=spec,
            name=job.name,
            aux_fluids=tuple(aux_fluids),
            manager=manager,
            lint=lint,
            certify=certify,
            cache=cache,
        )
    except (FrontendError, VolumeError) as error:
        return BatchItemResult(
            name=job.name,
            status="failed",
            fingerprint=fingerprint,
            elapsed_s=time.perf_counter() - item_started,
            cacheable=False,
            detail=str(error),
        )
    counts = _severity_counts(compiled.diagnostics)
    certified_clean: bool | None = None
    if certify:
        certified_clean = not any(
            item.code.startswith(("PLAN-", "SCHED-"))
            and item.severity is not Severity.NOTE
            for item in compiled.diagnostics.items
        )
    return BatchItemResult(
        name=job.name,
        status="hit",
        fingerprint=fingerprint,
        elapsed_s=time.perf_counter() - item_started,
        plan_status=(
            compiled.plan.status if compiled.plan is not None else "runtime"
        ),
        cacheable=compiled.plan is not None,
        errors=counts["error"],
        warnings=counts["warning"],
        certified_clean=certified_clean,
    )
