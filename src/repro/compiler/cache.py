"""Content-addressed plan cache: in-memory LRU + optional on-disk store.

Real PLoC workloads recompile near-identical DAGs constantly — calibration
sweeps, EnzymeN families, regeneration re-runs — so compiled
:class:`~repro.core.hierarchy.VolumePlan` results are cached under a
canonical content hash (:mod:`repro.core.fingerprint`) of the normalized
DAG plus hardware limits, machine spec, and pipeline options.

Three key namespaces share one store:

* ``plan-<sha256>`` — a full compiled plan entry: the serialized
  :class:`VolumePlan` (final DAG, attempts, transforms, exact-Fraction
  assignment) plus the least-count-rounded assignment.  Built and decoded
  by :func:`entry_from_plan` / :func:`plan_from_entry`.
* ``vnorms-<sha256>`` — one memoized DAGSolve backward pass, keyed by the
  *structural* fingerprint only; partitioned sub-DAGs and transformed
  slices hit here independently of the enclosing assay.
* ``src-<sha256>`` — raw source text (plus spec/options) mapped to its
  compile fingerprint, letting the batch driver skip the whole frontend
  on warm re-runs.

Entries are JSON dicts end to end, so the memory and disk layers hold the
same canonical bytes; a cache-served plan re-serializes byte-identically
to the entry a fresh compile would have produced (enforced by the
property test in ``tests/properties/test_cache_roundtrip.py``).  Disk
writes are atomic (temp file + ``os.replace``), and unreadable or corrupt
files degrade to misses.

Plans whose DAGs carry non-serializable metadata (e.g. guard AST nodes on
dynamically-conditioned assays) are reported *uncacheable* rather than
stored lossily.

Service extensions (``repro serve``):

* **tenant namespaces** — :meth:`PlanCache.for_tenant` returns a
  :class:`TenantCache` view that prefixes every key with ``<tenant>~``
  while sharing the base cache's LRU, disk directory, lock, and global
  stats.  Identical fingerprints under different tenants never share
  entries; a view additionally keeps its own per-tenant
  :class:`CacheStats`.
* **TTL eviction** — a cache built with ``ttl_seconds`` lazily expires
  entries on lookup (memory stamps in-process, file mtime on disk) and
  counts them under ``stats.expired``; the size-bounded LRU eviction is
  unchanged.  TTL lives *outside* the entry, so entry bytes stay
  canonical and an expired fingerprint recompiles to identical bytes.
* **one lock** — all public methods (and the stats they mutate) are
  serialized under a single re-entrant lock, so the service path can
  drive one cache from many threads; disk writes were already atomic.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import threading
import time
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from ..core.dagsolve import VnormResult, VolumeAssignment
from ..core.fingerprint import plan_key, source_key, vnorm_key
from ..core.hierarchy import VolumePlan
from ..core.serde import (
    SERDE_VERSION,
    SerdeError,
    assignment_from_dict,
    assignment_to_dict,
    dumps_canonical,
    plan_from_dict,
    plan_to_dict,
    vnorms_from_dict,
    vnorms_to_dict,
)

__all__ = [
    "CacheStats",
    "PlanCache",
    "TenantCache",
    "entry_from_plan",
    "plan_from_entry",
]

#: tenants are path-safe slugs: they become key prefixes and filenames.
_TENANT_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9_.-]{0,63}\Z")


@dataclass
class CacheStats:
    """Hit/miss counters, split by where the entry was found."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    disk_hits: int = 0
    uncacheable: int = 0
    expired: int = 0
    #: per-namespace hit/miss counts, e.g. {"plan": [3, 1], "vnorms": ...}
    by_namespace: dict[str, list] = field(default_factory=dict)

    def _bucket(self, key: str) -> list:
        # strip an optional "<tenant>~" qualifier before the namespace
        namespace = key.rsplit("~", 1)[-1].split("-", 1)[0]
        return self.by_namespace.setdefault(namespace, [0, 0])

    def record_hit(self, key: str, *, from_disk: bool = False) -> None:
        self.hits += 1
        if from_disk:
            self.disk_hits += 1
        self._bucket(key)[0] += 1

    def record_miss(self, key: str) -> None:
        self.misses += 1
        self._bucket(key)[1] += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "uncacheable": self.uncacheable,
            "expired": self.expired,
            "hit_rate": round(self.hit_rate, 4),
            "by_namespace": {
                ns: {"hits": counts[0], "misses": counts[1]}
                for ns, counts in sorted(self.by_namespace.items())
            },
        }


class PlanCache:
    """LRU-bounded in-memory cache with an optional on-disk second level.

    Args:
        max_entries: in-memory LRU bound (entries, across all namespaces).
        directory: optional directory for the persistent level; created on
            first write.  One ``<key>.json`` file per entry, written
            atomically.  ``None`` keeps the cache purely in-memory.
        ttl_seconds: optional time-to-live; entries older than this are
            expired lazily on lookup (memory and disk levels both).
            ``None`` disables TTL eviction.
        clock: wall-clock source, injectable for tests.

    Thread safety: every public method takes the cache's re-entrant
    lock, so one instance can back the service job runner from many
    threads.  :class:`TenantCache` views share the same lock.
    """

    def __init__(
        self,
        max_entries: int = 512,
        directory: str | None = None,
        *,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None)")
        self.max_entries = max_entries
        self.directory = directory
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._memory: "OrderedDict[str, dict[str, Any]]" = OrderedDict()
        #: per-key write stamps for TTL expiry of the memory level.
        self._stamps: dict[str, float] = {}
        #: live VnormResult objects alongside their serde dicts, so
        #: in-process memo hits skip Fraction re-parsing.  Treated as
        #: read-only by every consumer (dispense never mutates vnorms).
        self._vnorm_objects: dict[str, VnormResult] = {}

    # ------------------------------------------------------------------
    # tenancy / stats hooks
    # ------------------------------------------------------------------
    def _qualify(self, key: str) -> str:
        """Map a caller key to its stored key (tenant views add a prefix)."""
        return key

    def for_tenant(self, tenant: str) -> "TenantCache":
        """A namespaced view over this cache for one tenant."""
        return TenantCache(self, tenant)

    def _note_hit(self, key: str, *, from_disk: bool = False) -> None:
        self.stats.record_hit(key, from_disk=from_disk)

    def _note_miss(self, key: str) -> None:
        self.stats.record_miss(key)

    def _note_put(self) -> None:
        self.stats.puts += 1

    def _note_eviction(self) -> None:
        self.stats.evictions += 1

    def _note_expired(self) -> None:
        self.stats.expired += 1

    # ------------------------------------------------------------------
    # generic keyed store
    # ------------------------------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        return self._lookup(self._qualify(key))

    def put(self, key: str, entry: dict[str, Any]) -> None:
        self._store(self._qualify(key), entry)

    def contains(self, key: str) -> bool:
        """Presence probe: no LRU-order or hit/miss effects.

        TTL-stale entries are lazily dropped here (counted under
        ``expired``), so a probe never claims an entry a subsequent
        ``get`` would refuse to serve.
        """
        qkey = self._qualify(key)
        with self._lock:
            self._expire(qkey)
            if qkey in self._memory:
                return True
            path = self._disk_path(qkey)
            return path is not None and not self._disk_stale(path)

    def clear_memory(self) -> None:
        """Drop the in-memory level (the disk level survives)."""
        with self._lock:
            self._memory.clear()
            self._stamps.clear()
            self._vnorm_objects.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    # ------------------------------------------------------------------
    # internals (operate on already-qualified keys)
    # ------------------------------------------------------------------
    def _lookup(self, qkey: str) -> dict[str, Any] | None:
        with self._lock:
            self._expire(qkey)
            entry = self._memory.get(qkey)
            if entry is not None:
                self._memory.move_to_end(qkey)
                self._note_hit(qkey)
                return entry
            entry = self._disk_read(qkey)
            if entry is not None:
                self._remember(qkey, entry)
                self._note_hit(qkey, from_disk=True)
                return entry
            self._note_miss(qkey)
            return None

    def _store(self, qkey: str, entry: dict[str, Any]) -> None:
        with self._lock:
            self._remember(qkey, entry)
            self._disk_write(qkey, entry)
            self._note_put()

    def _memory_stale(self, qkey: str) -> bool:
        if self.ttl_seconds is None:
            return False
        stamp = self._stamps.get(qkey)
        return (
            stamp is not None
            and self._clock() - stamp > self.ttl_seconds
        )

    def _disk_stale(self, path: str) -> bool:
        """True when the file is missing or past its TTL (then unlinked)."""
        try:
            mtime = os.path.getmtime(path)
        except OSError:
            return True
        if (
            self.ttl_seconds is not None
            and self._clock() - mtime > self.ttl_seconds
        ):
            try:
                os.unlink(path)
            except OSError:
                pass
            return True
        return False

    def _expire(self, qkey: str) -> None:
        """Lazily drop a TTL-stale entry (memory stamp + disk mtime)."""
        if self.ttl_seconds is None:
            return
        if self._memory_stale(qkey):
            self._memory.pop(qkey, None)
            self._stamps.pop(qkey, None)
            self._vnorm_objects.pop(qkey, None)
            path = self._disk_path(qkey)
            if path is not None:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            self._note_expired()

    def _remember(self, qkey: str, entry: dict[str, Any]) -> None:
        self._memory[qkey] = entry
        self._memory.move_to_end(qkey)
        self._stamps[qkey] = self._clock()
        while len(self._memory) > self.max_entries:
            evicted, __ = self._memory.popitem(last=False)
            self._vnorm_objects.pop(evicted, None)
            self._stamps.pop(evicted, None)
            self._note_eviction()

    # ------------------------------------------------------------------
    # disk level
    # ------------------------------------------------------------------
    def _disk_path(self, key: str) -> str | None:
        if self.directory is None:
            return None
        return os.path.join(self.directory, f"{key}.json")

    def _disk_read(self, key: str) -> dict[str, Any] | None:
        path = self._disk_path(key)
        if path is None:
            return None
        if self.ttl_seconds is not None:
            try:
                mtime = os.path.getmtime(path)
            except OSError:
                return None
            if self._clock() - mtime > self.ttl_seconds:
                try:
                    os.unlink(path)
                except OSError:
                    pass
                self._note_expired()
                return None
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict):
            return None
        return entry

    def _disk_write(self, key: str, entry: dict[str, Any]) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, prefix=f".{key}.", suffix=".tmp"
            )
        except OSError:
            return  # disk level unavailable; the memory level still works
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(dumps_canonical(entry))
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # plan namespace
    # ------------------------------------------------------------------
    def get_plan(
        self, fingerprint: str
    ) -> tuple[VolumePlan, VolumeAssignment | None] | None:
        """Decode a cached plan; the rounded assignment shares its DAG."""
        entry = self.get(plan_key(fingerprint))
        if entry is None:
            return None
        try:
            return plan_from_entry(entry)
        except (SerdeError, KeyError, ValueError):
            return None

    def put_plan(
        self,
        fingerprint: str,
        plan: VolumePlan,
        rounded: VolumeAssignment | None,
    ) -> bool:
        """Store a compiled plan; returns False when it is uncacheable."""
        try:
            entry = entry_from_plan(plan, rounded, fingerprint)
        except SerdeError:
            with self._lock:
                self.stats.uncacheable += 1
            return False
        self.put(plan_key(fingerprint), entry)
        return True

    # ------------------------------------------------------------------
    # vnorm memo namespace
    # ------------------------------------------------------------------
    def memo_vnorms(self, dag, output_targets=None) -> VnormResult:
        """DAGSolve backward pass, memoized by structural fingerprint.

        Misses are computed by the integer-scaled exact solver
        (:mod:`repro.core.intsolve`), whose Fractions are bit-identical
        to the reference pass — the serde entry is unaffected.
        """
        from ..core.intsolve import exact_vnorms

        qkey = self._qualify(vnorm_key(dag, output_targets))
        with self._lock:
            self._expire(qkey)
            cached = self._vnorm_objects.get(qkey)
            if cached is not None:
                if qkey in self._memory:
                    self._memory.move_to_end(qkey)
                self._note_hit(qkey)
                return cached
            entry = self._lookup(qkey)
            if entry is not None:
                result = vnorms_from_dict(entry)
                self._vnorm_objects[qkey] = result
                return result
        # compute outside the lock: the solve can be slow and needs no
        # shared state (a racing duplicate just overwrites identically)
        result = exact_vnorms(dag, output_targets)
        with self._lock:
            self._store(qkey, vnorms_to_dict(result))
            self._vnorm_objects[qkey] = result
        return result

    # ------------------------------------------------------------------
    # source fast-key namespace
    # ------------------------------------------------------------------
    def get_source_fingerprint(self, src_fingerprint: str) -> str | None:
        entry = self.get(source_key(src_fingerprint))
        if entry is None:
            return None
        fingerprint = entry.get("fingerprint")
        return fingerprint if isinstance(fingerprint, str) else None

    def put_source_fingerprint(
        self, src_fingerprint: str, compile_fp: str
    ) -> None:
        self.put(
            source_key(src_fingerprint),
            {"version": SERDE_VERSION, "fingerprint": compile_fp},
        )


# ---------------------------------------------------------------------------
# tenant views
# ---------------------------------------------------------------------------
class TenantCache(PlanCache):
    """A per-tenant namespace over a shared :class:`PlanCache`.

    The view shares the base cache's storage (LRU map, vnorm objects,
    disk directory), policy (size bound, TTL), lock, and global stats
    by reference — only key *qualification* differs: every key is
    stored as ``<tenant>~<key>``, so identical fingerprints under
    different tenants never resolve to the same entry, in memory or on
    disk.  Hits/misses observed through the view are additionally
    recorded in :attr:`tenant_stats` (evictions count shared-LRU
    evictions this view triggered, whoever owned the evicted entry).
    """

    def __init__(self, base: PlanCache, tenant: str) -> None:
        if isinstance(base, TenantCache):
            raise ValueError("tenant views do not nest; use the base cache")
        if not _TENANT_RE.match(tenant):
            raise ValueError(
                f"invalid tenant {tenant!r}: expected a slug of "
                "[A-Za-z0-9_.-], max 64 chars, not starting with . or -"
            )
        # deliberately no super().__init__: every storage structure is
        # shared with the base cache by reference.
        self._base = base
        self.tenant = tenant
        self.tenant_stats = CacheStats()
        self.max_entries = base.max_entries
        self.directory = base.directory
        self.ttl_seconds = base.ttl_seconds
        self._clock = base._clock
        self.stats = base.stats
        self._lock = base._lock
        self._memory = base._memory
        self._stamps = base._stamps
        self._vnorm_objects = base._vnorm_objects

    def _qualify(self, key: str) -> str:
        return f"{self.tenant}~{key}"

    def for_tenant(self, tenant: str) -> "TenantCache":
        return TenantCache(self._base, tenant)

    def _note_hit(self, key: str, *, from_disk: bool = False) -> None:
        super()._note_hit(key, from_disk=from_disk)
        self.tenant_stats.record_hit(key, from_disk=from_disk)

    def _note_miss(self, key: str) -> None:
        super()._note_miss(key)
        self.tenant_stats.record_miss(key)

    def _note_put(self) -> None:
        super()._note_put()
        self.tenant_stats.puts += 1

    def _note_eviction(self) -> None:
        super()._note_eviction()
        self.tenant_stats.evictions += 1

    def _note_expired(self) -> None:
        super()._note_expired()
        self.tenant_stats.expired += 1


# ---------------------------------------------------------------------------
# entry codec
# ---------------------------------------------------------------------------
def entry_from_plan(
    plan: VolumePlan,
    rounded: VolumeAssignment | None,
    fingerprint: str | None = None,
) -> dict[str, Any]:
    """The canonical cache entry for one compiled plan.

    Raises :class:`~repro.core.serde.SerdeError` when the plan cannot be
    serialized losslessly (callers should then skip caching).
    """
    entry: dict[str, Any] = {
        "version": SERDE_VERSION,
        "plan": plan_to_dict(plan),
        "rounded": (
            assignment_to_dict(rounded) if rounded is not None else None
        ),
    }
    if fingerprint is not None:
        entry["fingerprint"] = fingerprint
    return entry


def plan_from_entry(
    entry: dict[str, Any],
) -> tuple[VolumePlan, VolumeAssignment | None]:
    """Decode an entry; plan and rounded assignment share one DAG object."""
    if entry.get("version") != SERDE_VERSION:
        raise SerdeError(
            f"unsupported cache entry version {entry.get('version')!r}"
        )
    plan = plan_from_dict(entry["plan"])
    rounded = None
    if entry.get("rounded") is not None:
        rounded = assignment_from_dict(entry["rounded"], plan.dag)
    return plan, rounded
