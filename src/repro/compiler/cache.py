"""Content-addressed plan cache: in-memory LRU + optional on-disk store.

Real PLoC workloads recompile near-identical DAGs constantly — calibration
sweeps, EnzymeN families, regeneration re-runs — so compiled
:class:`~repro.core.hierarchy.VolumePlan` results are cached under a
canonical content hash (:mod:`repro.core.fingerprint`) of the normalized
DAG plus hardware limits, machine spec, and pipeline options.

Three key namespaces share one store:

* ``plan-<sha256>`` — a full compiled plan entry: the serialized
  :class:`VolumePlan` (final DAG, attempts, transforms, exact-Fraction
  assignment) plus the least-count-rounded assignment.  Built and decoded
  by :func:`entry_from_plan` / :func:`plan_from_entry`.
* ``vnorms-<sha256>`` — one memoized DAGSolve backward pass, keyed by the
  *structural* fingerprint only; partitioned sub-DAGs and transformed
  slices hit here independently of the enclosing assay.
* ``src-<sha256>`` — raw source text (plus spec/options) mapped to its
  compile fingerprint, letting the batch driver skip the whole frontend
  on warm re-runs.

Entries are JSON dicts end to end, so the memory and disk layers hold the
same canonical bytes; a cache-served plan re-serializes byte-identically
to the entry a fresh compile would have produced (enforced by the
property test in ``tests/properties/test_cache_roundtrip.py``).  Disk
writes are atomic (temp file + ``os.replace``), and unreadable or corrupt
files degrade to misses.

Plans whose DAGs carry non-serializable metadata (e.g. guard AST nodes on
dynamically-conditioned assays) are reported *uncacheable* rather than
stored lossily.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from ..core.dagsolve import VnormResult, VolumeAssignment
from ..core.fingerprint import plan_key, source_key, vnorm_key
from ..core.hierarchy import VolumePlan
from ..core.serde import (
    SERDE_VERSION,
    SerdeError,
    assignment_from_dict,
    assignment_to_dict,
    dumps_canonical,
    plan_from_dict,
    plan_to_dict,
    vnorms_from_dict,
    vnorms_to_dict,
)

__all__ = [
    "CacheStats",
    "PlanCache",
    "entry_from_plan",
    "plan_from_entry",
]


@dataclass
class CacheStats:
    """Hit/miss counters, split by where the entry was found."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    disk_hits: int = 0
    uncacheable: int = 0
    #: per-namespace hit/miss counts, e.g. {"plan": [3, 1], "vnorms": ...}
    by_namespace: dict[str, list] = field(default_factory=dict)

    def _bucket(self, key: str) -> list:
        namespace = key.split("-", 1)[0]
        return self.by_namespace.setdefault(namespace, [0, 0])

    def record_hit(self, key: str, *, from_disk: bool = False) -> None:
        self.hits += 1
        if from_disk:
            self.disk_hits += 1
        self._bucket(key)[0] += 1

    def record_miss(self, key: str) -> None:
        self.misses += 1
        self._bucket(key)[1] += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "uncacheable": self.uncacheable,
            "hit_rate": round(self.hit_rate, 4),
            "by_namespace": {
                ns: {"hits": counts[0], "misses": counts[1]}
                for ns, counts in sorted(self.by_namespace.items())
            },
        }


class PlanCache:
    """LRU-bounded in-memory cache with an optional on-disk second level.

    Args:
        max_entries: in-memory LRU bound (entries, across all namespaces).
        directory: optional directory for the persistent level; created on
            first write.  One ``<key>.json`` file per entry, written
            atomically.  ``None`` keeps the cache purely in-memory.
    """

    def __init__(
        self,
        max_entries: int = 512,
        directory: str | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.directory = directory
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, dict[str, Any]]" = OrderedDict()
        #: live VnormResult objects alongside their serde dicts, so
        #: in-process memo hits skip Fraction re-parsing.  Treated as
        #: read-only by every consumer (dispense never mutates vnorms).
        self._vnorm_objects: dict[str, VnormResult] = {}

    # ------------------------------------------------------------------
    # generic keyed store
    # ------------------------------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)
            self.stats.record_hit(key)
            return entry
        entry = self._disk_read(key)
        if entry is not None:
            self._remember(key, entry)
            self.stats.record_hit(key, from_disk=True)
            return entry
        self.stats.record_miss(key)
        return None

    def put(self, key: str, entry: dict[str, Any]) -> None:
        self._remember(key, entry)
        self._disk_write(key, entry)
        self.stats.puts += 1

    def contains(self, key: str) -> bool:
        """Presence probe that does not touch LRU order or stats."""
        if key in self._memory:
            return True
        path = self._disk_path(key)
        return path is not None and os.path.exists(path)

    def clear_memory(self) -> None:
        """Drop the in-memory level (the disk level survives)."""
        self._memory.clear()
        self._vnorm_objects.clear()

    def __len__(self) -> int:
        return len(self._memory)

    def _remember(self, key: str, entry: dict[str, Any]) -> None:
        self._memory[key] = entry
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            evicted, __ = self._memory.popitem(last=False)
            self._vnorm_objects.pop(evicted, None)
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    # disk level
    # ------------------------------------------------------------------
    def _disk_path(self, key: str) -> str | None:
        if self.directory is None:
            return None
        return os.path.join(self.directory, f"{key}.json")

    def _disk_read(self, key: str) -> dict[str, Any] | None:
        path = self._disk_path(key)
        if path is None:
            return None
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict):
            return None
        return entry

    def _disk_write(self, key: str, entry: dict[str, Any]) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, prefix=f".{key}.", suffix=".tmp"
            )
        except OSError:
            return  # disk level unavailable; the memory level still works
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(dumps_canonical(entry))
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # plan namespace
    # ------------------------------------------------------------------
    def get_plan(
        self, fingerprint: str
    ) -> tuple[VolumePlan, VolumeAssignment | None] | None:
        """Decode a cached plan; the rounded assignment shares its DAG."""
        entry = self.get(plan_key(fingerprint))
        if entry is None:
            return None
        try:
            return plan_from_entry(entry)
        except (SerdeError, KeyError, ValueError):
            return None

    def put_plan(
        self,
        fingerprint: str,
        plan: VolumePlan,
        rounded: VolumeAssignment | None,
    ) -> bool:
        """Store a compiled plan; returns False when it is uncacheable."""
        try:
            entry = entry_from_plan(plan, rounded, fingerprint)
        except SerdeError:
            self.stats.uncacheable += 1
            return False
        self.put(plan_key(fingerprint), entry)
        return True

    # ------------------------------------------------------------------
    # vnorm memo namespace
    # ------------------------------------------------------------------
    def memo_vnorms(self, dag, output_targets=None) -> VnormResult:
        """DAGSolve backward pass, memoized by structural fingerprint.

        Misses are computed by the integer-scaled exact solver
        (:mod:`repro.core.intsolve`), whose Fractions are bit-identical
        to the reference pass — the serde entry is unaffected.
        """
        from ..core.intsolve import exact_vnorms

        key = vnorm_key(dag, output_targets)
        cached = self._vnorm_objects.get(key)
        if cached is not None:
            if key in self._memory:
                self._memory.move_to_end(key)
            self.stats.record_hit(key)
            return cached
        entry = self.get(key)
        if entry is not None:
            result = vnorms_from_dict(entry)
            self._vnorm_objects[key] = result
            return result
        result = exact_vnorms(dag, output_targets)
        self.put(key, vnorms_to_dict(result))
        self._vnorm_objects[key] = result
        return result

    # ------------------------------------------------------------------
    # source fast-key namespace
    # ------------------------------------------------------------------
    def get_source_fingerprint(self, src_fingerprint: str) -> str | None:
        entry = self.get(source_key(src_fingerprint))
        if entry is None:
            return None
        fingerprint = entry.get("fingerprint")
        return fingerprint if isinstance(fingerprint, str) else None

    def put_source_fingerprint(
        self, src_fingerprint: str, compile_fp: str
    ) -> None:
        self.put(
            source_key(src_fingerprint),
            {"version": SERDE_VERSION, "fingerprint": compile_fp},
        )


# ---------------------------------------------------------------------------
# entry codec
# ---------------------------------------------------------------------------
def entry_from_plan(
    plan: VolumePlan,
    rounded: VolumeAssignment | None,
    fingerprint: str | None = None,
) -> dict[str, Any]:
    """The canonical cache entry for one compiled plan.

    Raises :class:`~repro.core.serde.SerdeError` when the plan cannot be
    serialized losslessly (callers should then skip caching).
    """
    entry: dict[str, Any] = {
        "version": SERDE_VERSION,
        "plan": plan_to_dict(plan),
        "rounded": (
            assignment_to_dict(rounded) if rounded is not None else None
        ),
    }
    if fingerprint is not None:
        entry["fingerprint"] = fingerprint
    return entry


def plan_from_entry(
    entry: dict[str, Any],
) -> tuple[VolumePlan, VolumeAssignment | None]:
    """Decode an entry; plan and rounded assignment share one DAG object."""
    if entry.get("version") != SERDE_VERSION:
        raise SerdeError(
            f"unsupported cache entry version {entry.get('version')!r}"
        )
    plan = plan_from_dict(entry["plan"])
    rounded = None
    if entry.get("rounded") is not None:
        rounded = assignment_from_dict(entry["rounded"], plan.dag)
    return plan, rounded
