"""Compiler driver: assay source -> AIS program + volume plan.

* :mod:`repro.compiler.codegen` — DAG -> AIS instruction selection,
  storage-less operand placement, matrix/pusher loading;
* :mod:`repro.compiler.pipeline` — the end-to-end driver
  (:func:`compile_assay`) producing a :class:`CompiledAssay`;
* :mod:`repro.compiler.diagnostics` — structured warnings (underflow risk,
  regeneration fallback, transforms applied).
"""

from .codegen import CodegenError, execution_order, generate
from .rolled import RolledListing, render_rolled, render_rolled_source
from .diagnostics import Diagnostic, DiagnosticSink
from .pipeline import CompiledAssay, compile_assay, compile_dag

__all__ = [
    "compile_assay",
    "compile_dag",
    "CompiledAssay",
    "generate",
    "render_rolled",
    "render_rolled_source",
    "RolledListing",
    "execution_order",
    "CodegenError",
    "Diagnostic",
    "DiagnosticSink",
]
