"""Compiler driver: assay source -> AIS program + volume plan.

* :mod:`repro.compiler.codegen` — DAG -> AIS instruction selection,
  storage-less operand placement, matrix/pusher loading;
* :mod:`repro.compiler.pipeline` — the end-to-end driver
  (:func:`compile_assay`) producing a :class:`CompiledAssay`;
* :mod:`repro.compiler.diagnostics` — structured warnings (underflow risk,
  regeneration fallback, transforms applied);
* :mod:`repro.compiler.cache` — content-addressed plan cache (in-memory
  LRU + optional on-disk store);
* :mod:`repro.compiler.batch` — :func:`compile_many` batch driver with
  fingerprint dedupe and process fan-out.
"""

from .batch import BatchItemResult, BatchJob, BatchReport, compile_many
from .cache import CacheStats, PlanCache
from .codegen import CodegenError, execution_order, generate
from .rolled import RolledListing, render_rolled, render_rolled_source
from .diagnostics import Diagnostic, DiagnosticSink
from .pipeline import (
    CompiledAssay,
    compile_assay,
    compile_dag,
    static_fingerprint,
)

__all__ = [
    "compile_assay",
    "compile_dag",
    "compile_many",
    "static_fingerprint",
    "CompiledAssay",
    "BatchJob",
    "BatchItemResult",
    "BatchReport",
    "PlanCache",
    "CacheStats",
    "generate",
    "render_rolled",
    "render_rolled_source",
    "RolledListing",
    "execution_order",
    "CodegenError",
    "Diagnostic",
    "DiagnosticSink",
]
