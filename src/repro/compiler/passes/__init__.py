"""Instrumented pass-manager: the one compilation driver.

The pipeline of paper Figure 6 — parse, unroll, lower, partition,
DAGSolve, LP fallback, cascade/replicate transforms, rounding, codegen,
plus the optional analyzers — is expressed as typed passes run by a
:class:`PassManager` over a shared :class:`CompileContext`.  Every pass
run emits a structured :class:`PassEvent` (timing, fingerprints, cache
interaction, diagnostics delta) to a pluggable :class:`PassEventBus`,
surfaced as ``repro compile --time-passes`` / ``--explain``.

Entry points:

* :func:`run_compile` — full compile; behind ``compile_assay`` /
  ``compile_dag`` / ``compile_many`` and every CLI command;
* :func:`front_end` — source -> validated DAG only;
* :func:`run_hierarchy` — just the volume-management loop (behind
  :meth:`repro.core.hierarchy.VolumeManager.plan`).

See ``docs/ARCHITECTURE.md`` for the pass graph and a guide to writing
new passes.
"""

from .context import CompileContext, HierarchyState
from .events import (
    PASS_EVENT_SCHEMA_VERSION,
    PassEvent,
    PassEventBus,
    events_payload,
    plan_payload,
    render_timing_table,
)
from .manager import OK, Pass, PassManager, PassOutcome, run_instrumented
from .stages import (
    Assemble,
    BuildDAG,
    CascadeTransform,
    CertifyPass,
    Codegen,
    DAGSolvePass,
    HierarchyLoop,
    LintPass,
    LPFallback,
    ObjectiveSelect,
    ParseSource,
    Partition,
    PlanDiagnostics,
    RaceCheckPass,
    ReplicateTransform,
    RestorePlan,
    Round,
    SourceLintPass,
    Unroll,
    default_passes,
    front_end,
    front_end_dag,
    frontend_passes,
    run_compile,
    run_hierarchy,
)

__all__ = [
    "CompileContext",
    "HierarchyState",
    "PASS_EVENT_SCHEMA_VERSION",
    "PassEvent",
    "PassEventBus",
    "events_payload",
    "plan_payload",
    "render_timing_table",
    "OK",
    "Pass",
    "PassManager",
    "PassOutcome",
    "run_instrumented",
    "ParseSource",
    "SourceLintPass",
    "Unroll",
    "BuildDAG",
    "Partition",
    "ObjectiveSelect",
    "RestorePlan",
    "DAGSolvePass",
    "LPFallback",
    "CascadeTransform",
    "ReplicateTransform",
    "HierarchyLoop",
    "Round",
    "PlanDiagnostics",
    "Codegen",
    "LintPass",
    "Assemble",
    "CertifyPass",
    "RaceCheckPass",
    "default_passes",
    "frontend_passes",
    "front_end",
    "front_end_dag",
    "run_compile",
    "run_hierarchy",
]
