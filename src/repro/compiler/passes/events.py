"""Structured pass events: what the compiler did, stage by stage.

Every pass the :class:`~repro.compiler.passes.manager.PassManager` runs
emits one :class:`PassEvent` — name, round (for hierarchy stages), wall
and CPU time, input/output content fingerprints, cache interaction, and
how many diagnostics the pass added — to a pluggable :class:`PassEventBus`.

The bus mirrors the run-time trace machinery
(:class:`repro.machine.trace.ExecutionTrace`): a flat, append-only record
of structured events that round-trips through ``to_dict`` and renders as
a human table.  Subscribers (``bus.subscribe``) receive each event as it
is emitted, so external tooling — a tracer, a progress bar, a metrics
exporter — can tap the compile without touching the passes themselves.

``repro compile --time-passes`` prints :func:`render_timing_table`;
``--stats-json`` writes :func:`events_payload`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any
from collections.abc import Callable

__all__ = [
    "PASS_EVENT_SCHEMA_VERSION",
    "PassEvent",
    "PassEventBus",
    "NULL_BUS",
    "events_payload",
    "plan_payload",
    "profile_payload",
    "render_profile_table",
    "render_timing_table",
]

#: bumped only on breaking changes to the event payload shape.
PASS_EVENT_SCHEMA_VERSION = 1

#: event statuses: the pass ran ("ok"/"failed"), was configured out or had
#: nothing to do ("skipped"), or was satisfied wholesale by a cache entry
#: ("cached").
STATUSES = ("ok", "failed", "skipped", "cached")


@dataclass(frozen=True)
class PassEvent:
    """One pass execution (or deliberate non-execution)."""

    name: str
    status: str                       # see STATUSES
    #: hierarchy round for the Figure 6 loop stages, None elsewhere.
    round: int | None = None
    wall_s: float = 0.0
    cpu_s: float = 0.0
    #: content fingerprint of the pass's main input / output artifact
    #: (computed only when the bus asks for fingerprints — they cost a
    #: canonical serialization each).
    fingerprint_in: str | None = None
    fingerprint_out: str | None = None
    #: "hit" / "miss" / "store" when the pass talked to the plan cache.
    cache: str | None = None
    #: diagnostics the pass added to the sink while running.
    diagnostics: int = 0
    detail: str = ""
    #: top cProfile hotspots when the compile ran with profiling: a tuple
    #: of ``{"func", "calls", "tottime_ms", "cumtime_ms"}`` dicts ordered
    #: by cumulative time (empty without ``--profile``).
    profile: tuple = ()

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "name": self.name,
            "status": self.status,
            "wall_ms": round(self.wall_s * 1000, 4),
            "cpu_ms": round(self.cpu_s * 1000, 4),
            "diagnostics": self.diagnostics,
        }
        if self.round is not None:
            payload["round"] = self.round
        if self.fingerprint_in is not None:
            payload["fingerprint_in"] = self.fingerprint_in
        if self.fingerprint_out is not None:
            payload["fingerprint_out"] = self.fingerprint_out
        if self.cache is not None:
            payload["cache"] = self.cache
        if self.detail:
            payload["detail"] = self.detail
        if self.profile:
            payload["profile"] = [dict(entry) for entry in self.profile]
        return payload

    def __str__(self) -> str:
        where = f"[{self.round}] " if self.round is not None else ""
        extra = f" ({self.cache})" if self.cache else ""
        return (
            f"{where}{self.name}: {self.status} "
            f"{self.wall_s * 1000:.2f} ms{extra}"
        )


class PassEventBus:
    """Append-only event record plus fan-out to live subscribers.

    Args:
        fingerprints: ask passes to compute input/output content
            fingerprints for their events.  Off by default — fingerprints
            cost a canonical serialization per pass, which plain compiles
            should not pay.
    """

    def __init__(self, *, fingerprints: bool = False) -> None:
        self.events: list[PassEvent] = []
        self.fingerprints = fingerprints
        self._subscribers: list[Callable[[PassEvent], None]] = []

    def subscribe(self, callback: Callable[[PassEvent], None]) -> None:
        self._subscribers.append(callback)

    def emit(self, event: PassEvent) -> PassEvent:
        self.events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    # ------------------------------------------------------------------
    def ran(self) -> list[PassEvent]:
        """Events for passes that actually executed."""
        return [e for e in self.events if e.status in ("ok", "failed")]

    def total_wall_s(self) -> float:
        return sum(e.wall_s for e in self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


class _NullBus(PassEventBus):
    """A bus that drops everything: the zero-overhead default."""

    def emit(self, event: PassEvent) -> PassEvent:  # noqa: D102
        return event


#: shared do-nothing bus for un-instrumented compiles.
NULL_BUS = _NullBus()


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------
def events_payload(bus: PassEventBus, **extra: Any) -> dict[str, Any]:
    """The stable JSON shape of one instrumented compile
    (``repro compile --time-passes --stats-json``)."""
    payload: dict[str, Any] = {
        "version": PASS_EVENT_SCHEMA_VERSION,
        "tool": "compile",
        "passes": [event.to_dict() for event in bus.events],
        "total_wall_ms": round(bus.total_wall_s() * 1000, 4),
    }
    payload.update(extra)
    return payload


def plan_payload(plan) -> dict[str, Any]:
    """The ``--stats-json`` view of a volume plan's attempt history.

    Derived from the :class:`~repro.core.hierarchy.VolumePlan` itself, not
    from pass events, so a warm cache hit (where the hierarchy passes
    never ran) reports the same winning-attempt metadata as the cold
    compile that populated the cache entry.
    """
    return {
        "status": plan.status,
        "attempts": [
            {
                "stage": attempt.stage,
                "round": attempt.round,
                "succeeded": attempt.succeeded,
                "detail": attempt.detail,
                "objective": attempt.objective,
            }
            for attempt in plan.attempts
        ],
        "transforms": [str(report) for report in plan.transforms],
    }


def profile_payload(bus: PassEventBus) -> list[dict[str, Any]]:
    """Per-pass hotspot lists for ``--stats-json``'s ``"profile"`` key."""
    payload = []
    for event in bus.events:
        if not event.profile:
            continue
        entry: dict[str, Any] = {
            "pass": event.name,
            "hotspots": [dict(h) for h in event.profile],
        }
        if event.round is not None:
            entry["round"] = event.round
        payload.append(entry)
    return payload


def render_profile_table(bus: PassEventBus) -> str:
    """The ``--profile`` human report: top hotspots under each pass."""
    lines = ["per-pass cProfile hotspots (cumulative):"]
    any_rows = False
    for event in bus.events:
        if not event.profile:
            continue
        any_rows = True
        name = event.name if event.round is None else (
            f"{event.name} (round {event.round})"
        )
        lines.append(f"  {name}  [{event.wall_s * 1000:.2f} ms]")
        for spot in event.profile:
            lines.append(
                f"    {spot['cumtime_ms']:9.3f} ms cum  "
                f"{spot['tottime_ms']:9.3f} ms self  "
                f"{spot['calls']:>8} calls  {spot['func']}"
            )
    if not any_rows:
        lines.append("  (no profiled passes — did the compile run "
                     "with profiling enabled?)")
    return "\n".join(lines)


def render_timing_table(bus: PassEventBus) -> str:
    """The ``--time-passes`` human table (one row per event)."""
    rows = []
    for event in bus.events:
        name = event.name if event.round is None else (
            f"{event.name} (round {event.round})"
        )
        rows.append(
            (
                name,
                event.status,
                f"{event.wall_s * 1000:.2f}",
                f"{event.cpu_s * 1000:.2f}",
                event.cache or "-",
                str(event.diagnostics),
            )
        )
    headers = ("pass", "status", "wall ms", "cpu ms", "cache", "diags")
    widths = [
        max(len(headers[col]), *(len(r[col]) for r in rows)) if rows
        else len(headers[col])
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(
            "  ".join(
                cell.rjust(w) if col in (2, 3) else cell.ljust(w)
                for col, (cell, w) in enumerate(zip(row, widths))
            ).rstrip()
        )
    lines.append(
        f"total: {bus.total_wall_s() * 1000:.2f} ms over "
        f"{len(bus.ran())} executed pass(es)"
    )
    return "\n".join(lines)
