"""The compile context: one mutable record threaded through every pass.

A :class:`CompileContext` carries the *request* (source text or prebuilt
DAG, machine spec, volume-manager knobs, plan cache, analyzer switches),
the *working state* passes hand to each other (flat assay, DAG, hierarchy
attempts, volume plan), and the *instrumentation* (diagnostic sink and
pass-event bus).  Passes communicate exclusively through the context —
there is no other side channel — which is what lets the manager time,
fingerprint, and cache each stage uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Mapping, Optional, Sequence

from ...core.dag import AssayDAG
from ...core.dagsolve import VolumeAssignment
from ...core.hierarchy import Attempt, TransformReport, VolumeManager, VolumePlan
from ...machine.spec import AQUACORE_SPEC, MachineSpec
from ..diagnostics import DiagnosticSink
from .events import NULL_BUS, PassEventBus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...core.runtime_assign import RuntimePlanner
    from ...ir.program import AISProgram
    from ...ir.regalloc import ReservoirAssignment
    from ...lang.unroll import FlatAssay
    from ..cache import PlanCache
    from ..pipeline import CompiledAssay

__all__ = ["CompileContext", "HierarchyState"]


@dataclass
class HierarchyState:
    """Working state of the Figure 6 loop (owned by the hierarchy passes)."""

    current: AssayDAG
    attempts: List[Attempt] = field(default_factory=list)
    transforms: List[TransformReport] = field(default_factory=list)
    best: Optional[VolumeAssignment] = None
    round: int = 0
    #: set by a stage that produced a feasible plan; ends the loop.
    plan: Optional[VolumePlan] = None
    #: set by a transform stage that rewrote the DAG this round.
    transformed: bool = False


@dataclass
class CompileContext:
    """Everything one compilation carries between passes."""

    # ---- request ------------------------------------------------------
    source: Optional[str] = None
    dag: Optional[AssayDAG] = None
    name: Optional[str] = None
    aux_fluids: Sequence[str] = ()
    spec: MachineSpec = AQUACORE_SPEC
    manager: Optional[VolumeManager] = None
    cache: Optional["PlanCache"] = None
    lint: bool = False
    certify: bool = False
    output_targets: Optional[Mapping[str, object]] = None

    # ---- working state ------------------------------------------------
    ast: Optional[object] = None        # lang AST (ParseSource product)
    symbols: Optional[object] = None    # semantic symbol table
    flat: Optional["FlatAssay"] = None
    hierarchy: Optional[HierarchyState] = None
    #: compile fingerprint, computed once a cache pass needs it.
    fingerprint: Optional[str] = None
    #: the plan stage was satisfied by a cache entry (prefix skip).
    plan_restored: bool = False

    # ---- results ------------------------------------------------------
    plan: Optional[VolumePlan] = None
    assignment: Optional[VolumeAssignment] = None      # rounded, static
    planner: Optional["RuntimePlanner"] = None
    program: Optional["AISProgram"] = None
    allocation: Optional["ReservoirAssignment"] = None
    compiled: Optional["CompiledAssay"] = None

    # ---- instrumentation ---------------------------------------------
    diagnostics: DiagnosticSink = field(default_factory=DiagnosticSink)
    events: PassEventBus = NULL_BUS
    #: the manager that ran this context (set by run_compile/front_end so
    #: callers can render ``explain`` output against the resolved plan).
    pass_manager: Optional[object] = None

    def __post_init__(self) -> None:
        if self.source is None and self.dag is None:
            raise ValueError("CompileContext needs source text or a DAG")
        if self.manager is None:
            self.manager = VolumeManager(self.spec.limits)

    # ------------------------------------------------------------------
    @property
    def limits(self):
        return self.spec.limits

    @property
    def is_static(self) -> bool:
        """True when no runtime planner took over volume assignment."""
        return self.planner is None

    @property
    def final_dag(self) -> Optional[AssayDAG]:
        """The DAG codegen runs over: post-transform when a plan exists."""
        if self.plan is not None:
            return self.plan.dag
        return self.dag

    @property
    def resolved_name(self) -> str:
        if self.name:
            return self.name
        if self.dag is not None:
            return self.dag.name
        return "assay"

    def compile_fingerprint(self) -> str:
        """The content address of this request (memoized on the context)."""
        if self.fingerprint is None:
            from ...core.fingerprint import compile_fingerprint

            self.fingerprint = compile_fingerprint(
                self.dag, self.limits, self.spec, self.manager.options_dict()
            )
        return self.fingerprint
