"""The compile context: one mutable record threaded through every pass.

A :class:`CompileContext` carries the *request* (source text or prebuilt
DAG, machine spec, volume-manager knobs, plan cache, analyzer switches),
the *working state* passes hand to each other (flat assay, DAG, hierarchy
attempts, volume plan), and the *instrumentation* (diagnostic sink and
pass-event bus).  Passes communicate exclusively through the context —
there is no other side channel — which is what lets the manager time,
fingerprint, and cache each stage uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING
from collections.abc import Mapping, Sequence

from ...core.dag import AssayDAG
from ...core.dagsolve import VolumeAssignment
from ...core.hierarchy import Attempt, TransformReport, VolumeManager, VolumePlan
from ...machine.spec import AQUACORE_SPEC, MachineSpec
from ..diagnostics import DiagnosticSink
from .events import NULL_BUS, PassEventBus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...core.runtime_assign import RuntimePlanner
    from ...ir.program import AISProgram
    from ...ir.regalloc import ReservoirAssignment
    from ...lang.unroll import FlatAssay
    from ..cache import PlanCache
    from ..pipeline import CompiledAssay

__all__ = ["CompileContext", "HierarchyState"]


@dataclass
class HierarchyState:
    """Working state of the Figure 6 loop (owned by the hierarchy passes)."""

    current: AssayDAG
    attempts: list[Attempt] = field(default_factory=list)
    transforms: list[TransformReport] = field(default_factory=list)
    best: VolumeAssignment | None = None
    round: int = 0
    #: set by a stage that produced a feasible plan; ends the loop.
    plan: VolumePlan | None = None
    #: set by a transform stage that rewrote the DAG this round.
    transformed: bool = False
    #: incremental LP model builder, created by the first LP attempt and
    #: reused across retry rounds so unchanged row bundles are not rebuilt.
    lp_builder: object | None = None
    #: previous LP solution in the previous model's variable order, offered
    #: to the solver as a warm start on the next attempt.
    lp_warm: list[float] | None = None


@dataclass
class CompileContext:
    """Everything one compilation carries between passes."""

    # ---- request ------------------------------------------------------
    source: str | None = None
    dag: AssayDAG | None = None
    name: str | None = None
    aux_fluids: Sequence[str] = ()
    spec: MachineSpec = AQUACORE_SPEC
    manager: VolumeManager | None = None
    cache: "PlanCache" | None = None
    lint: bool = False
    certify: bool = False
    source_lint: bool = False
    race_check: bool = False
    #: wrap each leaf pass in its own cProfile session; the hotspots ride
    #: on the pass events (``--profile``).
    profile: bool = False
    output_targets: Mapping[str, object] | None = None

    # ---- working state ------------------------------------------------
    ast: object | None = None        # lang AST (ParseSource product)
    symbols: object | None = None    # semantic symbol table
    flat: "FlatAssay" | None = None
    hierarchy: HierarchyState | None = None
    #: compile fingerprint, computed once a cache pass needs it.
    fingerprint: str | None = None
    #: the plan stage was satisfied by a cache entry (prefix skip).
    plan_restored: bool = False

    # ---- results ------------------------------------------------------
    plan: VolumePlan | None = None
    assignment: VolumeAssignment | None = None      # rounded, static
    planner: "RuntimePlanner" | None = None
    program: "AISProgram" | None = None
    allocation: "ReservoirAssignment" | None = None
    compiled: "CompiledAssay" | None = None

    # ---- instrumentation ---------------------------------------------
    diagnostics: DiagnosticSink = field(default_factory=DiagnosticSink)
    events: PassEventBus = NULL_BUS
    #: the manager that ran this context (set by run_compile/front_end so
    #: callers can render ``explain`` output against the resolved plan).
    pass_manager: object | None = None

    def __post_init__(self) -> None:
        if self.source is None and self.dag is None:
            raise ValueError("CompileContext needs source text or a DAG")
        if self.manager is None:
            self.manager = VolumeManager(self.spec.limits)

    # ------------------------------------------------------------------
    @property
    def limits(self):
        return self.spec.limits

    @property
    def objective(self):
        """The planning objective driving every solver in this compile."""
        return self.manager.objective

    @property
    def is_static(self) -> bool:
        """True when no runtime planner took over volume assignment."""
        return self.planner is None

    @property
    def final_dag(self) -> AssayDAG | None:
        """The DAG codegen runs over: post-transform when a plan exists."""
        if self.plan is not None:
            return self.plan.dag
        return self.dag

    @property
    def resolved_name(self) -> str:
        if self.name:
            return self.name
        if self.dag is not None:
            return self.dag.name
        return "assay"

    def compile_fingerprint(self) -> str:
        """The content address of this request (memoized on the context)."""
        if self.fingerprint is None:
            from ...core.fingerprint import compile_fingerprint

            self.fingerprint = compile_fingerprint(
                self.dag, self.limits, self.spec, self.manager.options_dict()
            )
        return self.fingerprint
