"""The registered compilation passes (paper Figure 6 as a pass pipeline).

Front end::

    ParseSource -> [SourceLintPass] -> Unroll -> BuildDAG

(``SourceLintPass`` is the opt-in rolled-program verifier from
:mod:`repro.analysis.sourceflow`; it runs before unrolling so its
verdicts are independent of concrete trip counts.)

Volume management (one pass each for the hierarchy's boxes)::

    Partition            runtime-deferred assays get a RuntimePlanner
    ObjectiveSelect      record the planning objective driving the solvers
    RestorePlan          content-addressed cache lookup (prefix skip)
    HierarchyLoop        DAGSolvePass -> LPFallback -> CascadeTransform
                         -> ReplicateTransform, looped per Figure 6
    Round                least-count rounding + cache store
    PlanDiagnostics      transform / rounding / regeneration reporting

Back end::

    Codegen -> LintPass -> Assemble -> CertifyPass

:func:`run_compile` wires them into the one :class:`PassManager` every
driver (``compile_dag``, ``compile_assay``, ``compile_many``, the CLI)
now routes through; :func:`front_end` runs just the front half for tools
that stop at the DAG.  The legacy entry points in
:mod:`repro.compiler.pipeline` are deprecated shims over these.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence

from ...core.cascading import cascade_extreme_mixes, find_extreme_mixes
from ...core.dag import AssayDAG
from ...core.dagsolve import dispense
from ...core.intsolve import exact_dagsolve
from ...core.errors import (
    InfeasibleError,
    ResourceExhaustedError,
    SolverError,
    VolumeError,
)
from ...core.hierarchy import Attempt, VolumeManager, VolumePlan
from ...core.lp import solve_model
from ...core.lpdelta import IncrementalLPBuilder
from ...core.replication import iterative_replication
from ...core.rounding import max_ratio_error, round_assignment
from ...ir.builder import build_dag_from_flat
from ...lang.parser import parse
from ...lang.semantic import analyze
from ...lang.unroll import unroll
from ...machine.spec import AQUACORE_SPEC, MachineSpec
from ..codegen import generate
from .context import CompileContext, HierarchyState
from .events import PassEventBus
from .manager import OK, Pass, PassManager, PassOutcome

__all__ = [
    "ParseSource",
    "SourceLintPass",
    "Unroll",
    "BuildDAG",
    "Partition",
    "ObjectiveSelect",
    "RestorePlan",
    "DAGSolvePass",
    "LPFallback",
    "CascadeTransform",
    "ReplicateTransform",
    "HierarchyLoop",
    "Round",
    "PlanDiagnostics",
    "Codegen",
    "LintPass",
    "Assemble",
    "CertifyPass",
    "RaceCheckPass",
    "default_passes",
    "frontend_passes",
    "front_end",
    "run_compile",
    "run_hierarchy",
]


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _dag_fingerprint(dag: AssayDAG | None) -> str | None:
    if dag is None:
        return None
    from ...core.fingerprint import fingerprint_dag

    return fingerprint_dag(dag)


def _has_unknown_flows(dag: AssayDAG) -> bool:
    return any(
        node.unknown_volume and dag.out_degree(node.id) > 0
        for node in dag.nodes()
    )


# ---------------------------------------------------------------------------
# front end
# ---------------------------------------------------------------------------
class ParseSource(Pass):
    """Lex, parse, and semantically analyze the assay source."""

    name = "parse"

    def applicable(self, ctx: CompileContext) -> bool:
        return ctx.source is not None and ctx.flat is None and ctx.dag is None

    def skip_reason(self, ctx: CompileContext) -> str:
        if ctx.dag is not None:
            return "DAG supplied directly"
        return "pre-unrolled input"

    def fingerprint_in(self, ctx: CompileContext) -> str | None:
        return _sha256(ctx.source) if ctx.source is not None else None

    def run(self, ctx: CompileContext) -> PassOutcome:
        ctx.ast = parse(ctx.source)
        ctx.symbols = analyze(ctx.ast)
        return OK


class SourceLintPass(Pass):
    """Parametric fluid-safety verification over the *rolled* AST.

    Runs the :mod:`repro.analysis.sourceflow` fixpoint (interval
    abstract interpretation with widening) before unrolling, so its
    verdicts hold for every loop bound at O(program size) cost.
    """

    name = "source-lint"

    def applicable(self, ctx: CompileContext) -> bool:
        return ctx.source_lint and ctx.ast is not None

    def skip_reason(self, ctx: CompileContext) -> str:
        if not ctx.source_lint:
            return "source lint not requested"
        return "no AST (DAG or flat assay supplied directly)"

    def run(self, ctx: CompileContext) -> PassOutcome:
        # local import: repro.analysis imports the compiler's products
        from ...analysis.sourceflow import verify_program

        report = verify_program(ctx.ast, ctx.spec, symbols=ctx.symbols)
        ctx.diagnostics.extend(report.findings)
        return PassOutcome(
            detail=(
                f"{len(report.findings)} finding(s), "
                f"{report.stats['sweeps']} sweep(s)"
            )
        )


class Unroll(Pass):
    """Unroll loops and fold constants into a flat wet-operation list."""

    name = "unroll"

    def applicable(self, ctx: CompileContext) -> bool:
        return ctx.ast is not None and ctx.flat is None

    def skip_reason(self, ctx: CompileContext) -> str:
        return "no AST (DAG or flat assay supplied directly)"

    def run(self, ctx: CompileContext) -> PassOutcome:
        ctx.flat = unroll(ctx.ast, ctx.symbols)
        return PassOutcome(
            detail=f"{len(ctx.flat.statements)} wet operations"
        )


class BuildDAG(Pass):
    """Lower the flat assay to the volume DAG and validate it."""

    name = "build-dag"

    def fingerprint_out(self, ctx: CompileContext) -> str | None:
        return _dag_fingerprint(ctx.dag)

    def run(self, ctx: CompileContext) -> PassOutcome:
        built = False
        if ctx.dag is None:
            ctx.dag = build_dag_from_flat(ctx.flat)
            built = True
        if ctx.flat is not None:
            if not ctx.name:
                ctx.name = ctx.flat.name
            if not ctx.aux_fluids:
                ctx.aux_fluids = tuple(ctx.flat.aux_fluids)
        ctx.dag.validate()
        return PassOutcome(
            detail=(
                f"{ctx.dag.node_count} nodes, {ctx.dag.edge_count} edges"
                + ("" if built else " (validated supplied DAG)")
            )
        )


# ---------------------------------------------------------------------------
# volume management
# ---------------------------------------------------------------------------
class Partition(Pass):
    """Partition statically-unknown assays for run-time assignment."""

    name = "partition"

    def applicable(self, ctx: CompileContext) -> bool:
        return _has_unknown_flows(ctx.dag)

    def skip_reason(self, ctx: CompileContext) -> str:
        return "all volumes statically known"

    def run(self, ctx: CompileContext) -> PassOutcome:
        from ...core.runtime_assign import RuntimePlanner

        planner = RuntimePlanner(ctx.dag, ctx.spec.limits, cache=ctx.cache)
        ctx.planner = planner
        ctx.diagnostics.note(
            "runtime-assignment",
            f"{planner.n_partitions} partitions; final dispensing deferred "
            "to run time for measured volumes",
        )
        for partition in planner.partitions:
            vnorms = planner.vnorms[partition.index]
            peak = vnorms.max_vnorm()
            for spec_input in partition.constrained:
                vnorm = vnorms.node_vnorm.get(spec_input.node_id)
                if vnorm is not None and peak > 0 and vnorm / peak < 1 / 100:
                    ctx.diagnostics.warning(
                        "underflow-risk",
                        f"constrained input {spec_input.node_id} has Vnorm "
                        f"{vnorm} (tiny relative to its partition); low "
                        "measured volumes will trigger regeneration",
                        node=spec_input.node_id,
                    )
        return PassOutcome(detail=f"{planner.n_partitions} partitions")


class ObjectiveSelect(Pass):
    """Record which planning objective drives the hierarchy's solvers.

    The objective itself lives on the :class:`VolumeManager` (so batch
    workers and the cache fingerprint see it through ``options_dict``);
    this pass surfaces the selection in the pass trace and diagnostics so
    ``--explain`` and ``--stats-json`` readers can tell a waste-optimised
    compile from a paper-faithful one at a glance.
    """

    name = "objective"

    def run(self, ctx: CompileContext) -> PassOutcome:
        objective = ctx.objective
        if objective.name != "default":
            ctx.diagnostics.note(
                "objective",
                f"planning objective {objective.name!r}: "
                f"{objective.description}",
            )
        return PassOutcome(detail=objective.name)


class RestorePlan(Pass):
    """Serve the volume plan from the content-addressed cache."""

    name = "restore-plan"

    def applicable(self, ctx: CompileContext) -> bool:
        return ctx.is_static and ctx.cache is not None

    def skip_reason(self, ctx: CompileContext) -> str:
        if not ctx.is_static:
            return "runtime-deferred assay"
        return "no plan cache configured"

    def fingerprint_in(self, ctx: CompileContext) -> str | None:
        return ctx.compile_fingerprint()

    def run(self, ctx: CompileContext) -> PassOutcome:
        fingerprint = ctx.compile_fingerprint()
        restored = ctx.cache.get_plan(fingerprint)
        if restored is None:
            return PassOutcome(cache="miss", detail="cold compile")
        ctx.plan, ctx.assignment = restored
        ctx.plan_restored = True
        ctx.diagnostics.note(
            "plan-cache",
            "volume plan served from the content-addressed cache",
        )
        return PassOutcome(status="cached", cache="hit")


class DAGSolvePass(Pass):
    """DAGSolve: linear Vnorm back-propagation + forward dispensing.

    Runs the integer-scaled exact solver (:mod:`repro.core.intsolve`);
    its flat per-DAG context is cached on the DAG, so retry rounds over
    an untransformed graph skip the adjacency walk entirely.
    """

    name = "dagsolve"

    def run(self, ctx: CompileContext) -> PassOutcome:
        state = ctx.hierarchy
        manager = ctx.manager
        cache_note: str | None = None
        if manager.cache is not None:
            state.current.validate()
            hits_before = manager.cache.stats.hits
            vnorms = manager.cache.memo_vnorms(
                state.current, ctx.output_targets
            )
            cache_note = (
                "hit" if manager.cache.stats.hits > hits_before else "miss"
            )
            assignment = dispense(
                state.current,
                vnorms,
                manager.limits,
                objective=manager.objective,
            )
        else:
            assignment = exact_dagsolve(
                state.current,
                manager.limits,
                ctx.output_targets,
                objective=manager.objective,
            )
        violations = assignment.violations()
        state.attempts.append(
            Attempt(
                "dagsolve",
                state.round,
                not violations,
                detail="; ".join(str(v) for v in violations[:3]),
                violations=tuple(violations),
                objective=manager.objective.name,
            )
        )
        if not violations:
            state.plan = VolumePlan(
                state.current,
                assignment,
                "dagsolve",
                state.attempts,
                state.transforms,
            )
            return PassOutcome(cache=cache_note, detail="feasible")
        state.best = VolumeManager._better(state.best, assignment)
        return PassOutcome(
            cache=cache_note, detail=f"{len(violations)} violation(s)"
        )


class LPFallback(Pass):
    """LP fallback: strictly more general, used when DAGSolve fails.

    Retry rounds share one :class:`~repro.core.lpdelta.
    IncrementalLPBuilder` (held on the hierarchy state), so a transform
    that rewrites a few nodes only pays row construction for the
    rewritten neighborhood; the previous round's solution is offered to
    the solver as a warm start.
    """

    name = "lp"

    def applicable(self, ctx: CompileContext) -> bool:
        return ctx.manager.use_lp

    def skip_reason(self, ctx: CompileContext) -> str:
        return "LP disabled (--no-lp)"

    def run(self, ctx: CompileContext) -> PassOutcome:
        state = ctx.hierarchy
        manager = ctx.manager
        if state.transformed:
            # only reachable in the objective-reordered round (LP last):
            # let the rewritten DAG go through DAGSolve first
            return PassOutcome(
                status="skipped", detail="transform already rewrote this round"
            )
        if state.lp_builder is None:
            state.lp_builder = IncrementalLPBuilder(
                manager.limits,
                output_tolerance=manager.output_tolerance,
                objective=manager.objective,
            )
        try:
            model = state.lp_builder.build(state.current)
            assignment = solve_model(model, warm_start=state.lp_warm)
        except (InfeasibleError, SolverError) as error:
            state.attempts.append(
                Attempt(
                    "lp",
                    state.round,
                    False,
                    detail=str(error),
                    objective=manager.objective.name,
                )
            )
            return PassOutcome(status="failed", detail=str(error))
        stats = state.lp_builder.last_stats
        reuse_note = (
            f"lp-model {stats['reused']}/{stats['nodes']} row bundle(s) "
            "reused"
        )
        state.lp_warm = [
            float(assignment.edge_volume[key]) for key in model.var_index
        ]
        violations = assignment.violations()
        state.attempts.append(
            Attempt(
                "lp",
                state.round,
                not violations,
                detail=reuse_note,
                violations=tuple(violations),
                objective=manager.objective.name,
            )
        )
        if not violations:
            state.plan = VolumePlan(
                state.current,
                assignment,
                "lp",
                state.attempts,
                state.transforms,
            )
            return PassOutcome(detail=f"feasible; {reuse_note}")
        state.best = VolumeManager._better(state.best, assignment)
        return PassOutcome(
            detail=f"{len(violations)} violation(s); {reuse_note}"
        )


class CascadeTransform(Pass):
    """Cascade extreme mix ratios into staged dilutions (Section 3.4.1)."""

    name = "cascade"

    def applicable(self, ctx: CompileContext) -> bool:
        return ctx.manager.allow_cascading

    def skip_reason(self, ctx: CompileContext) -> str:
        return "cascading disabled (--no-cascade)"

    def run(self, ctx: CompileContext) -> PassOutcome:
        state = ctx.hierarchy
        manager = ctx.manager
        if not find_extreme_mixes(state.current, manager.limits):
            return PassOutcome(status="skipped", detail="no extreme mixes")
        try:
            state.current, reports = cascade_extreme_mixes(
                state.current, manager.limits, objective=manager.objective
            )
        except (VolumeError, ResourceExhaustedError) as error:
            state.attempts.append(
                Attempt(
                    "cascade",
                    state.round,
                    False,
                    detail=str(error),
                    objective=manager.objective.name,
                )
            )
            return PassOutcome(status="failed", detail=str(error))
        state.transforms.extend(reports)
        state.attempts.append(
            Attempt(
                "cascade",
                state.round,
                True,
                detail="; ".join(str(r) for r in reports),
                objective=manager.objective.name,
            )
        )
        state.transformed = bool(reports)
        return PassOutcome(detail=f"{len(reports)} rewrite(s)")


class ReplicateTransform(Pass):
    """Statically replicate over-used fluids (Section 3.4.2)."""

    name = "replicate"

    def applicable(self, ctx: CompileContext) -> bool:
        return ctx.manager.allow_replication

    def skip_reason(self, ctx: CompileContext) -> str:
        return "replication disabled (--no-replicate)"

    def run(self, ctx: CompileContext) -> PassOutcome:
        state = ctx.hierarchy
        manager = ctx.manager
        if state.transformed:
            return PassOutcome(
                status="skipped", detail="cascade already rewrote this round"
            )
        try:
            state.current, reports = iterative_replication(
                state.current,
                manager.limits,
                max_total_nodes=manager.max_total_nodes,
            )
        except (VolumeError, ResourceExhaustedError) as error:
            state.attempts.append(
                Attempt(
                    "replicate",
                    state.round,
                    False,
                    detail=str(error),
                    objective=manager.objective.name,
                )
            )
            return PassOutcome(status="failed", detail=str(error))
        state.transforms.extend(reports)
        state.attempts.append(
            Attempt(
                "replicate",
                state.round,
                True,
                detail="; ".join(str(r) for r in reports),
                objective=manager.objective.name,
            )
        )
        state.transformed = bool(reports)
        return PassOutcome(detail=f"{len(reports)} rewrite(s)")


class HierarchyLoop(Pass):
    """The Figure 6 flowchart: solve, fall back, transform, repeat.

    The paper's round order is DAGSolve → LP → cascade → replicate.  A
    scale-minimising objective (``--objective waste``) reorders the round
    to DAGSolve → cascade → replicate → LP: its front-loaded cascades
    often need a replication round to clear the least count at the waste
    floor, and an early LP "rescue" of the intermediate state would lock
    in a contorted low-utilisation solution that the next structural
    rewrite would have beaten outright.  The LP stays available as the
    last resort of a round in which no transform applied.
    """

    name = "hierarchy"

    def __init__(self) -> None:
        self.dagsolve = DAGSolvePass()
        self.lp = LPFallback()
        self.cascade = CascadeTransform()
        self.replicate = ReplicateTransform()

    def children(self) -> Sequence[Pass]:
        return (self.dagsolve, self.lp, self.cascade, self.replicate)

    def round_stages(self, manager) -> Sequence[Pass]:
        if manager.objective.minimize_scale:
            return (self.dagsolve, self.cascade, self.replicate, self.lp)
        return self.children()

    def applicable(self, ctx: CompileContext) -> bool:
        return ctx.is_static and not ctx.plan_restored

    def skip_reason(self, ctx: CompileContext) -> str:
        if not ctx.is_static:
            return "runtime-deferred assay"
        return "plan served from cache"

    def fingerprint_in(self, ctx: CompileContext) -> str | None:
        return _dag_fingerprint(ctx.dag)

    def fingerprint_out(self, ctx: CompileContext) -> str | None:
        return _dag_fingerprint(ctx.plan.dag if ctx.plan else None)

    def run(self, ctx: CompileContext) -> PassOutcome:
        from .manager import run_instrumented

        manager = ctx.manager
        state = HierarchyState(current=ctx.dag)
        ctx.hierarchy = state
        for round_number in range(1, manager.max_rounds + 1):
            state.round = round_number
            state.transformed = False
            for stage in self.round_stages(manager):
                run_instrumented(stage, ctx, round=round_number)
                if state.plan is not None:
                    break
            if state.plan is not None:
                break
            if not state.transformed:
                break  # nothing left to try; fall through to regeneration
        if state.plan is None:
            status = "regeneration" if state.best is not None else "failed"
            state.plan = VolumePlan(
                state.current,
                state.best,
                status,
                state.attempts,
                state.transforms,
            )
        ctx.plan = state.plan
        return PassOutcome(detail=ctx.plan.status)


class Round(Pass):
    """Round the assignment to least-count multiples; store in the cache."""

    name = "round"

    def applicable(self, ctx: CompileContext) -> bool:
        return ctx.is_static and not ctx.plan_restored

    def skip_reason(self, ctx: CompileContext) -> str:
        if not ctx.is_static:
            return "runtime-deferred assay"
        return "rounded assignment restored with the cached plan"

    def run(self, ctx: CompileContext) -> PassOutcome:
        plan = ctx.plan
        ctx.assignment = (
            round_assignment(plan.assignment)
            if plan.assignment is not None
            else None
        )
        if ctx.cache is not None:
            stored = ctx.cache.put_plan(
                ctx.compile_fingerprint(), plan, ctx.assignment
            )
            return PassOutcome(
                cache="store" if stored else None,
                detail="" if stored else "plan uncacheable",
            )
        return OK


class PlanDiagnostics(Pass):
    """Report transforms, rounding error, and regeneration fallback."""

    name = "plan-report"

    def applicable(self, ctx: CompileContext) -> bool:
        return ctx.is_static

    def skip_reason(self, ctx: CompileContext) -> str:
        return "runtime-deferred assay"

    def run(self, ctx: CompileContext) -> PassOutcome:
        plan = ctx.plan
        diagnostics = ctx.diagnostics
        for report in plan.transforms:
            diagnostics.note("transform", str(report))
        if plan.assignment is None:
            diagnostics.error(
                "no-volume-assignment",
                "the hierarchy produced no volume assignment at all",
            )
        else:
            assignment = ctx.assignment
            error = max_ratio_error(assignment)
            if error > 0:
                diagnostics.note(
                    "rounding-error",
                    f"least-count rounding perturbs mix ratios by up to "
                    f"{float(error) * 100:.3f}%",
                )
            residual = assignment.violations()
            if plan.needs_regeneration or residual:
                diagnostics.warning(
                    "regeneration-fallback",
                    "no feasible static assignment; execution will rely on "
                    "regeneration "
                    f"({len(residual)} residual violations)",
                )
        return OK


# ---------------------------------------------------------------------------
# back end
# ---------------------------------------------------------------------------
class Codegen(Pass):
    """Reservoir allocation and AIS instruction selection."""

    name = "codegen"

    def fingerprint_in(self, ctx: CompileContext) -> str | None:
        return _dag_fingerprint(ctx.final_dag)

    def fingerprint_out(self, ctx: CompileContext) -> str | None:
        if ctx.program is None:
            return None
        return _sha256(ctx.program.render())

    def run(self, ctx: CompileContext) -> PassOutcome:
        ctx.program, ctx.allocation = generate(
            ctx.final_dag,
            ctx.spec,
            name=ctx.resolved_name,
            aux_fluids=ctx.aux_fluids,
        )
        return PassOutcome(
            detail=f"{len(ctx.program.instructions)} instructions"
        )


class LintPass(Pass):
    """Fluid-safety static analysis over the generated program."""

    name = "lint"

    def applicable(self, ctx: CompileContext) -> bool:
        return ctx.lint

    def skip_reason(self, ctx: CompileContext) -> str:
        return "lint not requested"

    def run(self, ctx: CompileContext) -> PassOutcome:
        # local import: repro.analysis imports the compiler's products
        from ...analysis import analyze as lint_program

        ctx.diagnostics.extend(lint_program(ctx.program, ctx.spec))
        return OK


class Assemble(Pass):
    """Package every artifact as the caller-facing CompiledAssay."""

    name = "assemble"

    def run(self, ctx: CompileContext) -> PassOutcome:
        from ..pipeline import CompiledAssay

        ctx.compiled = CompiledAssay(
            name=ctx.resolved_name,
            program=ctx.program,
            dag=ctx.dag,
            final_dag=ctx.final_dag,
            spec=ctx.spec,
            allocation=ctx.allocation,
            source=ctx.source,
            flat=ctx.flat,
            plan=ctx.plan,
            assignment=ctx.assignment,
            planner=ctx.planner,
            diagnostics=ctx.diagnostics,
        )
        return OK


class CertifyPass(Pass):
    """Translation-validate the plan and schedule (repro.analysis.certify)."""

    name = "certify"

    def applicable(self, ctx: CompileContext) -> bool:
        return ctx.certify

    def skip_reason(self, ctx: CompileContext) -> str:
        return "certify not requested"

    def run(self, ctx: CompileContext) -> PassOutcome:
        # local import: repro.analysis imports the compiler's products
        from ...analysis.certify import certify as certify_compiled

        ctx.diagnostics.extend(certify_compiled(ctx.compiled).findings)
        return OK


class RaceCheckPass(Pass):
    """Static race detection over the generated schedule (repro.analysis.races).

    On a single compile this reports *schedule-sensitive* pairs —
    conflicting accesses ordered only by emission order, which a
    scheduler may not reorder — as notes, plus any definite RACE-*
    errors the happens-before analysis can prove.
    """

    name = "race-check"

    def applicable(self, ctx: CompileContext) -> bool:
        return ctx.race_check

    def skip_reason(self, ctx: CompileContext) -> str:
        return "race check not requested"

    def run(self, ctx: CompileContext) -> PassOutcome:
        # local import: repro.analysis imports the compiler's products
        from ...analysis.races import analyze_races

        report = analyze_races(ctx.program, ctx.spec)
        ctx.diagnostics.extend(report.findings)
        return PassOutcome(
            detail=(
                f"{len(report.findings)} finding(s), "
                f"{report.mhp.get('mhp_pairs', 0)} schedule-sensitive "
                "pair(s)"
            )
        )


# ---------------------------------------------------------------------------
# pass plans + drivers
# ---------------------------------------------------------------------------
def frontend_passes() -> list[Pass]:
    """Source -> validated DAG (what ``repro check``/``repro dag`` need)."""
    return [ParseSource(), Unroll(), BuildDAG()]


def default_passes() -> list[Pass]:
    """The full compile pipeline, front end through certification."""
    return [ParseSource(), SourceLintPass(), Unroll(), BuildDAG()] + [
        Partition(),
        ObjectiveSelect(),
        RestorePlan(),
        HierarchyLoop(),
        Round(),
        PlanDiagnostics(),
        Codegen(),
        LintPass(),
        Assemble(),
        CertifyPass(),
        RaceCheckPass(),
    ]


def front_end(
    *,
    source: str | None = None,
    dag: AssayDAG | None = None,
    spec: MachineSpec = AQUACORE_SPEC,
    manager: VolumeManager | None = None,
    bus: PassEventBus | None = None,
) -> CompileContext:
    """Run only the front end; returns the context (flat + validated DAG)."""
    ctx = CompileContext(source=source, dag=dag, spec=spec, manager=manager)
    if bus is not None:
        ctx.events = bus
    ctx.pass_manager = PassManager(frontend_passes())
    ctx.pass_manager.run(ctx)
    return ctx


def front_end_dag(
    source: str | None = None,
    dag: AssayDAG | None = None,
    aux_fluids: Sequence[str] = (),
) -> tuple[AssayDAG, tuple[str, ...]]:
    """Parse (or pass through) to a validated ``(dag, aux_fluids)`` pair."""
    if dag is not None:
        dag.validate()
        return dag, tuple(aux_fluids)
    ctx = front_end(source=source)
    return ctx.dag, tuple(ctx.aux_fluids)


def run_compile(
    *,
    source: str | None = None,
    dag: AssayDAG | None = None,
    spec: MachineSpec = AQUACORE_SPEC,
    name: str | None = None,
    aux_fluids: Sequence[str] = (),
    manager: VolumeManager | None = None,
    flat=None,
    cache=None,
    lint: bool = False,
    certify: bool = False,
    source_lint: bool = False,
    race_check: bool = False,
    profile: bool = False,
    bus: PassEventBus | None = None,
    passes: Sequence[Pass] | None = None,
) -> CompileContext:
    """Compile through the one instrumented pass manager.

    This is the single driver behind ``compile_assay``, ``compile_dag``,
    ``compile_many`` workers, and every CLI command.  Returns the full
    :class:`CompileContext`; the caller-facing result is
    ``ctx.compiled`` (a :class:`~repro.compiler.pipeline.CompiledAssay`).
    """
    ctx = CompileContext(
        source=source,
        dag=dag,
        name=name,
        aux_fluids=tuple(aux_fluids),
        spec=spec,
        manager=manager,
        cache=cache,
        lint=lint,
        certify=certify,
        source_lint=source_lint,
        race_check=race_check,
        profile=profile,
        flat=flat,
    )
    if bus is not None:
        ctx.events = bus
    if cache is not None and ctx.manager.cache is None:
        ctx.manager.cache = cache
    ctx.pass_manager = PassManager(
        list(passes) if passes is not None else default_passes()
    )
    ctx.pass_manager.run(ctx)
    return ctx


def run_hierarchy(
    dag: AssayDAG,
    manager: VolumeManager,
    output_targets=None,
    bus: PassEventBus | None = None,
) -> VolumePlan:
    """Run just the Figure 6 hierarchy loop over a DAG.

    This is the engine behind :meth:`repro.core.hierarchy.VolumeManager.plan`
    — the hierarchy has exactly one implementation, expressed as passes.
    """
    ctx = CompileContext(dag=dag, manager=manager)
    ctx.output_targets = output_targets
    if bus is not None:
        ctx.events = bus
    loop = HierarchyLoop()
    PassManager([loop]).run_pass(loop, ctx)
    return ctx.plan
