"""The pass manager: typed passes, uniform instrumentation, explain mode.

A :class:`Pass` is one stage of compilation — it reads and mutates the
:class:`~repro.compiler.passes.context.CompileContext` and reports a
:class:`PassOutcome`.  The :class:`PassManager` runs a configured pass
list in order and wraps every run in the same instrumentation: wall and
CPU timing, optional input/output fingerprints, diagnostic-count deltas,
and a structured :class:`~repro.compiler.passes.events.PassEvent` on the
context's bus.  Pass-level caching falls out of the same shape: a pass
whose product is already available (a restored plan, a memoized Vnorm
table) reports ``cached``/``skipped`` and the manager records the prefix
that never ran.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Sequence

from .context import CompileContext
from .events import PassEvent

__all__ = ["Pass", "PassOutcome", "PassManager", "run_instrumented"]


@dataclass(frozen=True)
class PassOutcome:
    """What one pass reports back to the manager."""

    status: str = "ok"            # "ok" | "failed" | "cached"
    cache: str | None = None   # "hit" | "miss" | "store"
    detail: str = ""


#: the outcome most passes return.
OK = PassOutcome()


class Pass:
    """One compilation stage.

    Subclasses set :attr:`name` and implement :meth:`run`.  Override
    :meth:`applicable` for passes that only run under some configurations
    (the manager emits a ``skipped`` event with the reason instead of
    calling :meth:`run`), and :meth:`fingerprint_in` /
    :meth:`fingerprint_out` to describe the artifact the pass transforms
    (only consulted when the bus asks for fingerprints).
    """

    #: stable pass name used in events, ``--explain``, and tests.
    name: str = "pass"

    def applicable(self, ctx: CompileContext) -> bool:
        return True

    def skip_reason(self, ctx: CompileContext) -> str:
        """Why :meth:`applicable` said no (for the skipped event)."""
        return ""

    def run(self, ctx: CompileContext) -> PassOutcome:
        raise NotImplementedError

    def fingerprint_in(self, ctx: CompileContext) -> str | None:
        return None

    def fingerprint_out(self, ctx: CompileContext) -> str | None:
        return None

    def children(self) -> Sequence["Pass"]:
        """Sub-passes of a composite (the hierarchy loop's stages)."""
        return ()

    def describe(self) -> str:
        """One-line summary for ``--explain`` (first docstring line)."""
        doc = (self.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else self.name


#: hotspots reported per profiled pass (cumulative-time order).
PROFILE_TOP_N = 10


def _profile_hotspots(profiler, top_n: int = PROFILE_TOP_N) -> tuple:
    """The top-N cumulative hotspots of one profiled pass run."""
    import os
    import pstats

    stats = pstats.Stats(profiler)
    rows = sorted(
        stats.stats.items(),
        key=lambda item: (-item[1][3], item[0]),
    )
    top = []
    for (filename, lineno, funcname), (__, ncalls, tt, ct, ___) in rows:
        if funcname in ("<built-in method builtins.exec>",):
            continue
        where = funcname
        if filename and filename != "~":
            where = f"{os.path.basename(filename)}:{lineno}:{funcname}"
        top.append(
            {
                "func": where,
                "calls": int(ncalls),
                "tottime_ms": round(tt * 1000, 3),
                "cumtime_ms": round(ct * 1000, 3),
            }
        )
        if len(top) >= top_n:
            break
    return tuple(top)


def run_instrumented(
    pass_: Pass, ctx: CompileContext, *, round: int | None = None
) -> PassEvent:
    """Run one pass under the standard instrumentation contract.

    Times wall and CPU clocks, captures input/output fingerprints when the
    bus asks for them, counts the diagnostics the pass added, and emits
    exactly one :class:`PassEvent` — including when the pass is skipped or
    raises.  Used by :class:`PassManager` for top-level passes and by
    composite passes (the hierarchy loop) for their round-stamped stages.

    With ``ctx.profile`` set, each *leaf* pass runs under its own
    :mod:`cProfile` session and the event carries the top cumulative
    hotspots.  Composite passes (``children()`` non-empty) are never
    profiled directly — their stages are, which avoids nesting profilers.
    """
    bus = ctx.events
    if not pass_.applicable(ctx):
        return bus.emit(
            PassEvent(
                name=pass_.name,
                status="skipped",
                round=round,
                detail=pass_.skip_reason(ctx),
            )
        )
    fp_in = pass_.fingerprint_in(ctx) if bus.fingerprints else None
    profiler = None
    if ctx.profile and not pass_.children():
        import cProfile

        profiler = cProfile.Profile()
    before = len(ctx.diagnostics)
    wall = time.perf_counter()
    cpu = time.process_time()
    try:
        if profiler is not None:
            outcome = profiler.runcall(pass_.run, ctx)
        else:
            outcome = pass_.run(ctx)
    except Exception:
        bus.emit(
            PassEvent(
                name=pass_.name,
                status="failed",
                round=round,
                wall_s=time.perf_counter() - wall,
                cpu_s=time.process_time() - cpu,
                fingerprint_in=fp_in,
                diagnostics=len(ctx.diagnostics) - before,
                profile=(
                    _profile_hotspots(profiler)
                    if profiler is not None
                    else ()
                ),
            )
        )
        raise
    return bus.emit(
        PassEvent(
            name=pass_.name,
            status=outcome.status,
            round=round,
            wall_s=time.perf_counter() - wall,
            cpu_s=time.process_time() - cpu,
            fingerprint_in=fp_in,
            fingerprint_out=(
                pass_.fingerprint_out(ctx) if bus.fingerprints else None
            ),
            cache=outcome.cache,
            diagnostics=len(ctx.diagnostics) - before,
            detail=outcome.detail,
            profile=(
                _profile_hotspots(profiler) if profiler is not None else ()
            ),
        )
    )


class PassManager:
    """Run a pass plan over a context with uniform instrumentation."""

    def __init__(self, passes: Sequence[Pass]) -> None:
        self.passes: list[Pass] = list(passes)

    def plan_names(self) -> list[str]:
        return [p.name for p in self.passes]

    # ------------------------------------------------------------------
    def run(self, ctx: CompileContext) -> CompileContext:
        for pass_ in self.passes:
            self.run_pass(pass_, ctx)
        return ctx

    def run_pass(self, pass_: Pass, ctx: CompileContext) -> PassEvent:
        """Run one pass with timing/fingerprint/event instrumentation."""
        return run_instrumented(pass_, ctx)

    # ------------------------------------------------------------------
    def explain(self, ctx: CompileContext | None = None) -> str:
        """The resolved pass plan, one line per pass.

        With a context that has been run, each line also reports what
        actually happened (ran / skipped / cached and the winning
        hierarchy attempt); without one it is the static plan.
        """
        by_name = {}
        if ctx is not None:
            for event in ctx.events:
                by_name.setdefault(event.name, []).append(event)

        def describe(pass_: Pass, indent: str) -> str:
            line = f"{indent}{pass_.name:<12} {pass_.describe()}"
            events = by_name.get(pass_.name)
            if events:
                last = events[-1]
                note = last.status
                if last.cache:
                    note += f", cache {last.cache}"
                if len(events) > 1:
                    note += f", {len(events)} runs"
                line += f"  [{note}]"
            return line

        lines = ["pass plan:"]
        for pass_ in self.passes:
            lines.append(describe(pass_, "  "))
            for child in pass_.children():
                lines.append(describe(child, "    . "))
        if ctx is not None and ctx.plan is not None:
            winner = next(
                (a for a in reversed(ctx.plan.attempts) if a.succeeded), None
            )
            if winner is not None:
                lines.append(
                    f"hierarchy: {ctx.plan.status!r} won at round "
                    f"{winner.round} ({winner.stage})"
                )
            else:
                lines.append(
                    f"hierarchy: no attempt succeeded; status "
                    f"{ctx.plan.status!r}"
                )
            if ctx.plan_restored:
                lines.append(
                    "plan served from the content-addressed cache "
                    "(hierarchy prefix skipped)"
                )
        elif ctx is not None and ctx.planner is not None:
            lines.append(
                f"hierarchy: deferred to runtime planner "
                f"({ctx.planner.n_partitions} partitions)"
            )
        return "\n".join(lines)
