"""Structured compiler diagnostics.

The volume-management hierarchy can succeed while still leaving residual
risk (a plan that needs run-time regeneration, a transform that grew the
DAG, a constrained input whose Vnorm is tiny — the paper calls out
glycomics' X2 = 1/204 as "a concern").  These surface as warnings rather
than errors so callers can decide.

The same :class:`Diagnostic`/:class:`DiagnosticSink` pair is the output
format of the fluid-safety static analyzer (:mod:`repro.analysis`), which
adds instruction/operand provenance; ``to_dict`` is the JSON shape
``repro lint --json`` emits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique
from collections.abc import Iterable, Iterator

__all__ = [
    "Severity",
    "Diagnostic",
    "DiagnosticSink",
    "REPORT_SCHEMA_VERSION",
    "EXIT_CLEAN",
    "EXIT_WARNINGS",
    "EXIT_ERRORS",
    "EXIT_FATAL",
    "SEVERITY_EXIT_CODES",
    "severity_counts",
    "exit_code_for",
    "report_payload",
]

# ---------------------------------------------------------------------------
# the one severity / exit-code table
# ---------------------------------------------------------------------------
# Shared by ``repro lint``, ``repro certify``, the compiler's diagnostic
# sink, and the pass-manager events; pinned by
# tests/compiler/test_severity_table.py.  The ordering NOTE < WARNING <
# ERROR is :attr:`Severity.rank`.
EXIT_CLEAN = 0      # no findings, or notes only
EXIT_WARNINGS = 1   # warnings, no errors
EXIT_ERRORS = 2     # at least one error
#: unusable input (parse/compile failure) — deliberately the same value
#: as EXIT_ERRORS: callers gate on "nonzero means not clean".
EXIT_FATAL = 2


@unique
class Severity(Enum):
    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        """Total order: NOTE < WARNING < ERROR."""
        return {"note": 0, "warning": 1, "error": 2}[self.value]


@dataclass(frozen=True)
class Diagnostic:
    severity: Severity
    code: str       # short machine-readable tag, e.g. "underflow-risk"
    message: str
    node: str | None = None
    #: 0-based instruction index, for program-level (analyzer) findings.
    instruction: int | None = None
    #: the operand the finding is about (e.g. "s3", "separator1.out1").
    operand: str | None = None

    def __str__(self) -> str:
        where = ""
        if self.node:
            where = f" [{self.node}]"
        elif self.instruction is not None:
            where = f" [instr {self.instruction}]"
        return f"{self.severity.value}: {self.code}: {self.message}{where}"

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable form (``repro lint --json``)."""
        payload: dict[str, object] = {
            "severity": self.severity.value,
            "code": self.code,
            "message": self.message,
        }
        if self.node is not None:
            payload["node"] = self.node
        if self.instruction is not None:
            payload["instruction"] = self.instruction
        if self.operand is not None:
            payload["operand"] = self.operand
        return payload


@dataclass
class DiagnosticSink:
    items: list[Diagnostic] = field(default_factory=list)

    def note(self, code: str, message: str, node: str | None = None) -> None:
        self.items.append(Diagnostic(Severity.NOTE, code, message, node))

    def warning(self, code: str, message: str, node: str | None = None) -> None:
        self.items.append(Diagnostic(Severity.WARNING, code, message, node))

    def error(self, code: str, message: str, node: str | None = None) -> None:
        self.items.append(Diagnostic(Severity.ERROR, code, message, node))

    def extend(
        self, diagnostics: "DiagnosticSink" | Iterable[Diagnostic]
    ) -> None:
        """Merge another sink (or any iterable of diagnostics) into this one."""
        self.items.extend(diagnostics)

    def filter(self, severity: Severity) -> list[Diagnostic]:
        """All diagnostics of exactly the given severity."""
        return [d for d in self.items if d.severity is severity]

    @property
    def max_severity(self) -> Severity | None:
        """The most severe level present, or ``None`` when empty."""
        if not self.items:
            return None
        return max((d.severity for d in self.items), key=lambda s: s.rank)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.items)

    def render(self) -> str:
        return "\n".join(str(d) for d in self.items)


# ---------------------------------------------------------------------------
# shared JSON report schema (``repro lint --json`` / ``repro certify --json``)
# ---------------------------------------------------------------------------
#: bumped only on breaking changes to the payload shape below.
REPORT_SCHEMA_VERSION = 1


def severity_counts(diagnostics: Iterable[Diagnostic]) -> dict[str, int]:
    """Tally diagnostics per severity level."""
    counts = {"error": 0, "warning": 0, "note": 0}
    for diagnostic in diagnostics:
        counts[diagnostic.severity.value] += 1
    return counts


#: severity of the worst finding -> process exit code (None = no findings).
SEVERITY_EXIT_CODES: dict[Severity | None, int] = {
    None: EXIT_CLEAN,
    Severity.NOTE: EXIT_CLEAN,
    Severity.WARNING: EXIT_WARNINGS,
    Severity.ERROR: EXIT_ERRORS,
}


def exit_code_for(diagnostics: Iterable[Diagnostic]) -> int:
    """The severity-based exit-code policy shared by lint, certify, and
    the pass-manager drivers: 0 clean/notes, 1 warnings, 2 errors."""
    worst: Severity | None = None
    for diagnostic in diagnostics:
        if worst is None or diagnostic.severity.rank > worst.rank:
            worst = diagnostic.severity
    return SEVERITY_EXIT_CODES[worst]


def report_payload(
    tool: str,
    program: str,
    machine: str,
    diagnostics: Iterable[Diagnostic],
    *,
    exit_code: int | None = None,
    extra_summary: dict[str, object] | None = None,
) -> dict[str, object]:
    """The stable top-level JSON schema emitted by ``repro lint --json``
    and ``repro certify --json`` (documented in docs/ANALYSIS.md)::

        {"version": 1, "tool": ..., "program": ..., "machine": ...,
         "diagnostics": [...], "summary": {"clean": ..., "errors": ...,
         "warnings": ..., "notes": ..., "exit_code": ...}}

    ``extra_summary`` lets a tool add keys under ``summary`` without
    touching the stable ones.
    """
    items = list(diagnostics)
    counts = severity_counts(items)
    summary: dict[str, object] = {
        "clean": counts["error"] == 0 and counts["warning"] == 0,
        "errors": counts["error"],
        "warnings": counts["warning"],
        "notes": counts["note"],
        "exit_code": exit_code_for(items) if exit_code is None else exit_code,
    }
    if extra_summary:
        summary.update(extra_summary)
    return {
        "version": REPORT_SCHEMA_VERSION,
        "tool": tool,
        "program": program,
        "machine": machine,
        "diagnostics": [diagnostic.to_dict() for diagnostic in items],
        "summary": summary,
    }
