"""Structured compiler diagnostics.

The volume-management hierarchy can succeed while still leaving residual
risk (a plan that needs run-time regeneration, a transform that grew the
DAG, a constrained input whose Vnorm is tiny — the paper calls out
glycomics' X2 = 1/204 as "a concern").  These surface as warnings rather
than errors so callers can decide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique
from typing import Iterator, List, Optional

__all__ = ["Severity", "Diagnostic", "DiagnosticSink"]


@unique
class Severity(Enum):
    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Diagnostic:
    severity: Severity
    code: str       # short machine-readable tag, e.g. "underflow-risk"
    message: str
    node: Optional[str] = None

    def __str__(self) -> str:
        where = f" [{self.node}]" if self.node else ""
        return f"{self.severity.value}: {self.code}: {self.message}{where}"


@dataclass
class DiagnosticSink:
    items: List[Diagnostic] = field(default_factory=list)

    def note(self, code: str, message: str, node: Optional[str] = None) -> None:
        self.items.append(Diagnostic(Severity.NOTE, code, message, node))

    def warning(self, code: str, message: str, node: Optional[str] = None) -> None:
        self.items.append(Diagnostic(Severity.WARNING, code, message, node))

    def error(self, code: str, message: str, node: Optional[str] = None) -> None:
        self.items.append(Diagnostic(Severity.ERROR, code, message, node))

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.items)

    def render(self) -> str:
        return "\n".join(str(d) for d in self.items)
