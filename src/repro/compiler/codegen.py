"""Instruction selection: volume DAG -> AIS program.

The generator walks the DAG in a sequence-stable topological order and
emits the instruction shapes of the paper's listings (Figures 9b-11b):

* all ``input`` instructions first, one reservoir + port per primary input
  fluid (plus matrix/pusher loads for separators);
* a mix becomes metered ``move``s into a mixer — printed with the raw
  ratio parts, exactly like ``move mixer1, s2, 4`` — followed by ``mix``;
* incubate/concentrate move the operand into the heater; separations load
  matrix and pusher, move the feed in, and run ``separate.<mode>``;
* **storage-less operands**: a fluid whose single consumer is the next
  operation stays in its functional unit; anything else is parked in its
  allocated reservoir;
* sensing moves the fluid into the sensing cell and reads it; cascade
  excess is explicitly discarded through an output port so the mixer is
  free for the next stage.

Every fluid-bearing instruction carries provenance: ``edge=(src, dst)`` on
moves and ``meta["node"]`` on inputs/separates, which is how the run-time
resolver maps the volume plan onto the program.
"""

from __future__ import annotations

import heapq
from fractions import Fraction
from collections.abc import Sequence

from ..core.dag import AssayDAG, Edge, Node, NodeKind
from ..ir import instructions as ais
from ..ir.program import AISProgram
from ..ir.regalloc import AllocationError, ReservoirAllocator, ReservoirAssignment
from ..machine.spec import AQUACORE_SPEC, MachineSpec

__all__ = ["CodegenError", "execution_order", "generate"]

#: default volume loaded for matrix/pusher fluids (whole-reservoir loads
#: outside the ratio-managed DAG).
AUX_LOAD_VOLUME = Fraction(50)


class CodegenError(Exception):
    """Instruction selection failed (unit conflict, missing metadata...)."""


def execution_order(dag: AssayDAG) -> list[str]:
    """Topological order with ties broken by source sequence number.

    Transformed nodes (cascade stages, replicas) inherit their ancestor's
    ``seq`` and sort immediately before it, so generated code stays close
    to the original program order.
    """

    def seq_key(node: Node) -> tuple[float, int, str]:
        seq = node.meta.get("seq")
        if seq is None:
            seq = 10 ** 9  # hand-built DAGs: fall back to insertion order
        stage = node.meta.get("stage", 0)
        return (float(seq), int(stage), node.id)

    indegree = {node.id: dag.in_degree(node.id) for node in dag.nodes()}
    heap: list[tuple[tuple[float, int, str], str]] = []
    for node in dag.nodes():
        if indegree[node.id] == 0:
            heapq.heappush(heap, (seq_key(node), node.id))
    order: list[str] = []
    while heap:
        __, node_id = heapq.heappop(heap)
        order.append(node_id)
        for successor in dag.successors(node_id):
            indegree[successor] -= 1
            if indegree[successor] == 0:
                heapq.heappush(heap, (seq_key(dag.node(successor)), successor))
    if len(order) != dag.node_count:
        raise CodegenError("cycle detected while ordering the DAG")
    return order


class _Generator:
    def __init__(
        self,
        dag: AssayDAG,
        spec: MachineSpec,
        *,
        name: str | None = None,
        aux_fluids: Sequence[str] = (),
        aux_volume: Fraction = AUX_LOAD_VOLUME,
        storage_less: bool = True,
    ) -> None:
        self.dag = dag
        self.spec = spec
        self.name = name or dag.name
        self.aux_fluids = list(dict.fromkeys(aux_fluids))
        self.aux_volume = aux_volume
        self.order = execution_order(dag)
        self.allocator = ReservoirAllocator(spec)
        self.allocation: ReservoirAssignment = self.allocator.allocate(
            dag,
            self.order,
            aux_fluids=self.aux_fluids,
            storage_less=storage_less,
        )
        self.program = AISProgram(self.name, machine=spec.name)
        #: node id -> operand string where its fluid currently sits.
        self.location: dict[str, str] = {}
        #: unit name -> node id currently occupying it (storage-less holds).
        self.occupant: dict[str, str | None] = {}
        #: remaining consumer count per produced node.
        self.pending_uses: dict[str, int] = {}
        self.mixers = [u.name for u in spec.units_of_kind("mixer")]
        self.heaters = [u.name for u in spec.units_of_kind("heater")]
        if not self.mixers or not self.heaters:
            raise CodegenError("machine needs at least one mixer and heater")
        self.waste_port = spec.output_port_names()[-1]
        self._aux_loaded: dict[str, bool] = {}

    # ------------------------------------------------------------------
    def run(self) -> AISProgram:
        self.emit_inputs()
        for node_id in self.order:
            node = self.dag.node(node_id)
            if node.kind in (NodeKind.INPUT, NodeKind.CONSTRAINED_INPUT):
                self.post_production(node)  # senses/outputs on raw inputs
                continue
            if node.kind is NodeKind.EXCESS:
                continue  # handled when its producer finishes
            self.produce(node)
        return self.program

    # ------------------------------------------------------------------
    def emit_inputs(self) -> None:
        source_kinds = (NodeKind.INPUT,)
        sources = [
            node
            for node in self.dag.nodes()
            if node.kind in source_kinds
        ]
        sources.sort(key=lambda n: self.order.index(n.id))
        for node in sources:
            reservoir = self.allocation.reservoir_of[node.id]
            port = self.allocation.port_of[node.id]
            self.program.append(
                ais.input_(
                    reservoir,
                    port,
                    comment=node.display_name,
                    meta={"node": node.id},
                )
            )
            self.location[node.id] = reservoir
            self.pending_uses[node.id] = self._use_count(node.id)
        for name in self.aux_fluids:
            reservoir, port = self.allocation.aux[name]
            self.program.append(
                ais.input_(
                    reservoir,
                    port,
                    abs_volume=self.aux_volume,
                    comment=name,
                    meta={"aux": name},
                )
            )
            self._aux_loaded[name] = True
        for node in self.dag.nodes():
            if node.kind is NodeKind.CONSTRAINED_INPUT:
                # The previous partition (or the split input) left this
                # fluid in its allocated reservoir; nothing to emit.
                reservoir = self.allocation.reservoir_of[node.id]
                self.location[node.id] = reservoir
                self.pending_uses[node.id] = self._use_count(node.id)

    def _use_count(self, node_id: str) -> int:
        return sum(
            1 for e in self.dag.out_edges(node_id) if not e.is_excess
        )

    # ------------------------------------------------------------------
    # unit management
    # ------------------------------------------------------------------
    def _in_place_ok(self, src_id: str) -> bool:
        """In-place (whole-content) consumption: safe only on a fluid's
        last use with no excess held back.  Callers restrict it to *unary*
        consumers, where taking the producer's full content instead of the
        metered planned volume cannot perturb a mix ratio and cannot
        overflow a same-capacity unit."""
        node = self.dag.node(src_id)
        return (
            self.pending_uses.get(src_id, 0) == 1
            and node.excess_fraction == 0
        )

    def _free_unit(
        self,
        candidates: list[str],
        needed_sources: list[str],
        *,
        allow_in_place: bool = False,
    ) -> str:
        """Pick a unit: an empty one, else one whose occupant is spent.

        For *mixes*, a unit holding one of the sources is never chosen:
        rounded plans can leave the producer's actual content a least-count
        step away from the planned draw, so mix ingredients are always
        metered moves into a different unit, with residue explicitly
        discarded once the source is spent (see :meth:`_consume_from`).
        Unary consumers pass ``allow_in_place`` and may keep the fluid in
        its unit.
        """
        if allow_in_place:
            for unit in candidates:
                occupant = self.occupant.get(unit)
                if (
                    occupant is not None
                    and occupant in needed_sources
                    and self._in_place_ok(occupant)
                ):
                    return unit
        for unit in candidates:
            if self.occupant.get(unit) is None:
                return unit
        for unit in candidates:
            occupant = self.occupant.get(unit)
            if occupant is not None and self.pending_uses.get(occupant, 0) == 0:
                self.program.append(
                    ais.output(
                        self.waste_port,
                        unit,
                        comment=f"discard spent {occupant}",
                        meta={"discard": occupant},
                    )
                )
                self._evict(unit)
                return unit
        raise CodegenError(
            f"no free unit among {candidates}; live fluids occupy all of "
            "them (reservoir allocation should have parked one)"
        )

    def _clear_outlet(self, unit: str) -> None:
        """Evacuate a separator outlet before a new run flushes it.

        The flow-cell model discards whatever sits in ``out1`` when the
        next separation starts, so an unparked occupant must leave first:
        a terminal product is delivered off-chip (it *is* the assay's
        output), a spent intermediate is discarded, and a fluid with
        remaining uses means reservoir allocation failed to park it —
        clobbering it would silently corrupt downstream mixes.
        """
        outlet = f"{unit}.out1"
        occupant = self.occupant.get(outlet)
        if occupant is None:
            return
        if self.pending_uses.get(occupant, 0) > 0:
            raise CodegenError(
                f"separator {unit!r} reused while {occupant!r} (still "
                f"needed {self.pending_uses[occupant]} more time(s)) sits "
                "unparked in its outlet"
            )
        if self._use_count(occupant) == 0:
            port = self.spec.output_port_names()[0]
            comment = f"deliver {occupant} before reuse"
            meta = {"node": occupant}
        else:
            port = self.waste_port
            comment = f"discard spent {occupant}"
            meta = {"discard": occupant}
        self.program.append(
            ais.output(port, outlet, comment=comment, meta=meta)
        )
        self._evict(outlet)
        if self.location.get(occupant) == outlet:
            del self.location[occupant]

    def _evict(self, unit: str) -> None:
        occupant = self.occupant.pop(unit, None)
        if occupant is not None and self.location.get(occupant) == unit:
            del self.location[occupant]

    def _settle(self, node: Node, unit: str) -> None:
        """Place a freshly-produced fluid: park it or leave it in the unit."""
        self.pending_uses[node.id] = self._use_count(node.id)
        reservoir = self.allocation.reservoir_of.get(node.id)
        if reservoir is not None:
            self.program.append(
                ais.move(
                    reservoir,
                    unit,
                    comment=f"park {node.display_name}",
                    meta={"park": node.id},
                )
            )
            self.location[node.id] = reservoir
            self.occupant[unit] = None
        else:
            self.location[node.id] = unit
            self.occupant[unit] = node.id

    def _consume_from(self, src_id: str, unit: str) -> None:
        """Bookkeeping after moving (part of) ``src_id`` into ``unit``."""
        self.pending_uses[src_id] = self.pending_uses.get(src_id, 1) - 1
        source_location = self.location.get(src_id)
        if (
            source_location is not None
            and self.occupant.get(source_location) == src_id
            and self.pending_uses[src_id] <= 0
        ):
            # Fully consumed out of a functional unit.  Whatever remains —
            # a cascade stage's planned excess, or the sub-least-count
            # residue a rounded plan can leave behind — is flushed so the
            # unit is genuinely empty for its next occupant.
            src_node = self.dag.node(src_id)
            label = (
                "excess" if src_node.excess_fraction > 0 else "residue"
            )
            self.program.append(
                ais.output(
                    self.waste_port,
                    source_location,
                    comment=f"discard {label} of {src_id}",
                    meta={"excess" if label == "excess" else "residue": src_id},
                )
            )
            self._evict(source_location)

    # ------------------------------------------------------------------
    # node production
    # ------------------------------------------------------------------
    def produce(self, node: Node) -> None:
        kind = node.kind
        first_instruction = len(self.program)
        if kind is NodeKind.MIX:
            self.produce_mix(node)
        elif kind is NodeKind.HEAT:
            self.produce_heat(node)
        elif kind is NodeKind.SEPARATE:
            self.produce_separate(node)
        elif kind is NodeKind.SENSE:
            self.produce_heat(node)  # treated as a unary pass-through
        else:
            raise CodegenError(f"cannot generate code for node kind {kind}")
        guard = node.meta.get("guard")
        if guard is not None:
            # Conservatively-included branch (dynamic IF, Section 3.5): the
            # executor skips these instructions when the branch is untaken.
            for instruction in self.program.instructions[first_instruction:]:
                instruction.meta.setdefault("guard", guard)
        self.post_production(node)

    def _ratio_parts(self, node: Node, inbound: list[Edge]) -> list[Fraction]:
        if node.ratio is not None and len(node.ratio) == len(inbound):
            return [Fraction(part) for part in node.ratio]
        # Transformed nodes: print the normalised fractions scaled to the
        # smallest part = 1.
        smallest = min(edge.fraction for edge in inbound)
        return [edge.fraction / smallest for edge in inbound]

    def produce_mix(self, node: Node) -> None:
        inbound = [e for e in self.dag.in_edges(node.id) if not e.is_excess]
        sources = [edge.src for edge in inbound]
        unit = self._free_unit(self.mixers, sources)
        parts = self._ratio_parts(node, inbound)
        for edge, part in zip(inbound, parts):
            src_location = self.location.get(edge.src)
            if src_location is None:
                raise CodegenError(
                    f"source {edge.src!r} of {node.id!r} has no location"
                )
            if src_location == unit:
                raise CodegenError(
                    f"source {edge.src!r} occupies the chosen unit {unit!r}; "
                    "the unit picker must never select it"
                )
            self.program.append(
                ais.move(
                    unit,
                    src_location,
                    part,
                    edge=edge.key,
                    meta={"dst_node": node.id},
                )
            )
            self._consume_from(edge.src, unit)
        duration = node.meta.get("duration", 10)
        self.program.append(ais.mix(unit, duration, meta={"node": node.id}))
        self._settle(node, unit)

    def produce_heat(self, node: Node) -> None:
        (edge,) = [e for e in self.dag.in_edges(node.id) if not e.is_excess]
        src_location = self.location.get(edge.src)
        if src_location is None:
            raise CodegenError(f"source {edge.src!r} has no location")
        unit = self._free_unit(self.heaters, [edge.src], allow_in_place=True)
        if src_location == unit and self.occupant.get(unit) == edge.src:
            # unary in-place: the whole content is the single ingredient
            self.occupant[unit] = None
            self.pending_uses[edge.src] -= 1
            self.location.pop(edge.src, None)
        else:
            self.program.append(
                ais.move(
                    unit, src_location, edge=edge.key, meta={"dst_node": node.id}
                )
            )
            self._consume_from(edge.src, unit)
        temperature = node.meta.get("temperature", 37)
        duration = node.meta.get("duration", 30)
        if node.meta.get("op") == "concentrate":
            keep = node.output_fraction or Fraction(1, 2)
            self.program.append(
                ais.concentrate(
                    unit,
                    temperature,
                    duration,
                    meta={"node": node.id, "keep_fraction": keep},
                )
            )
        else:
            self.program.append(
                ais.incubate(unit, temperature, duration, meta={"node": node.id})
            )
        self._settle(node, unit)

    def produce_separate(self, node: Node) -> None:
        mode = node.meta.get("mode", "AF")
        unit_spec = self.spec.separator_for_mode(mode)
        unit = unit_spec.name
        self._clear_outlet(unit)
        matrix = node.meta.get("matrix")
        pusher = node.meta.get("pusher")
        for aux, well in ((matrix, "matrix"), (pusher, "pusher")):
            if aux is None:
                continue
            if aux not in self.allocation.aux:
                raise CodegenError(
                    f"separator fluid {aux!r} was not allocated a reservoir"
                )
            reservoir, port = self.allocation.aux[aux]
            if not self._aux_loaded.get(aux, False):
                self.program.append(
                    ais.input_(
                        reservoir,
                        port,
                        abs_volume=self.aux_volume,
                        comment=f"refill {aux}",
                        meta={"aux": aux},
                    )
                )
            self.program.append(
                ais.move(
                    f"{unit}.{well}",
                    reservoir,
                    comment=aux,
                    meta={"aux": aux, "well": well},
                )
            )
            self._aux_loaded[aux] = False  # consumed; next use must refill
        (edge,) = [e for e in self.dag.in_edges(node.id) if not e.is_excess]
        src_location = self.location.get(edge.src)
        if src_location is None:
            raise CodegenError(f"source {edge.src!r} has no location")
        self.program.append(
            ais.move(unit, src_location, edge=edge.key, meta={"dst_node": node.id})
        )
        self._consume_from(edge.src, unit)
        duration = node.meta.get("duration", 30)
        separate_meta = {"node": node.id}
        if not node.unknown_volume and node.output_fraction is not None:
            # carry the YIELD hint so a simulator without an explicit
            # separation model can honour it (the plan assumed it)
            separate_meta["yield_fraction"] = node.output_fraction
        self.program.append(
            ais.separate(unit, mode, duration, meta=separate_meta)
        )
        # The effluent sits in out1; treat out1 as the product's unit.
        outlet = f"{unit}.out1"
        self.pending_uses[node.id] = self._use_count(node.id)
        reservoir = self.allocation.reservoir_of.get(node.id)
        if reservoir is not None:
            self.program.append(
                ais.move(
                    reservoir,
                    outlet,
                    comment=f"park {node.display_name}",
                    meta={"park": node.id},
                )
            )
            self.location[node.id] = reservoir
        else:
            self.location[node.id] = outlet
            self.occupant[outlet] = node.id

    # ------------------------------------------------------------------
    def post_production(self, node: Node) -> None:
        """Emit senses and off-chip outputs attached to a node."""
        senses = node.meta.get("senses", [])
        outputs = node.meta.get("outputs", [])
        if not senses and not outputs:
            return
        for request in senses:
            sensor_spec = self.spec.sensor_for_mode(request["mode"])
            location = self.location.get(node.id)
            if location is None:
                raise CodegenError(f"sensed fluid {node.id!r} has no location")
            if location != sensor_spec.name:
                move_meta = {"sense_of": node.id}
                if request.get("guard") is not None:
                    move_meta["guard"] = request["guard"]
                self.program.append(
                    ais.move(
                        sensor_spec.name,
                        location,
                        edge=None,
                        meta=move_meta,
                    )
                )
                if self.occupant.get(location) == node.id:
                    self._evict(location)
                self.location[node.id] = sensor_spec.name
                self.occupant[sensor_spec.name] = node.id
            self.program.append(
                ais.sense(
                    sensor_spec.name,
                    request["mode"],
                    request["result"],
                    meta={"node": node.id, "guard": request.get("guard")},
                )
            )
        for _request in outputs:
            location = self.location.get(node.id)
            if location is None:
                raise CodegenError(f"output fluid {node.id!r} has no location")
            port = self.spec.output_port_names()[0]
            self.program.append(
                ais.output(port, location, meta={"node": node.id})
            )
            if self.occupant.get(location) == node.id:
                self._evict(location)
            self.location.pop(node.id, None)


def generate(
    dag: AssayDAG,
    spec: MachineSpec = AQUACORE_SPEC,
    *,
    name: str | None = None,
    aux_fluids: Sequence[str] = (),
    aux_volume: Fraction = AUX_LOAD_VOLUME,
    storage_less: bool = True,
) -> tuple[AISProgram, ReservoirAssignment]:
    """Generate an AIS program for a volume DAG.

    Returns the program and the reservoir assignment it assumes.

    Raises:
        AllocationError: the assay exceeds the machine's reservoirs/ports.
        CodegenError: instruction selection failed.
    """
    generator = _Generator(
        dag,
        spec,
        name=name,
        aux_fluids=aux_fluids,
        aux_volume=aux_volume,
        storage_less=storage_less,
    )
    program = generator.run()
    program.input_ports = {
        node_id: generator.allocation.port_of[node_id]
        for node_id in generator.allocation.port_of
    }
    program.meta["allocation_peak"] = generator.allocation.peak_usage
    return program, generator.allocation
