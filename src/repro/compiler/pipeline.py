"""End-to-end compilation: assay source -> AIS + volume plan.

The driver mirrors a conventional compiler (paper Section 4.1: "the usual
steps of parsing, intermediate representation, register allocation, and
code generation are similar to those of a conventional compiler"), plus the
volume-management stages this paper adds:

1. lex/parse/semantic analysis (:mod:`repro.lang`);
2. loop unrolling and constant folding (:mod:`repro.lang.unroll`);
3. lowering to the volume DAG (:mod:`repro.ir.builder`);
4. volume management:
   * statically-known assays run the Figure 6 hierarchy
     (:class:`~repro.core.hierarchy.VolumeManager`) and round the result to
     least-count multiples;
   * assays with unknown-volume operations are partitioned and get a
     :class:`~repro.core.runtime_assign.RuntimePlanner`, deferring only the
     final dispensing to run time;
5. reservoir allocation and code generation (:mod:`repro.compiler.codegen`)
   over the *final* (possibly cascaded/replicated) DAG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from ..core.dag import AssayDAG
from ..core.dagsolve import VolumeAssignment
from ..core.hierarchy import VolumeManager, VolumePlan
from ..core.limits import HardwareLimits
from ..core.rounding import max_ratio_error, round_assignment
from ..core.runtime_assign import RuntimePlanner
from ..ir.builder import build_dag_from_flat
from ..ir.program import AISProgram
from ..ir.regalloc import ReservoirAssignment
from ..lang.parser import parse
from ..lang.semantic import analyze
from ..lang.unroll import FlatAssay, unroll
from ..machine.spec import AQUACORE_SPEC, MachineSpec
from .codegen import generate
from .diagnostics import DiagnosticSink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cache import PlanCache

__all__ = [
    "CompiledAssay",
    "compile_assay",
    "compile_dag",
    "static_fingerprint",
]


@dataclass
class CompiledAssay:
    """Everything the compiler produced for one assay."""

    name: str
    program: AISProgram
    dag: AssayDAG                     # the volume DAG as written
    final_dag: AssayDAG               # after transforms (== dag when none)
    spec: MachineSpec
    allocation: ReservoirAssignment
    source: Optional[str] = None
    flat: Optional[FlatAssay] = None
    plan: Optional[VolumePlan] = None             # static case
    assignment: Optional[VolumeAssignment] = None  # rounded, static case
    planner: Optional[RuntimePlanner] = None      # statically-unknown case
    diagnostics: DiagnosticSink = field(default_factory=DiagnosticSink)

    @property
    def is_static(self) -> bool:
        """True when volume assignment completed fully at compile time."""
        return self.planner is None

    @property
    def needs_regeneration(self) -> bool:
        return self.plan is not None and self.plan.needs_regeneration

    def listing(self) -> str:
        return self.program.render()


def _has_unknown_flows(dag: AssayDAG) -> bool:
    return any(
        node.unknown_volume and dag.out_degree(node.id) > 0
        for node in dag.nodes()
    )


def static_fingerprint(
    dag: AssayDAG, spec: MachineSpec, manager: VolumeManager
) -> str:
    """The content address of one static compile request."""
    from ..core.fingerprint import compile_fingerprint

    return compile_fingerprint(
        dag, spec.limits, spec, manager.options_dict()
    )


def _plan_static(
    dag: AssayDAG,
    spec: MachineSpec,
    manager: VolumeManager,
    cache,
):
    """Run (or restore) the volume-management hierarchy for a static DAG.

    Returns ``(plan, rounded_assignment, cache_hit)``.  A cache hit
    restores both through exact serde; a miss runs the hierarchy, rounds,
    and stores the pair under the compile fingerprint.
    """
    if cache is None:
        plan = manager.plan(dag)
        rounded = (
            round_assignment(plan.assignment)
            if plan.assignment is not None
            else None
        )
        return plan, rounded, False
    fingerprint = static_fingerprint(dag, spec, manager)
    restored = cache.get_plan(fingerprint)
    if restored is not None:
        plan, rounded = restored
        return plan, rounded, True
    plan = manager.plan(dag)
    rounded = (
        round_assignment(plan.assignment)
        if plan.assignment is not None
        else None
    )
    cache.put_plan(fingerprint, plan, rounded)
    return plan, rounded, False


def compile_dag(
    dag: AssayDAG,
    *,
    spec: MachineSpec = AQUACORE_SPEC,
    name: Optional[str] = None,
    aux_fluids: Sequence[str] = (),
    manager: Optional[VolumeManager] = None,
    flat: Optional[FlatAssay] = None,
    source: Optional[str] = None,
    lint: bool = False,
    certify: bool = False,
    cache: Optional["PlanCache"] = None,
) -> CompiledAssay:
    """Compile a volume DAG (hand-built or produced by the front end).

    With ``lint=True``, the fluid-safety analyzer
    (:func:`repro.analysis.analyze`) runs over the generated program and
    its findings join the compiler's :class:`DiagnosticSink`.  With
    ``certify=True``, the plan-certificate verifier
    (:func:`repro.analysis.certify.certify`) re-checks the volume plan
    and instruction schedule after codegen — the compiler validating its
    own translation — and its findings join the sink likewise.

    With a ``cache`` (:class:`repro.compiler.cache.PlanCache`), the volume
    -management stage is served content-addressed: the DAG, hardware
    limits, machine spec, and manager options are fingerprinted, and a hit
    restores the plan plus the rounded assignment through exact-Fraction
    serde instead of re-running the hierarchy.  Codegen and the optional
    analyses always run, so the produced listing is byte-identical either
    way.  Subproblem Vnorm passes (partitions, transform rounds) are
    memoized through the same cache.
    """
    diagnostics = DiagnosticSink()
    limits = spec.limits
    manager = manager or VolumeManager(limits)
    if cache is not None and manager.cache is None:
        manager.cache = cache
    dag.validate()

    plan: Optional[VolumePlan] = None
    planner: Optional[RuntimePlanner] = None
    assignment: Optional[VolumeAssignment] = None
    final_dag = dag

    if _has_unknown_flows(dag):
        planner = RuntimePlanner(dag, limits, cache=cache)
        diagnostics.note(
            "runtime-assignment",
            f"{planner.n_partitions} partitions; final dispensing deferred "
            "to run time for measured volumes",
        )
        for partition in planner.partitions:
            vnorms = planner.vnorms[partition.index]
            peak = vnorms.max_vnorm()
            for spec_input in partition.constrained:
                vnorm = vnorms.node_vnorm.get(spec_input.node_id)
                if vnorm is not None and peak > 0 and vnorm / peak < 1 / 100:
                    diagnostics.warning(
                        "underflow-risk",
                        f"constrained input {spec_input.node_id} has Vnorm "
                        f"{vnorm} (tiny relative to its partition); low "
                        "measured volumes will trigger regeneration",
                        node=spec_input.node_id,
                    )
    else:
        plan, assignment, cache_hit = _plan_static(dag, spec, manager, cache)
        final_dag = plan.dag
        if cache_hit:
            diagnostics.note(
                "plan-cache",
                "volume plan served from the content-addressed cache",
            )
        for report in plan.transforms:
            diagnostics.note("transform", str(report))
        if plan.assignment is None:
            diagnostics.error(
                "no-volume-assignment",
                "the hierarchy produced no volume assignment at all",
            )
        else:
            error = max_ratio_error(assignment)
            if error > 0:
                diagnostics.note(
                    "rounding-error",
                    f"least-count rounding perturbs mix ratios by up to "
                    f"{float(error) * 100:.3f}%",
                )
            residual = assignment.violations()
            if plan.needs_regeneration or residual:
                diagnostics.warning(
                    "regeneration-fallback",
                    "no feasible static assignment; execution will rely on "
                    "regeneration "
                    f"({len(residual)} residual violations)",
                )

    program, allocation = generate(
        final_dag, spec, name=name or dag.name, aux_fluids=aux_fluids
    )
    if lint:
        # local import: repro.analysis imports this module's products
        from ..analysis import analyze as lint_program

        diagnostics.extend(lint_program(program, spec))
    compiled = CompiledAssay(
        name=name or dag.name,
        program=program,
        dag=dag,
        final_dag=final_dag,
        spec=spec,
        allocation=allocation,
        source=source,
        flat=flat,
        plan=plan,
        assignment=assignment,
        planner=planner,
        diagnostics=diagnostics,
    )
    if certify:
        # local import: repro.analysis imports this module's products
        from ..analysis.certify import certify as certify_compiled

        diagnostics.extend(certify_compiled(compiled).findings)
    return compiled


def compile_assay(
    source: str,
    *,
    spec: MachineSpec = AQUACORE_SPEC,
    manager: Optional[VolumeManager] = None,
    lint: bool = False,
    certify: bool = False,
    cache: Optional["PlanCache"] = None,
) -> CompiledAssay:
    """Compile assay source text end to end."""
    program_ast = parse(source)
    symbols = analyze(program_ast)
    flat = unroll(program_ast, symbols)
    dag = build_dag_from_flat(flat)
    return compile_dag(
        dag,
        spec=spec,
        name=flat.name,
        aux_fluids=flat.aux_fluids,
        manager=manager,
        flat=flat,
        source=source,
        lint=lint,
        certify=certify,
        cache=cache,
    )
