"""Legacy compilation entry points (thin shims over the pass manager).

The end-to-end flow — parse, unroll, lower, the Figure 6 volume-management
hierarchy, rounding, codegen, optional analyzers — lives in
:mod:`repro.compiler.passes` as an instrumented pass pipeline.  This
module keeps the original surface:

* :class:`CompiledAssay` — the caller-facing result record (produced by
  the ``Assemble`` pass);
* :func:`compile_dag` / :func:`compile_assay` — **deprecated shims** that
  forward to :func:`repro.compiler.passes.run_compile`.  They produce
  byte-identical results to the pass-manager path (enforced by the
  golden-equivalence suite) and exist so existing callers and scripts
  keep working; new code should call ``run_compile`` and keep the
  returned context (events, explain output, pass plan).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING
from collections.abc import Sequence

from ..core.dag import AssayDAG
from ..core.dagsolve import VolumeAssignment
from ..core.hierarchy import VolumeManager, VolumePlan
from ..core.runtime_assign import RuntimePlanner
from ..ir.program import AISProgram
from ..ir.regalloc import ReservoirAssignment
from ..lang.unroll import FlatAssay
from ..machine.spec import AQUACORE_SPEC, MachineSpec
from .diagnostics import DiagnosticSink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cache import PlanCache
    from .passes.events import PassEventBus

__all__ = [
    "CompiledAssay",
    "compile_assay",
    "compile_dag",
    "static_fingerprint",
]


@dataclass
class CompiledAssay:
    """Everything the compiler produced for one assay."""

    name: str
    program: AISProgram
    dag: AssayDAG                     # the volume DAG as written
    final_dag: AssayDAG               # after transforms (== dag when none)
    spec: MachineSpec
    allocation: ReservoirAssignment
    source: str | None = None
    flat: FlatAssay | None = None
    plan: VolumePlan | None = None             # static case
    assignment: VolumeAssignment | None = None  # rounded, static case
    planner: RuntimePlanner | None = None      # statically-unknown case
    diagnostics: DiagnosticSink = field(default_factory=DiagnosticSink)

    @property
    def is_static(self) -> bool:
        """True when volume assignment completed fully at compile time."""
        return self.planner is None

    @property
    def needs_regeneration(self) -> bool:
        return self.plan is not None and self.plan.needs_regeneration

    def listing(self) -> str:
        return self.program.render()


def static_fingerprint(
    dag: AssayDAG, spec: MachineSpec, manager: VolumeManager
) -> str:
    """The content address of one static compile request."""
    from ..core.fingerprint import compile_fingerprint

    return compile_fingerprint(
        dag, spec.limits, spec, manager.options_dict()
    )


def compile_dag(
    dag: AssayDAG,
    *,
    spec: MachineSpec = AQUACORE_SPEC,
    name: str | None = None,
    aux_fluids: Sequence[str] = (),
    manager: VolumeManager | None = None,
    flat: FlatAssay | None = None,
    source: str | None = None,
    lint: bool = False,
    certify: bool = False,
    cache: "PlanCache" | None = None,
    bus: "PassEventBus" | None = None,
) -> CompiledAssay:
    """Compile a volume DAG (hand-built or produced by the front end).

    .. deprecated:: use :func:`repro.compiler.passes.run_compile`; this
       shim forwards to it and returns only the :class:`CompiledAssay`.

    With ``lint=True``/``certify=True`` the analyzers run as passes on the
    same compile; with a ``cache`` the volume-management prefix is served
    content-addressed (listings stay byte-identical either way).  An
    optional ``bus`` receives the per-pass events.
    """
    from .passes import run_compile

    return run_compile(
        source=source,
        dag=dag,
        spec=spec,
        name=name,
        aux_fluids=aux_fluids,
        manager=manager,
        flat=flat,
        cache=cache,
        lint=lint,
        certify=certify,
        bus=bus,
    ).compiled


def compile_assay(
    source: str,
    *,
    spec: MachineSpec = AQUACORE_SPEC,
    manager: VolumeManager | None = None,
    lint: bool = False,
    certify: bool = False,
    cache: "PlanCache" | None = None,
    bus: "PassEventBus" | None = None,
) -> CompiledAssay:
    """Compile assay source text end to end.

    .. deprecated:: use :func:`repro.compiler.passes.run_compile`; this
       shim forwards to it and returns only the :class:`CompiledAssay`.
    """
    from .passes import run_compile

    return run_compile(
        source=source,
        spec=spec,
        manager=manager,
        cache=cache,
        lint=lint,
        certify=certify,
        bus=bus,
    ).compiled
